#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run from anywhere; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
# compat/* carry #![allow(clippy::all)]: they are vendored stand-ins for
# external crates, not first-party code.
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "all checks passed"
