#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run from anywhere; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
# compat/* carry #![allow(clippy::all)]: they are vendored stand-ins for
# external crates, not first-party code.
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== metrics determinism gate (chaos seeds 1 2 3)"
# Chaos scenarios must be byte-for-byte reproducible: the exported metrics
# snapshot for a fixed seed is diffed against a checked-in golden. A diff
# means nondeterminism crept into the simulator (or the metrics surface
# changed — regenerate with scripts/update_goldens.sh and review the diff).
for seed in 1 2 3; do
    cargo run -q --release -p bench --bin repro -- metrics --chaos --seed "$seed" \
        | diff -u "scripts/goldens/chaos_metrics_seed${seed}.prom" - \
        || { echo "metrics snapshot for chaos seed ${seed} diverged from golden"; exit 1; }
done

echo "all checks passed"
