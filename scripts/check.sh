#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run from anywhere; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
# compat/* carry #![allow(clippy::all)]: they are vendored stand-ins for
# external crates, not first-party code.
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== metrics determinism gate (chaos seeds 1 2 3)"
# Chaos scenarios must be byte-for-byte reproducible: the exported metrics
# snapshot for a fixed seed is diffed against a checked-in golden. A diff
# means nondeterminism crept into the simulator (or the metrics surface
# changed — regenerate with scripts/update_goldens.sh and review the diff).
for seed in 1 2 3; do
    cargo run -q --release -p bench --bin repro -- metrics --chaos --seed "$seed" \
        | diff -u "scripts/goldens/chaos_metrics_seed${seed}.prom" - \
        || { echo "metrics snapshot for chaos seed ${seed} diverged from golden"; exit 1; }
done

echo "== laser determinism gate (seed 1)"
# The laser sweep exercises the full serving tier (hedged reads, chaos
# section, Gatekeeper routing); its report must match the checked-in
# golden byte for byte. Regenerate intentional changes with
# scripts/update_goldens.sh and review the diff.
cargo run -q --release -p bench --bin repro -- laser \
    | diff -u "scripts/goldens/laser_seed1.txt" - \
    || { echo "laser report diverged from golden"; exit 1; }

echo "== canary rollout gate (seed 1)"
# The rollout pipeline runs under chaos with injected-bad commits and
# seeded cache drift; the report carries its own acceptance gates
# (containment, convergence, drift repair) and must end "overall: PASS"
# byte-identically. Regenerate intentional changes with
# scripts/update_goldens.sh and review the diff — especially the gates.
cargo run -q --release -p bench --bin repro -- canary \
    | diff -u "scripts/goldens/canary_seed1.txt" - \
    || { echo "canary report diverged from golden"; exit 1; }

echo "== drift audit gate (seed 1)"
# The auditor must detect exactly the seeded fault set (no misses, no
# false positives) and leave a clean fleet; the report gates on both.
cargo run -q --release -p bench --bin repro -- audit \
    | diff -u "scripts/goldens/audit_seed1.txt" - \
    || { echo "audit report diverged from golden"; exit 1; }

echo "== compile pipeline gate (golden + speedups)"
# `repro compile` prints a deterministic report (candidate/compiled/skipped
# counts, cache hit rates, ripple/skip/byte-identity gates, counters-only
# Prometheus export) on stdout — diffed against a golden — and
# machine-dependent timings on stderr. The stderr line
# "compile speedup gates: PASS" asserts the warm-incremental (>= 5x) and,
# with >= 2 workers, parallel (>= 2x) speedups; its absence fails the gate.
cargo run -q --release -p bench --bin repro -- compile 2> /tmp/compile_timing.txt \
    | diff -u "scripts/goldens/compile.txt" - \
    || { echo "compile report diverged from golden"; exit 1; }
cat /tmp/compile_timing.txt
grep -q "compile speedup gates: PASS" /tmp/compile_timing.txt \
    || { echo "compile speedup gates failed"; exit 1; }
grep -q "verify overhead gate: PASS" /tmp/compile_timing.txt \
    || { echo "verify pass exceeded 10% of warm compile wall time"; exit 1; }

echo "== static verifier gate (golden + catch-rate floor)"
# `repro verify --check` replays fifty seeded-bad commits (five defect
# classes) through the plan() pre-commit verify gate and a canary-model
# runtime check for the leaks. Stdout (catch-rate table, sample rejection
# with repair hints, gates, counters) is byte-deterministic and diffed
# against a golden; the stderr line "verify catch-rate gate: PASS" asserts
# the >= 80% pre-commit catch-rate floor, zero escapes, and zero false
# positives — its absence fails the gate.
cargo run -q --release -p bench --bin repro -- verify --check 2> /tmp/verify_gates.txt \
    | diff -u "scripts/goldens/verify_check.txt" - \
    || { echo "verify report diverged from golden"; exit 1; }
cat /tmp/verify_gates.txt
grep -q "verify catch-rate gate: PASS" /tmp/verify_gates.txt \
    || { echo "verify catch-rate floor not met"; exit 1; }

echo "== simnet perf benchmark gate (profiler + BENCH_simnet.json)"
# `repro perf` replays a workload-calibrated mixed scenario at three fleet
# sizes with the self-profiler on. The live run writes BENCH_simnet.json,
# self-validates it against the schema ("perf schema: OK" on stderr),
# enforces the 500k events/sec floor ("perf throughput gate: PASS"), and
# guards the large-fleet throughput against the PR 7 baseline ("perf
# baseline gate: PASS" — a regression guard, not the 2x engine-rework
# target, which is reported but Amdahl-capped by handler work). The
# --check run prints only virtual-time fields (event counts, bytes, queue
# depths — no wall time), so it is byte-deterministic: it is diffed
# against a golden AND against a second run of itself.
cargo run -q --release -p bench --bin repro -- perf > /tmp/perf_live.txt 2> /tmp/perf_gates.txt
cat /tmp/perf_gates.txt
grep -q "perf schema: OK" /tmp/perf_gates.txt \
    || { echo "BENCH_simnet.json failed schema validation"; exit 1; }
grep -q "perf throughput gate: PASS" /tmp/perf_gates.txt \
    || { echo "perf throughput floor not met"; exit 1; }
grep -q "perf baseline gate: PASS" /tmp/perf_gates.txt \
    || { echo "perf baseline regression guard not met"; exit 1; }
cargo run -q --release -p bench --bin repro -- perf --check 2> /dev/null > /tmp/perf_check_a.txt
cargo run -q --release -p bench --bin repro -- perf --check 2> /dev/null > /tmp/perf_check_b.txt
diff -u /tmp/perf_check_a.txt /tmp/perf_check_b.txt \
    || { echo "perf --check output is not byte-deterministic"; exit 1; }
diff -u "scripts/goldens/perf_check.txt" /tmp/perf_check_a.txt \
    || { echo "perf --check profile diverged from golden"; exit 1; }

echo "== paper-scale fleet gate (golden + determinism + throughput floors)"
# `repro fleet` replays a diurnal commit day over the zeus tree at paper
# scale (1k / 5k / 20k / 50k / 100k nodes). The live run writes the
# "fleet_runs" section of BENCH_simnet.json (schema-gated on stderr as
# "fleet schema: OK") and enforces three wall-clock floors: 100k events/s
# at >= 5k nodes ("fleet throughput gate: PASS"), >= 1.4M events/s on the
# 20k tier (the watch-lease + shared-fan-out speedup over the 825,993
# events/s pre-lease baseline), and >= 100k events/s on the 100k-node
# tier (paper-scale viability). The --check run (1k + 5k + 100k fleets)
# prints only virtual-time fields — event counts, writes, raw-sample
# propagation percentiles with their sample counts — so it is
# byte-deterministic and diffed against a golden AND against a second run
# of itself.
cargo run -q --release -p bench --bin repro -- fleet > /tmp/fleet_live.txt 2> /tmp/fleet_gates.txt
cat /tmp/fleet_gates.txt
grep -q "fleet schema: OK" /tmp/fleet_gates.txt \
    || { echo "BENCH_simnet.json failed fleet schema validation"; exit 1; }
grep -q "fleet throughput gate: PASS" /tmp/fleet_gates.txt \
    || { echo "fleet throughput floor not met"; exit 1; }
grep -qF "fleet tier gate [20k]: PASS" /tmp/fleet_gates.txt \
    || { echo "20k-node tier below the 1.4M events/s lease-speedup floor"; exit 1; }
grep -qF "fleet tier gate [100k]: PASS" /tmp/fleet_gates.txt \
    || { echo "100k-node tier below the 100k events/s floor"; exit 1; }
cargo run -q --release -p bench --bin repro -- fleet --check 2> /dev/null > /tmp/fleet_check_a.txt
cargo run -q --release -p bench --bin repro -- fleet --check 2> /dev/null > /tmp/fleet_check_b.txt
diff -u /tmp/fleet_check_a.txt /tmp/fleet_check_b.txt \
    || { echo "fleet --check output is not byte-deterministic"; exit 1; }
diff -u "scripts/goldens/fleet_check.txt" /tmp/fleet_check_a.txt \
    || { echo "fleet --check report diverged from golden"; exit 1; }

echo "== mobileconfig population gate (golden + determinism)"
# `repro fleet --mobile 1000000` models a million MobileConfig pull
# clients as per-cluster population cohorts over the 1k fleet. The report
# (per-cohort poll counts and staleness percentiles) is virtual-time only
# and must replay byte-identically; it is diffed against a golden AND
# against a second run of itself.
cargo run -q --release -p bench --bin repro -- fleet --mobile 1000000 2> /dev/null > /tmp/fleet_mobile_a.txt
cargo run -q --release -p bench --bin repro -- fleet --mobile 1000000 2> /dev/null > /tmp/fleet_mobile_b.txt
diff -u /tmp/fleet_mobile_a.txt /tmp/fleet_mobile_b.txt \
    || { echo "fleet --mobile output is not byte-deterministic"; exit 1; }
diff -u "scripts/goldens/fleet_mobile.txt" /tmp/fleet_mobile_a.txt \
    || { echo "fleet --mobile report diverged from golden"; exit 1; }

echo "== fleet health plane gate (seeds 1 2)"
# `repro health` runs every tier's ODS emitters under two chaos seeds and
# reports per-tier rollups plus multi-window SLO burn rates. All numbers
# are virtual-time only; the report is golden-gated byte for byte.
cargo run -q --release -p bench --bin repro -- health \
    | diff -u "scripts/goldens/health_seed1.txt" - \
    || { echo "health report diverged from golden"; exit 1; }

echo "== reconnect storm gate (seeds 1 2)"
# `repro storm` mass-restarts every observer and reads the reconnect herd
# off the ODS plane; decorrelated-jitter backoff must keep the shape tame
# (peak bounded by the proxy count, settling within the horizon).
cargo run -q --release -p bench --bin repro -- storm \
    | diff -u "scripts/goldens/storm_seed1.txt" - \
    || { echo "storm report diverged from golden"; exit 1; }

echo "== losssweep byte-determinism gate (seed 1)"
# The loss sweep drives the retransmission/batching pipeline through four
# drop rates; its report must be byte-identical across runs of one seed —
# any divergence means the batched distribution path picked up a source of
# nondeterminism (iteration order, unkeyed randomness, time-dependent
# state).
cargo run -q --release -p bench --bin repro -- losssweep > /tmp/losssweep_a.txt
cargo run -q --release -p bench --bin repro -- losssweep > /tmp/losssweep_b.txt
diff -u /tmp/losssweep_a.txt /tmp/losssweep_b.txt \
    || { echo "losssweep output is not byte-deterministic"; exit 1; }

echo "all checks passed"
