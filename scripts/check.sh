#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run from anywhere; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
# compat/* carry #![allow(clippy::all)]: they are vendored stand-ins for
# external crates, not first-party code.
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== metrics determinism gate (chaos seeds 1 2 3)"
# Chaos scenarios must be byte-for-byte reproducible: the exported metrics
# snapshot for a fixed seed is diffed against a checked-in golden. A diff
# means nondeterminism crept into the simulator (or the metrics surface
# changed — regenerate with scripts/update_goldens.sh and review the diff).
for seed in 1 2 3; do
    cargo run -q --release -p bench --bin repro -- metrics --chaos --seed "$seed" \
        | diff -u "scripts/goldens/chaos_metrics_seed${seed}.prom" - \
        || { echo "metrics snapshot for chaos seed ${seed} diverged from golden"; exit 1; }
done

echo "== laser determinism gate (seed 1)"
# The laser sweep exercises the full serving tier (hedged reads, chaos
# section, Gatekeeper routing); its report must match the checked-in
# golden byte for byte. Regenerate intentional changes with
# scripts/update_goldens.sh and review the diff.
cargo run -q --release -p bench --bin repro -- laser \
    | diff -u "scripts/goldens/laser_seed1.txt" - \
    || { echo "laser report diverged from golden"; exit 1; }

echo "== canary rollout gate (seed 1)"
# The rollout pipeline runs under chaos with injected-bad commits and
# seeded cache drift; the report carries its own acceptance gates
# (containment, convergence, drift repair) and must end "overall: PASS"
# byte-identically. Regenerate intentional changes with
# scripts/update_goldens.sh and review the diff — especially the gates.
cargo run -q --release -p bench --bin repro -- canary \
    | diff -u "scripts/goldens/canary_seed1.txt" - \
    || { echo "canary report diverged from golden"; exit 1; }

echo "== drift audit gate (seed 1)"
# The auditor must detect exactly the seeded fault set (no misses, no
# false positives) and leave a clean fleet; the report gates on both.
cargo run -q --release -p bench --bin repro -- audit \
    | diff -u "scripts/goldens/audit_seed1.txt" - \
    || { echo "audit report diverged from golden"; exit 1; }

echo "== compile pipeline gate (golden + speedups)"
# `repro compile` prints a deterministic report (candidate/compiled/skipped
# counts, cache hit rates, ripple/skip/byte-identity gates, counters-only
# Prometheus export) on stdout — diffed against a golden — and
# machine-dependent timings on stderr. The stderr line
# "compile speedup gates: PASS" asserts the warm-incremental (>= 5x) and,
# with >= 2 workers, parallel (>= 2x) speedups; its absence fails the gate.
cargo run -q --release -p bench --bin repro -- compile 2> /tmp/compile_timing.txt \
    | diff -u "scripts/goldens/compile.txt" - \
    || { echo "compile report diverged from golden"; exit 1; }
cat /tmp/compile_timing.txt
grep -q "compile speedup gates: PASS" /tmp/compile_timing.txt \
    || { echo "compile speedup gates failed"; exit 1; }

echo "== losssweep byte-determinism gate (seed 1)"
# The loss sweep drives the retransmission/batching pipeline through four
# drop rates; its report must be byte-identical across runs of one seed —
# any divergence means the batched distribution path picked up a source of
# nondeterminism (iteration order, unkeyed randomness, time-dependent
# state).
cargo run -q --release -p bench --bin repro -- losssweep > /tmp/losssweep_a.txt
cargo run -q --release -p bench --bin repro -- losssweep > /tmp/losssweep_b.txt
diff -u /tmp/losssweep_a.txt /tmp/losssweep_b.txt \
    || { echo "losssweep output is not byte-deterministic"; exit 1; }

echo "all checks passed"
