#!/usr/bin/env bash
# Regenerates the chaos metrics goldens that scripts/check.sh diffs
# against. Run after an intentional change to the metrics surface or the
# chaos pipeline, and review the resulting diff before committing.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p scripts/goldens
for seed in 1 2 3; do
    cargo run -q --release -p bench --bin repro -- metrics --chaos --seed "$seed" \
        > "scripts/goldens/chaos_metrics_seed${seed}.prom"
    echo "wrote scripts/goldens/chaos_metrics_seed${seed}.prom"
done
