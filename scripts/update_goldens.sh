#!/usr/bin/env bash
# Regenerates the goldens that scripts/check.sh diffs against (chaos
# metrics snapshots and the laser sweep report). Run after an intentional
# change to the metrics surface or the distribution/serving pipelines,
# and review the resulting diff before committing.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p scripts/goldens
for seed in 1 2 3; do
    cargo run -q --release -p bench --bin repro -- metrics --chaos --seed "$seed" \
        > "scripts/goldens/chaos_metrics_seed${seed}.prom"
    echo "wrote scripts/goldens/chaos_metrics_seed${seed}.prom"
done
cargo run -q --release -p bench --bin repro -- laser \
    > "scripts/goldens/laser_seed1.txt"
echo "wrote scripts/goldens/laser_seed1.txt"
cargo run -q --release -p bench --bin repro -- canary \
    > "scripts/goldens/canary_seed1.txt"
echo "wrote scripts/goldens/canary_seed1.txt"
cargo run -q --release -p bench --bin repro -- audit \
    > "scripts/goldens/audit_seed1.txt"
echo "wrote scripts/goldens/audit_seed1.txt"
cargo run -q --release -p bench --bin repro -- compile \
    > "scripts/goldens/compile.txt"
echo "wrote scripts/goldens/compile.txt"
cargo run -q --release -p bench --bin repro -- verify --check 2> /dev/null \
    > "scripts/goldens/verify_check.txt"
echo "wrote scripts/goldens/verify_check.txt"
cargo run -q --release -p bench --bin repro -- perf --check 2> /dev/null \
    > "scripts/goldens/perf_check.txt"
echo "wrote scripts/goldens/perf_check.txt"
cargo run -q --release -p bench --bin repro -- fleet --check 2> /dev/null \
    > "scripts/goldens/fleet_check.txt"
echo "wrote scripts/goldens/fleet_check.txt"
cargo run -q --release -p bench --bin repro -- fleet --mobile 1000000 2> /dev/null \
    > "scripts/goldens/fleet_mobile.txt"
echo "wrote scripts/goldens/fleet_mobile.txt"
cargo run -q --release -p bench --bin repro -- health \
    > "scripts/goldens/health_seed1.txt"
echo "wrote scripts/goldens/health_seed1.txt"
cargo run -q --release -p bench --bin repro -- storm \
    > "scripts/goldens/storm_seed1.txt"
echo "wrote scripts/goldens/storm_seed1.txt"
