//! Centralised metric names for PackageVessel, mirroring `zeus::metrics`:
//! recording and reporting sites share one constant per name so they
//! cannot typo apart.

/// Bytes served by the storage/tracker tier.
pub const STORAGE_BYTES_SENT: &str = "pv.storage_bytes_sent";
/// Pieces served by the storage/tracker tier.
pub const STORAGE_PIECES_SENT: &str = "pv.storage_pieces_sent";
/// Wall-clock (sim) time from announce to a complete fetch.
pub const FETCH_COMPLETE_S: &str = "pv.fetch_complete_s";
/// Fetches that completed.
pub const FETCHES_COMPLETED: &str = "pv.fetches_completed";
/// Fetches abandoned (e.g. superseded by a newer version).
pub const FETCHES_ABANDONED: &str = "pv.fetches_abandoned";
/// Bytes exchanged peer-to-peer.
pub const P2P_BYTES_SENT: &str = "pv.p2p_bytes_sent";
/// Pieces exchanged peer-to-peer.
pub const P2P_PIECES_SENT: &str = "pv.p2p_pieces_sent";
/// Peer-to-peer pieces that stayed within a cluster.
pub const P2P_PIECES_SAME_CLUSTER: &str = "pv.p2p_pieces_same_cluster";
/// Peer-to-peer pieces that crossed clusters within a region.
pub const P2P_PIECES_SAME_REGION: &str = "pv.p2p_pieces_same_region";
/// Peer-to-peer pieces that crossed regions.
pub const P2P_PIECES_CROSS_REGION: &str = "pv.p2p_pieces_cross_region";
