//! The per-server PackageVessel agent.
//!
//! On a metadata update (delivered through the Zeus subscription in the
//! full stack — consistency of the metadata drives consistency of the bulk
//! content, §3.5), the agent fetches the version's pieces: it asks the
//! tracker for a source per piece, keeps a request window full, announces
//! completed pieces, and abandons any in-flight fetch when newer metadata
//! arrives — the version tag is what makes "naive P2P" consistency problems
//! impossible by construction.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use rand::seq::SliceRandom;
use simnet::{Actor, Ctx, Message, NodeId, Proximity, SimDuration};

use crate::metrics;
use crate::types::{BulkId, BulkMeta, PvMsg};

const TIMER_RETRY: u64 = 1;

/// Fetch state for the version currently being downloaded.
#[derive(Debug)]
struct Fetch {
    meta: BulkMeta,
    have: HashMap<u32, Bytes>,
    /// Pieces requested but not yet received.
    inflight: HashSet<u32>,
    /// Pieces not yet requested, in randomized order.
    queue: Vec<u32>,
    done: bool,
}

/// The agent actor.
pub struct PvAgentActor {
    window: usize,
    retry: SimDuration,
    current: Option<Fetch>,
    /// Completed versions: id → piece payloads (the local package store).
    completed: HashMap<BulkId, Vec<Bytes>>,
}

impl Default for PvAgentActor {
    fn default() -> PvAgentActor {
        PvAgentActor::new(4)
    }
}

impl PvAgentActor {
    /// Creates an agent keeping up to `window` piece requests in flight.
    pub fn new(window: usize) -> PvAgentActor {
        PvAgentActor {
            window: window.max(1),
            retry: SimDuration::from_secs(15),
            current: None,
            completed: HashMap::new(),
        }
    }

    /// Returns whether the agent holds the complete content for `id`.
    pub fn has(&self, id: &BulkId) -> bool {
        self.completed.contains_key(id)
    }

    /// Total bytes of a completed download, if present.
    pub fn size_of(&self, id: &BulkId) -> Option<u64> {
        self.completed
            .get(id)
            .map(|p| p.iter().map(|b| b.len() as u64).sum())
    }

    /// The highest completed version of `config`.
    pub fn latest_version(&self, config: &str) -> Option<u64> {
        self.completed
            .keys()
            .filter(|id| id.config == config)
            .map(|id| id.version)
            .max()
    }

    /// The id of the fetch currently in progress, if any.
    pub fn current_fetch(&self) -> Option<&BulkId> {
        self.current.as_ref().map(|f| &f.meta.id)
    }

    /// The complete content of a finished download, reassembled in piece
    /// order, if present.
    pub fn content_of(&self, id: &BulkId) -> Option<Bytes> {
        let pieces = self.completed.get(id)?;
        let total: usize = pieces.iter().map(|b| b.len()).sum();
        let mut out = Vec::with_capacity(total);
        for p in pieces {
            out.extend_from_slice(&p[..]);
        }
        Some(Bytes::from(out))
    }

    /// Re-drives a stalled in-flight fetch: anything stuck in flight is
    /// re-queued and the request window refilled. Embedding actors call
    /// this from their own recovery/housekeeping timers — the agent's
    /// internal retry timer is skipped while its node is down, so a crash
    /// mid-fetch would otherwise stall until the next metadata update.
    pub fn kick(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(fetch) = &mut self.current {
            if !fetch.done {
                let mut stuck: Vec<u32> = fetch.inflight.drain().collect();
                stuck.sort_unstable();
                fetch.queue.extend(stuck);
                self.pump(ctx);
            }
        }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let Some(fetch) = &mut self.current else {
            return;
        };
        if fetch.done {
            return;
        }
        while fetch.inflight.len() < self.window {
            let Some(piece) = fetch.queue.pop() else {
                break;
            };
            fetch.inflight.insert(piece);
            ctx.send_value(
                fetch.meta.storage,
                64,
                PvMsg::GetSource {
                    id: fetch.meta.id.clone(),
                    piece,
                },
            );
        }
    }

    fn maybe_complete(&mut self, ctx: &mut Ctx<'_>) {
        let Some(fetch) = &mut self.current else {
            return;
        };
        if fetch.done || fetch.have.len() as u32 != fetch.meta.num_pieces {
            return;
        }
        fetch.done = true;
        let mut pieces: Vec<(u32, Bytes)> = fetch.have.drain().collect();
        pieces.sort_by_key(|(i, _)| *i);
        let id = fetch.meta.id.clone();
        let elapsed = (ctx.now() - fetch.meta.origin).as_secs_f64();
        self.completed
            .insert(id, pieces.into_iter().map(|(_, b)| b).collect());
        ctx.metrics().sample(metrics::FETCH_COMPLETE_S, elapsed);
        ctx.metrics().incr(metrics::FETCHES_COMPLETED, 1);
        self.current = None;
    }
}

impl Actor for PvAgentActor {
    fn kind(&self) -> &'static str {
        "pv.agent"
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let Ok(msg) = msg.downcast::<PvMsg>() else {
            return;
        };
        match *msg {
            PvMsg::MetadataUpdate { meta } => {
                // Newer metadata supersedes any fetch in progress — this is
                // the subscription-driven consistency guarantee.
                if let Some(cur) = &self.current {
                    if cur.meta.id.config == meta.id.config
                        && cur.meta.id.version >= meta.id.version
                    {
                        return;
                    }
                    ctx.metrics().incr(metrics::FETCHES_ABANDONED, 1);
                }
                if self.completed.contains_key(&meta.id) {
                    return;
                }
                let mut queue: Vec<u32> = (0..meta.num_pieces).collect();
                // Randomized piece order approximates rarest-first and
                // spreads early load across the swarm.
                queue.shuffle(ctx.rng());
                self.current = Some(Fetch {
                    meta,
                    have: HashMap::new(),
                    inflight: HashSet::new(),
                    queue,
                    done: false,
                });
                self.pump(ctx);
                ctx.set_timer(self.retry, TIMER_RETRY);
            }
            PvMsg::Source { id, piece, source } => {
                let relevant = self
                    .current
                    .as_ref()
                    .is_some_and(|f| f.meta.id == id && f.inflight.contains(&piece));
                if relevant {
                    ctx.send_value(source, 64, PvMsg::RequestPiece { id, piece });
                }
            }
            PvMsg::RequestPiece { id, piece } => {
                // Serve peers from the completed store or the in-progress
                // fetch.
                let data = self
                    .completed
                    .get(&id)
                    .and_then(|p| p.get(piece as usize).cloned())
                    .or_else(|| {
                        self.current
                            .as_ref()
                            .filter(|f| f.meta.id == id)
                            .and_then(|f| f.have.get(&piece).cloned())
                    });
                match data {
                    Some(data) => {
                        let origin = self
                            .current
                            .as_ref()
                            .filter(|f| f.meta.id == id)
                            .map(|f| f.meta.origin)
                            .unwrap_or(ctx.now());
                        ctx.metrics()
                            .incr(metrics::P2P_BYTES_SENT, data.len() as u64);
                        ctx.metrics().incr(metrics::P2P_PIECES_SENT, 1);
                        match ctx.proximity(from) {
                            Proximity::SameCluster | Proximity::SameNode => {
                                ctx.metrics().incr(metrics::P2P_PIECES_SAME_CLUSTER, 1)
                            }
                            Proximity::SameRegion => {
                                ctx.metrics().incr(metrics::P2P_PIECES_SAME_REGION, 1)
                            }
                            Proximity::CrossRegion => {
                                ctx.metrics().incr(metrics::P2P_PIECES_CROSS_REGION, 1)
                            }
                        }
                        let size = data.len() as u64 + 64;
                        ctx.send_value(
                            from,
                            size,
                            PvMsg::Piece {
                                id,
                                piece,
                                data,
                                origin,
                            },
                        );
                    }
                    None => {
                        ctx.send_value(from, 64, PvMsg::Deny { id, piece });
                    }
                }
            }
            PvMsg::Piece {
                id, piece, data, ..
            } => {
                let Some(fetch) = &mut self.current else {
                    return;
                };
                // Accept any piece the fetch still needs — a delivery may
                // arrive after the retry timer already drained it from the
                // in-flight set (slow storage under queueing), and dropping
                // it would livelock the fetch.
                if fetch.meta.id != id || fetch.have.contains_key(&piece) {
                    return;
                }
                fetch.inflight.remove(&piece);
                fetch.queue.retain(|p| *p != piece);
                fetch.have.insert(piece, data);
                let storage = fetch.meta.storage;
                ctx.send_value(storage, 64, PvMsg::HavePiece { id, piece });
                self.pump(ctx);
                self.maybe_complete(ctx);
            }
            PvMsg::Deny { id, piece } => {
                // Stale hint: put the piece back and retry via the tracker.
                if let Some(fetch) = &mut self.current {
                    if fetch.meta.id == id && fetch.inflight.remove(&piece) {
                        fetch.queue.push(piece);
                        self.pump(ctx);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag != TIMER_RETRY {
            return;
        }
        // Re-request anything stuck in flight (lost to a crashed peer).
        // Sorted re-queue order keeps retry-heavy runs byte-deterministic.
        if let Some(fetch) = &mut self.current {
            if !fetch.done {
                let mut stuck: Vec<u32> = fetch.inflight.drain().collect();
                stuck.sort_unstable();
                fetch.queue.extend(stuck);
                self.pump(ctx);
                ctx.set_timer(self.retry, TIMER_RETRY);
            }
        }
    }
}
