//! # packagevessel — hybrid subscription-P2P bulk distribution
//!
//! Reproduction of the paper's PackageVessel (§3.5): large configs (e.g.
//! "GBs of machine learning models") cannot go through the Zeus
//! distribution tree without overloading its high-fanout inner nodes, so
//! PackageVessel separates a large config's small *metadata* (distributed
//! reliably through the Zeus subscription model) from its *bulk content*
//! (fetched from a storage system via a locality-aware BitTorrent-style
//! swarm). The subscription guarantees metadata consistency, which in turn
//! drives consistency of the bulk content: every piece is tagged with the
//! version from the metadata, and newer metadata aborts any in-flight fetch
//! of an older version.
//!
//! The peer-selection policy is ablatable ([`storage::PeerPolicy`]):
//! locality-aware (the paper's design), uniform random, and storage-only
//! (no P2P), which is what the `repro packagevessel` experiment sweeps.
//!
//! # Examples
//!
//! ```
//! use simnet::prelude::*;
//! use packagevessel::prelude::*;
//!
//! let topo = Topology::symmetric(2, 2, 8);
//! // Constrain bandwidth so the swarm effect is visible.
//! let net = NetConfig {
//!     egress_bytes_per_sec: 100_000_000,
//!     ingress_bytes_per_sec: 100_000_000,
//!     ..NetConfig::datacenter()
//! };
//! let mut sim = Sim::new(topo, net, 11);
//! let pv = PvDeployment::install(&mut sim, PeerPolicy::LocalityAware, 4);
//! let meta = pv.publish(&mut sim, "feed/model", 1, 8 << 20, 1 << 20, SimTime::ZERO);
//! sim.run_for(SimDuration::from_secs(60));
//! assert_eq!(pv.completion(&sim, &meta.id), 1.0);
//! ```

pub mod agent;
pub mod deploy;
pub mod metrics;
pub mod storage;
pub mod types;

/// Commonly used types.
pub mod prelude {
    pub use crate::agent::PvAgentActor;
    pub use crate::deploy::PvDeployment;
    pub use crate::storage::{PeerPolicy, StorageActor};
    pub use crate::types::{BulkId, BulkMeta, PvMsg};
}

pub use prelude::*;
