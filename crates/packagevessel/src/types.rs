//! PackageVessel protocol types.

use bytes::Bytes;
use simnet::{NodeId, SimTime};

/// Identifies one version of one large config.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BulkId {
    /// Config name (e.g. `"feed/ranking_model"`).
    pub config: String,
    /// Monotonic version number (driven by the Configerator metadata).
    pub version: u64,
}

/// The small metadata record stored in Configerator and distributed through
/// Zeus (§3.5): "When a large config changes, its bulk content is uploaded
/// to a storage system. It then updates the config's small metadata stored
/// in Configerator, including the version number of the new config and
/// where to fetch the config's bulk content."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkMeta {
    /// Which config/version this is.
    pub id: BulkId,
    /// Number of pieces.
    pub num_pieces: u32,
    /// Size of each piece in bytes (last piece may be smaller).
    pub piece_size: u64,
    /// Total size in bytes.
    pub total_size: u64,
    /// The storage/tracker node holding the full content.
    pub storage: NodeId,
    /// When the publishing client initiated the update.
    pub origin: SimTime,
}

impl BulkMeta {
    /// Serialized size of the metadata (small, by design).
    pub fn wire_size(&self) -> u64 {
        (self.id.config.len() + 48) as u64
    }
}

/// Messages of the PackageVessel swarm protocol.
#[derive(Debug, Clone)]
pub enum PvMsg {
    /// Driver → storage: store the bulk content and become its origin.
    Publish {
        /// Metadata of the new version.
        meta: BulkMeta,
        /// Piece payloads.
        pieces: Vec<Bytes>,
    },
    /// Driver (standing in for the Zeus metadata subscription) → agent:
    /// a new version exists; start fetching.
    MetadataUpdate {
        /// Metadata of the new version.
        meta: BulkMeta,
    },
    /// Agent → tracker: who can serve this piece?
    GetSource {
        /// Target config/version.
        id: BulkId,
        /// Piece index.
        piece: u32,
    },
    /// Tracker → agent: fetch the piece from `source`.
    Source {
        /// Target config/version.
        id: BulkId,
        /// Piece index.
        piece: u32,
        /// The suggested holder (may be the storage node itself).
        source: NodeId,
    },
    /// Agent → holder: send me this piece.
    RequestPiece {
        /// Target config/version.
        id: BulkId,
        /// Piece index.
        piece: u32,
    },
    /// Holder → agent: piece payload.
    Piece {
        /// Target config/version.
        id: BulkId,
        /// Piece index.
        piece: u32,
        /// Payload.
        data: Bytes,
        /// Origin timestamp carried through for latency metrics.
        origin: SimTime,
    },
    /// Holder → agent: piece not available here (stale tracker hint).
    Deny {
        /// Target config/version.
        id: BulkId,
        /// Piece index.
        piece: u32,
    },
    /// Agent → tracker: I now hold this piece (announce).
    HavePiece {
        /// Target config/version.
        id: BulkId,
        /// Piece index.
        piece: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_is_small_regardless_of_bulk_size() {
        let meta = BulkMeta {
            id: BulkId {
                config: "feed/model".into(),
                version: 3,
            },
            num_pieces: 1000,
            piece_size: 4 << 20,
            total_size: 4 << 30,
            storage: NodeId(0),
            origin: SimTime::ZERO,
        };
        assert!(meta.wire_size() < 128);
    }
}
