//! Deployment helpers for PackageVessel experiments.

use bytes::Bytes;
use simnet::{NodeId, Sim, SimTime};

use crate::agent::PvAgentActor;
use crate::storage::{PeerPolicy, StorageActor};
use crate::types::{BulkId, BulkMeta, PvMsg};

/// Handles to an installed PackageVessel swarm.
#[derive(Debug, Clone)]
pub struct PvDeployment {
    /// The storage/tracker node.
    pub storage: NodeId,
    /// Every agent node.
    pub agents: Vec<NodeId>,
}

impl PvDeployment {
    /// Installs a storage node on node 0 and agents on every other server.
    pub fn install(sim: &mut Sim, policy: PeerPolicy, window: usize) -> PvDeployment {
        let storage = NodeId(0);
        sim.add_actor(storage, Box::new(StorageActor::new(policy)));
        let mut agents = Vec::new();
        for node in sim.topology().nodes().collect::<Vec<_>>() {
            if node == storage {
                continue;
            }
            sim.add_actor(node, Box::new(PvAgentActor::new(window)));
            agents.push(node);
        }
        PvDeployment { storage, agents }
    }

    /// Publishes `total_size` bytes as `config` version `version`, split
    /// into `piece_size` pieces, and notifies every agent (standing in for
    /// the Zeus metadata push; the caller can add per-agent delays to model
    /// metadata propagation). Returns the metadata record.
    pub fn publish(
        &self,
        sim: &mut Sim,
        config: &str,
        version: u64,
        total_size: u64,
        piece_size: u64,
        at: SimTime,
    ) -> BulkMeta {
        assert!(piece_size > 0 && total_size > 0, "sizes must be nonzero");
        let num_pieces = total_size.div_ceil(piece_size) as u32;
        let meta = BulkMeta {
            id: BulkId {
                config: config.to_string(),
                version,
            },
            num_pieces,
            piece_size,
            total_size,
            storage: self.storage,
            origin: at,
        };
        let mut pieces = Vec::with_capacity(num_pieces as usize);
        let mut remaining = total_size;
        for i in 0..num_pieces {
            let this = remaining.min(piece_size);
            remaining -= this;
            // Deterministic filler content tagged with the piece index.
            pieces.push(Bytes::from(vec![(i % 251) as u8; this as usize]));
        }
        sim.post(
            at,
            self.storage,
            self.storage,
            Box::new(PvMsg::Publish {
                meta: meta.clone(),
                pieces,
            }),
        );
        for &a in &self.agents {
            sim.post(
                at,
                a,
                a,
                Box::new(PvMsg::MetadataUpdate { meta: meta.clone() }),
            );
        }
        meta
    }

    /// Publishes real `data` to a storage node as `config` version
    /// `version`, split into `piece_size` pieces. Unlike
    /// [`PvDeployment::publish`], no agents are notified here: the caller
    /// distributes the returned metadata out of band (in the full stack, a
    /// Zeus write carrying the encoded metadata) and agents start fetching
    /// when it reaches them.
    pub fn publish_bytes(
        sim: &mut Sim,
        storage: NodeId,
        config: &str,
        version: u64,
        data: Bytes,
        piece_size: u64,
        at: SimTime,
    ) -> BulkMeta {
        assert!(piece_size > 0 && !data.is_empty(), "nonzero payload");
        let total_size = data.len() as u64;
        let num_pieces = total_size.div_ceil(piece_size) as u32;
        let meta = BulkMeta {
            id: BulkId {
                config: config.to_string(),
                version,
            },
            num_pieces,
            piece_size,
            total_size,
            storage,
            origin: at,
        };
        let mut pieces = Vec::with_capacity(num_pieces as usize);
        for i in 0..num_pieces as usize {
            let lo = i * piece_size as usize;
            let hi = (lo + piece_size as usize).min(data.len());
            pieces.push(Bytes::from(data[lo..hi].to_vec()));
        }
        sim.post(
            at,
            storage,
            storage,
            Box::new(PvMsg::Publish {
                meta: meta.clone(),
                pieces,
            }),
        );
        meta
    }

    /// Fraction of agents holding the complete content for `id`.
    pub fn completion(&self, sim: &Sim, id: &BulkId) -> f64 {
        if self.agents.is_empty() {
            return 0.0;
        }
        let done = self
            .agents
            .iter()
            .filter(|&&a| {
                sim.actor::<PvAgentActor>(a)
                    .map(|x| x.has(id))
                    .unwrap_or(false)
            })
            .count();
        done as f64 / self.agents.len() as f64
    }
}
