//! The storage system / tracker node.
//!
//! Holds the authoritative bulk content (the "storage system" of §3.5) and
//! doubles as the swarm tracker: agents announce which pieces they hold,
//! and the tracker answers source queries. The paper's locality preference
//! — "a server prefers exchanging data with other servers in the same
//! cluster" — is implemented as tracker policy so it can be ablated.

use std::collections::{HashMap, HashSet};

use rand::seq::SliceRandom;
use simnet::{Actor, Ctx, Message, NodeId, Proximity};

use crate::metrics;
use crate::types::{BulkId, PvMsg};

/// Peer-selection policy for source queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerPolicy {
    /// Prefer same-cluster holders, then same-region, then any, then the
    /// storage node (the paper's design).
    LocalityAware,
    /// Any holder uniformly at random, else storage.
    Random,
    /// Always serve from storage (tree-only baseline — no P2P).
    StorageOnly,
}

/// The storage/tracker actor.
pub struct StorageActor {
    policy: PeerPolicy,
    /// Bulk contents by id.
    contents: HashMap<BulkId, Vec<bytes::Bytes>>,
    /// Which agents hold which pieces.
    holders: HashMap<BulkId, HashMap<u32, Vec<NodeId>>>,
    origins: HashMap<BulkId, simnet::SimTime>,
}

impl StorageActor {
    /// Creates a storage node with the given peer policy.
    pub fn new(policy: PeerPolicy) -> StorageActor {
        StorageActor {
            policy,
            contents: HashMap::new(),
            holders: HashMap::new(),
            origins: HashMap::new(),
        }
    }

    /// Number of published bulk versions.
    pub fn published(&self) -> usize {
        self.contents.len()
    }

    fn pick_source(&self, ctx: &mut Ctx<'_>, requester: NodeId, id: &BulkId, piece: u32) -> NodeId {
        let me = ctx.node();
        if self.policy == PeerPolicy::StorageOnly {
            return me;
        }
        let Some(by_piece) = self.holders.get(id) else {
            return me;
        };
        let Some(holders) = by_piece.get(&piece) else {
            return me;
        };
        let candidates: Vec<NodeId> = holders
            .iter()
            .copied()
            .filter(|&h| h != requester)
            .collect();
        if candidates.is_empty() {
            return me;
        }
        match self.policy {
            PeerPolicy::Random => *candidates.choose(ctx.rng()).expect("nonempty"),
            PeerPolicy::LocalityAware => {
                let topo = ctx.topology();
                let rank = |h: NodeId| match topo.proximity(requester, h) {
                    Proximity::SameNode | Proximity::SameCluster => 0u8,
                    Proximity::SameRegion => 1,
                    Proximity::CrossRegion => 2,
                };
                let best = candidates.iter().map(|&h| rank(h)).min().expect("nonempty");
                let tier: Vec<NodeId> = candidates
                    .iter()
                    .copied()
                    .filter(|&h| rank(h) == best)
                    .collect();
                *tier.choose(ctx.rng()).expect("nonempty")
            }
            PeerPolicy::StorageOnly => me,
        }
    }
}

impl Actor for StorageActor {
    fn kind(&self) -> &'static str {
        "pv.storage"
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let Ok(msg) = msg.downcast::<PvMsg>() else {
            return;
        };
        match *msg {
            PvMsg::Publish { meta, pieces } => {
                debug_assert_eq!(pieces.len() as u32, meta.num_pieces);
                self.origins.insert(meta.id.clone(), meta.origin);
                self.holders.insert(meta.id.clone(), HashMap::new());
                self.contents.insert(meta.id, pieces);
            }
            PvMsg::GetSource { id, piece } => {
                let source = self.pick_source(ctx, from, &id, piece);
                ctx.send_value(from, 64, PvMsg::Source { id, piece, source });
            }
            PvMsg::RequestPiece { id, piece } => {
                match self.contents.get(&id).and_then(|p| p.get(piece as usize)) {
                    Some(data) => {
                        let data = data.clone();
                        ctx.metrics()
                            .incr(metrics::STORAGE_BYTES_SENT, data.len() as u64);
                        ctx.metrics().incr(metrics::STORAGE_PIECES_SENT, 1);
                        let origin = self.origins.get(&id).copied().unwrap_or(ctx.now());
                        let size = data.len() as u64 + 64;
                        ctx.send_value(
                            from,
                            size,
                            PvMsg::Piece {
                                id,
                                piece,
                                data,
                                origin,
                            },
                        );
                    }
                    None => {
                        ctx.send_value(from, 64, PvMsg::Deny { id, piece });
                    }
                }
            }
            PvMsg::HavePiece { id, piece } => {
                self.holders
                    .entry(id)
                    .or_default()
                    .entry(piece)
                    .or_default()
                    .push(from);
            }
            _ => {}
        }
    }
}

/// Deduplicates a holder list in place (used when many announces arrive).
pub fn dedup_holders(holders: &mut Vec<NodeId>) {
    let mut seen = HashSet::new();
    holders.retain(|h| seen.insert(*h));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_preserves_first_occurrence_order() {
        let mut v = vec![NodeId(3), NodeId(1), NodeId(3), NodeId(2), NodeId(1)];
        dedup_holders(&mut v);
        assert_eq!(v, vec![NodeId(3), NodeId(1), NodeId(2)]);
    }
}
