//! End-to-end swarm tests: completion, consistency under concurrent
//! versions, policy ablations, and storage-offload behaviour (§3.5).

use packagevessel::prelude::*;
use simnet::prelude::*;

/// 100 MB/s links make transfer time dominate propagation, as in a real
/// bulk distribution.
fn net() -> NetConfig {
    NetConfig {
        egress_bytes_per_sec: 100_000_000,
        ingress_bytes_per_sec: 100_000_000,
        ..NetConfig::datacenter()
    }
}

fn swarm(seed: u64, policy: PeerPolicy) -> (Sim, PvDeployment) {
    let topo = Topology::symmetric(2, 2, 10);
    let mut sim = Sim::new(topo, net(), seed);
    let pv = PvDeployment::install(&mut sim, policy, 4);
    (sim, pv)
}

#[test]
fn swarm_completes_on_all_agents() {
    let (mut sim, pv) = swarm(1, PeerPolicy::LocalityAware);
    let meta = pv.publish(&mut sim, "m", 1, 16 << 20, 1 << 20, SimTime::ZERO);
    sim.run_for(SimDuration::from_secs(120));
    assert_eq!(pv.completion(&sim, &meta.id), 1.0);
    // Every agent reports the full size.
    for &a in &pv.agents {
        let agent: &PvAgentActor = sim.actor(a).unwrap();
        assert_eq!(agent.size_of(&meta.id), Some(16 << 20));
    }
}

#[test]
fn p2p_offloads_the_storage_node() {
    let (mut sim, pv) = swarm(2, PeerPolicy::LocalityAware);
    let meta = pv.publish(&mut sim, "m", 1, 16 << 20, 1 << 20, SimTime::ZERO);
    sim.run_for(SimDuration::from_secs(120));
    assert_eq!(pv.completion(&sim, &meta.id), 1.0);
    let storage = sim.metrics().counter("pv.storage_pieces_sent");
    let p2p = sim.metrics().counter("pv.p2p_pieces_sent");
    // 39 agents × 16 pieces = 624 transfers; the swarm must carry most.
    assert!(
        p2p > storage,
        "P2P should dominate: p2p={p2p} storage={storage}"
    );
}

#[test]
fn storage_only_baseline_is_slower_and_fully_centralized() {
    let total = 16u64 << 20;
    let run = |policy| {
        let (mut sim, pv) = swarm(3, policy);
        let meta = pv.publish(&mut sim, "m", 1, total, 1 << 20, SimTime::ZERO);
        sim.run_for(SimDuration::from_secs(600));
        assert_eq!(pv.completion(&sim, &meta.id), 1.0, "{policy:?}");
        let s = sim.metrics().summary("pv.fetch_complete_s").unwrap();
        (s.max, sim.metrics().counter("pv.p2p_pieces_sent"))
    };
    let (t_swarm, _) = run(PeerPolicy::LocalityAware);
    let (t_central, p2p_central) = run(PeerPolicy::StorageOnly);
    assert_eq!(p2p_central, 0, "storage-only must not use peers");
    assert!(
        t_central > t_swarm * 2.0,
        "central={t_central:.1}s swarm={t_swarm:.1}s"
    );
}

#[test]
fn locality_prefers_same_cluster_transfers() {
    let (mut sim, pv) = swarm(4, PeerPolicy::LocalityAware);
    let meta = pv.publish(&mut sim, "m", 1, 16 << 20, 1 << 20, SimTime::ZERO);
    sim.run_for(SimDuration::from_secs(120));
    assert_eq!(pv.completion(&sim, &meta.id), 1.0);
    let same = sim.metrics().counter("pv.p2p_pieces_same_cluster");
    let cross = sim.metrics().counter("pv.p2p_pieces_cross_region")
        + sim.metrics().counter("pv.p2p_pieces_same_region");
    assert!(
        same > cross,
        "locality-aware should stay in-cluster: same={same} far={cross}"
    );
}

#[test]
fn newer_version_supersedes_inflight_fetch() {
    let (mut sim, pv) = swarm(5, PeerPolicy::LocalityAware);
    // Publish v1; shortly after (mid-download), publish v2.
    let v1 = pv.publish(&mut sim, "model", 1, 32 << 20, 1 << 20, SimTime::ZERO);
    let v2 = pv.publish(
        &mut sim,
        "model",
        2,
        8 << 20,
        1 << 20,
        SimTime::ZERO + SimDuration::from_millis(200),
    );
    sim.run_for(SimDuration::from_secs(300));
    // Consistency: every agent converges on v2 as the latest version.
    for &a in &pv.agents {
        let agent: &PvAgentActor = sim.actor(a).unwrap();
        assert_eq!(agent.latest_version("model"), Some(2));
        assert!(agent.has(&v2.id));
    }
    assert!(
        sim.metrics().counter("pv.fetches_abandoned") > 0,
        "some agents must have abandoned v1 mid-fetch"
    );
    let _ = v1;
}

#[test]
fn crashed_peer_does_not_stall_the_swarm() {
    let (mut sim, pv) = swarm(6, PeerPolicy::LocalityAware);
    let meta = pv.publish(&mut sim, "m", 1, 8 << 20, 1 << 20, SimTime::ZERO);
    // Let some agents get a head start, then crash two of them; requests
    // routed to the dead peers are lost and must be retried elsewhere.
    sim.run_for(SimDuration::from_millis(300));
    sim.crash(pv.agents[0]);
    sim.crash(pv.agents[1]);
    sim.run_for(SimDuration::from_secs(300));
    let live: Vec<_> = pv.agents[2..].to_vec();
    for &a in &live {
        let agent: &PvAgentActor = sim.actor(a).unwrap();
        assert!(
            agent.has(&meta.id),
            "agent {a} should finish despite dead peers"
        );
    }
}

#[test]
fn duplicate_metadata_update_is_idempotent() {
    let (mut sim, pv) = swarm(7, PeerPolicy::LocalityAware);
    let meta = pv.publish(&mut sim, "m", 1, 4 << 20, 1 << 20, SimTime::ZERO);
    sim.run_for(SimDuration::from_secs(120));
    assert_eq!(pv.completion(&sim, &meta.id), 1.0);
    let fetched = sim.metrics().counter("pv.fetches_completed");
    // Re-deliver the same metadata: nothing should re-download.
    let now = sim.now();
    for &a in pv.agents.clone().iter() {
        sim.post(
            now,
            a,
            a,
            Box::new(PvMsg::MetadataUpdate { meta: meta.clone() }),
        );
    }
    sim.run_for(SimDuration::from_secs(30));
    assert_eq!(sim.metrics().counter("pv.fetches_completed"), fetched);
}
