//! Simulated time.
//!
//! All simulated time is tracked in integer microseconds so that event
//! ordering is exact and runs are reproducible. [`SimTime`] is an absolute
//! instant on the simulation clock; [`SimDuration`] is a span between two
//! instants.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the raw microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, saturating at zero.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Returns the raw microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(t.as_micros(), 1_000_000);
        assert_eq!((t - SimTime::ZERO).as_secs_f64(), 1.0);
        assert_eq!(t.since(t + SimDuration::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn saturating_subtraction() {
        let a = SimTime(5);
        let b = SimTime(10);
        assert_eq!((a - b).as_micros(), 0);
        assert_eq!(SimDuration(5) - SimDuration(9), SimDuration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
    }

    #[test]
    fn negative_seconds_saturate() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }
}
