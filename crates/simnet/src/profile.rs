//! The simulator's self-profiler: per-actor × per-event-class accounting.
//!
//! The ROADMAP's paper-scale goal ("simnet fast enough for 100k servers")
//! needs to know where simulated *and* wall time actually go before any
//! refactor of the discrete-event core can be judged. This module collects,
//! with near-zero cost when disabled:
//!
//! * per-node, per-actor-kind dispatch counts and wall time spent inside
//!   handlers ([`Actor::kind`] labels the subsystem);
//! * per-node message bytes in/out as charged by the network model;
//! * event-queue occupancy: peak depth and mean depth per processed event.
//!
//! Wall-time fields are inherently nondeterministic; every query that feeds
//! a golden-gated report must use the *virtual* fields only (event counts,
//! bytes, queue depths), which are exact replays of the deterministic event
//! schedule. [`Profiler::folded_stacks`] renders both flavors: wall
//! nanoseconds for flamegraphs, event counts for byte-stable diffs.
//!
//! [`Actor::kind`]: crate::sim::Actor::kind

use std::collections::BTreeMap;
use std::time::Instant;

use crate::topology::NodeId;

/// A raw monotonic timestamp in *ticks* (TSC counts on x86_64, nanoseconds
/// elsewhere). Differences of these are converted to nanoseconds by the
/// profiler's calibration factor; reading one is several times cheaper
/// than `Instant::now`, which matters because the profiler reads two per
/// dispatched event.
#[inline]
pub(crate) fn now_ticks() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: RDTSC has no preconditions; it reads the timestamp counter.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Measures nanoseconds per tick over a short spin. On non-x86 the tick
/// already *is* a nanosecond and the factor is exactly 1.
fn calibrate_ns_per_tick() -> f64 {
    #[cfg(not(target_arch = "x86_64"))]
    {
        1.0
    }
    #[cfg(target_arch = "x86_64")]
    {
        let start = Instant::now();
        let t0 = now_ticks();
        // ~200µs is plenty: TSC rates are GHz-scale, so this spans
        // hundreds of thousands of ticks.
        while start.elapsed().as_micros() < 200 {
            std::hint::spin_loop();
        }
        let ticks = now_ticks().saturating_sub(t0);
        if ticks == 0 {
            1.0
        } else {
            start.elapsed().as_nanos() as f64 / ticks as f64
        }
    }
}

/// The class of event being dispatched to an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventClass {
    /// [`Actor::on_start`](crate::sim::Actor::on_start) dispatch.
    Start,
    /// [`Actor::on_message`](crate::sim::Actor::on_message) dispatch.
    Deliver,
    /// [`Actor::on_timer`](crate::sim::Actor::on_timer) dispatch.
    Timer,
    /// [`Actor::on_recover`](crate::sim::Actor::on_recover) dispatch.
    Recover,
    /// A driver control closure run against the simulator.
    Control,
}

impl EventClass {
    /// Stable lowercase label used in folded stacks and reports.
    pub fn label(self) -> &'static str {
        match self {
            EventClass::Start => "start",
            EventClass::Deliver => "deliver",
            EventClass::Timer => "timer",
            EventClass::Recover => "recover",
            EventClass::Control => "control",
        }
    }
}

/// Accumulated dispatch accounting for one (actor kind, event class) cell.
#[derive(Debug, Default, Clone, Copy)]
pub struct Cell {
    /// Number of dispatches.
    pub events: u64,
    /// Wall time spent inside the handler, in nanoseconds
    /// (nondeterministic; excluded from golden-gated output).
    pub wall_ns: u64,
}

/// Per-node accounting.
#[derive(Debug, Clone, Default)]
pub struct NodeProfile {
    /// The [`Actor::kind`](crate::sim::Actor::kind) label seen at the most
    /// recent dispatch on this node (empty before any dispatch).
    pub kind: &'static str,
    /// Handler dispatches on this node.
    pub events: u64,
    /// Wall nanoseconds inside this node's handlers (nondeterministic).
    pub wall_ns: u64,
    /// Bytes arriving at this node through the network model.
    pub bytes_in: u64,
    /// Bytes this node put on the wire.
    pub bytes_out: u64,
}

/// One row of the hot-actor table.
#[derive(Debug, Clone)]
pub struct HotActor {
    /// The node.
    pub node: NodeId,
    /// Its actor kind label.
    pub kind: &'static str,
    /// Handler dispatches.
    pub events: u64,
    /// Wall nanoseconds inside handlers.
    pub wall_ns: u64,
    /// Share of total handler wall time (0..=1).
    pub wall_share: f64,
    /// Message bytes in + out.
    pub bytes: u64,
}

/// The profiler attached to a [`Sim`](crate::sim::Sim).
///
/// Disabled by default: every record call is a single branch, no clock
/// reads, no allocation. Enable with
/// [`Sim::enable_profiler`](crate::sim::Sim::enable_profiler) before the
/// run being measured.
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: bool,
    /// Queue-depth tracking without per-dispatch timing: everything the
    /// paper-scale fleet report needs (peak/mean occupancy) at the cost of
    /// two integer updates per event, no clock reads, no cell accounting.
    /// Implied by [`enable`](Profiler::enable); independently switchable
    /// via [`enable_queue_stats`](Profiler::enable_queue_stats) so a
    /// 100k-node replay is not taxed ~10% for numbers it never prints.
    queue_stats: bool,
    /// Flat cell table scanned linearly on the hot path. The working set is
    /// a handful of (kind, class) pairs and `kind` labels are `'static`
    /// literals, so a pointer-equality fast path resolves almost every
    /// lookup without touching string bytes — measurably cheaper than the
    /// `BTreeMap` walk this replaces, which string-compared on every probe.
    cells: Vec<((&'static str, EventClass), Cell)>,
    /// Nanoseconds per raw [`now_ticks`] tick, calibrated at [`enable`]
    /// time (1.0 until then, and exactly 1.0 off x86_64).
    ///
    /// [`enable`]: Profiler::enable
    ns_per_tick: f64,
    nodes: Vec<NodeProfile>,
    queue_peak: usize,
    queue_depth_sum: u128,
    queue_observations: u64,
}

impl Profiler {
    pub(crate) fn new(num_nodes: usize) -> Profiler {
        Profiler {
            enabled: false,
            queue_stats: false,
            cells: Vec::new(),
            ns_per_tick: 1.0,
            nodes: (0..num_nodes).map(|_| NodeProfile::default()).collect(),
            queue_peak: 0,
            queue_depth_sum: 0,
            queue_observations: 0,
        }
    }

    pub(crate) fn enable(&mut self) {
        self.enabled = true;
        self.queue_stats = true;
        self.ns_per_tick = calibrate_ns_per_tick();
    }

    pub(crate) fn enable_queue_stats(&mut self) {
        self.queue_stats = true;
    }

    /// Whether the profiler is recording full per-dispatch accounting.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether queue-depth stats are tracked (full profiling or the
    /// lightweight queue-only mode).
    pub fn queue_stats_enabled(&self) -> bool {
        self.queue_stats
    }

    #[inline]
    fn cell_mut(&mut self, kind: &'static str, class: EventClass) -> &mut Cell {
        let pos = self.cells.iter().position(|((k, c), _)| {
            *c == class && (std::ptr::eq(k.as_ptr(), kind.as_ptr()) || *k == kind)
        });
        let pos = match pos {
            Some(p) => p,
            None => {
                self.cells.push(((kind, class), Cell::default()));
                self.cells.len() - 1
            }
        };
        &mut self.cells[pos].1
    }

    #[inline]
    pub(crate) fn record_dispatch(
        &mut self,
        node: NodeId,
        kind: &'static str,
        class: EventClass,
        ticks: u64,
    ) {
        let wall_ns = (ticks as f64 * self.ns_per_tick) as u64;
        let cell = self.cell_mut(kind, class);
        cell.events += 1;
        cell.wall_ns += wall_ns;
        let n = &mut self.nodes[node.0 as usize];
        n.kind = kind;
        n.events += 1;
        n.wall_ns += wall_ns;
    }

    #[inline]
    pub(crate) fn record_control(&mut self, ticks: u64) {
        let wall_ns = (ticks as f64 * self.ns_per_tick) as u64;
        let cell = self.cell_mut("driver", EventClass::Control);
        cell.events += 1;
        cell.wall_ns += wall_ns;
    }

    #[inline]
    pub(crate) fn record_bytes_in(&mut self, node: NodeId, bytes: u64) {
        self.nodes[node.0 as usize].bytes_in += bytes;
    }

    #[inline]
    pub(crate) fn record_bytes_out(&mut self, node: NodeId, bytes: u64) {
        self.nodes[node.0 as usize].bytes_out += bytes;
    }

    /// Queue length is observed in `push` (to catch bursts between pops)
    /// and per `step` (for the occupancy mean).
    #[inline]
    pub(crate) fn observe_queue_push(&mut self, len: usize) {
        if len > self.queue_peak {
            self.queue_peak = len;
        }
    }

    #[inline]
    pub(crate) fn observe_queue_step(&mut self, len: usize) {
        self.queue_depth_sum += len as u128;
        self.queue_observations += 1;
    }

    /// Peak event-queue depth observed (virtual; deterministic).
    pub fn queue_peak(&self) -> usize {
        self.queue_peak
    }

    /// Mean event-queue depth per processed event (virtual; deterministic).
    pub fn queue_mean(&self) -> f64 {
        if self.queue_observations == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_observations as f64
        }
    }

    /// All (kind, class) cells in key order. The hot-path table is insertion
    /// ordered, so sort a snapshot here — report time, not dispatch time.
    pub fn cells(&self) -> impl Iterator<Item = (&'static str, EventClass, Cell)> + '_ {
        let mut rows: Vec<(&'static str, EventClass, Cell)> = self
            .cells
            .iter()
            .map(|&((k, c), cell)| (k, c, cell))
            .collect();
        rows.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        rows.into_iter()
    }

    /// Per-kind aggregation over event classes, in kind order.
    pub fn by_kind(&self) -> Vec<(&'static str, Cell)> {
        let mut agg: BTreeMap<&'static str, Cell> = BTreeMap::new();
        for &((kind, _), cell) in &self.cells {
            let a = agg.entry(kind).or_default();
            a.events += cell.events;
            a.wall_ns += cell.wall_ns;
        }
        agg.into_iter().collect()
    }

    /// Per-subsystem (actor kind) share of total handler wall time,
    /// descending. Nondeterministic (wall clock); for the live perf report
    /// and `BENCH_simnet.json`, not for goldens.
    pub fn subsystem_wall_shares(&self) -> Vec<(&'static str, f64)> {
        let per_kind = self.by_kind();
        let total: u64 = per_kind.iter().map(|(_, c)| c.wall_ns).sum();
        if total == 0 {
            return per_kind.iter().map(|(k, _)| (*k, 0.0)).collect();
        }
        let mut shares: Vec<(&'static str, f64)> = per_kind
            .iter()
            .map(|(k, c)| (*k, c.wall_ns as f64 / total as f64))
            .collect();
        shares.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(b.0)));
        shares
    }

    /// The hottest `n` actors by handler wall time, descending (ties broken
    /// by node id so equal-wall rows order stably).
    pub fn hot_actors(&self, n: usize) -> Vec<HotActor> {
        let total: u64 = self.nodes.iter().map(|p| p.wall_ns).sum();
        let mut rows: Vec<HotActor> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.events > 0 || p.bytes_in > 0 || p.bytes_out > 0)
            .map(|(i, p)| HotActor {
                node: NodeId(i as u32),
                kind: p.kind,
                events: p.events,
                wall_ns: p.wall_ns,
                wall_share: if total == 0 {
                    0.0
                } else {
                    p.wall_ns as f64 / total as f64
                },
                bytes: p.bytes_in + p.bytes_out,
            })
            .collect();
        rows.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.node.0.cmp(&b.node.0)));
        rows.truncate(n);
        rows
    }

    /// The busiest `n` actors by *event count* (virtual; deterministic).
    pub fn busy_actors(&self, n: usize) -> Vec<HotActor> {
        let mut rows = self.hot_actors(usize::MAX);
        rows.sort_by(|a, b| b.events.cmp(&a.events).then(a.node.0.cmp(&b.node.0)));
        rows.truncate(n);
        rows
    }

    /// Renders the hot-actor table as aligned text. `wall` selects between
    /// wall-time ranking (live profiling) and event-count ranking with wall
    /// columns suppressed (deterministic / golden mode).
    pub fn render_hot_actors(&self, n: usize, wall: bool) -> String {
        use std::fmt::Write as _;
        let rows = if wall {
            self.hot_actors(n)
        } else {
            self.busy_actors(n)
        };
        let mut out = String::new();
        if wall {
            let _ = writeln!(
                out,
                "  {:>6} {:<20} {:>10} {:>9} {:>6} {:>12}",
                "node", "kind", "events", "wall_ms", "share", "bytes"
            );
            for r in &rows {
                let _ = writeln!(
                    out,
                    "  {:>6} {:<20} {:>10} {:>9.2} {:>5.1}% {:>12}",
                    r.node.0,
                    r.kind,
                    r.events,
                    r.wall_ns as f64 / 1e6,
                    r.wall_share * 100.0,
                    r.bytes
                );
            }
        } else {
            let _ = writeln!(
                out,
                "  {:>6} {:<20} {:>10} {:>12}",
                "node", "kind", "events", "bytes"
            );
            for r in &rows {
                let _ = writeln!(
                    out,
                    "  {:>6} {:<20} {:>10} {:>12}",
                    r.node.0, r.kind, r.events, r.bytes
                );
            }
        }
        out
    }

    /// Flamegraph-compatible folded stacks, one line per (kind, class)
    /// cell: `sim;<kind>;<class> <value>`. With `wall` set the value is
    /// wall nanoseconds (feed to `flamegraph.pl`); otherwise it is the
    /// event count, which is deterministic and golden-safe.
    pub fn folded_stacks(&self, wall: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (kind, class, cell) in self.cells() {
            let v = if wall { cell.wall_ns } else { cell.events };
            let _ = writeln!(out, "sim;{kind};{} {v}", class.label());
        }
        out
    }

    /// Total handler dispatches across all cells.
    pub fn total_dispatches(&self) -> u64 {
        self.cells.iter().map(|(_, c)| c.events).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_and_nodes_accumulate() {
        let mut p = Profiler::new(4);
        p.enable();
        p.ns_per_tick = 1.0; // pin the calibration so ticks == ns in assertions
        p.record_dispatch(NodeId(1), "zeus.proxy", EventClass::Deliver, 100);
        p.record_dispatch(NodeId(1), "zeus.proxy", EventClass::Deliver, 50);
        p.record_dispatch(NodeId(2), "zeus.observer", EventClass::Timer, 300);
        p.record_bytes_in(NodeId(1), 64);
        p.record_bytes_out(NodeId(2), 32);
        let hot = p.hot_actors(10);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].node, NodeId(2));
        assert_eq!(hot[0].kind, "zeus.observer");
        assert_eq!(hot[1].events, 2);
        assert_eq!(hot[1].bytes, 64);
        let busy = p.busy_actors(1);
        assert_eq!(busy[0].node, NodeId(1));
        let shares = p.subsystem_wall_shares();
        assert_eq!(shares[0].0, "zeus.observer");
        assert!((shares.iter().map(|s| s.1).sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn folded_stacks_are_sorted_and_stable() {
        let mut p = Profiler::new(2);
        p.enable();
        p.ns_per_tick = 1.0;
        p.record_dispatch(NodeId(0), "b", EventClass::Timer, 10);
        p.record_dispatch(NodeId(1), "a", EventClass::Deliver, 20);
        p.record_control(5);
        let folded = p.folded_stacks(false);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec!["sim;a;deliver 1", "sim;b;timer 1", "sim;driver;control 1"]
        );
        // Wall flavor carries nanoseconds instead of counts.
        assert!(p.folded_stacks(true).contains("sim;a;deliver 20"));
    }

    #[test]
    fn queue_occupancy_tracks_peak_and_mean() {
        let mut p = Profiler::new(1);
        p.enable();
        p.observe_queue_push(3);
        p.observe_queue_push(7);
        p.observe_queue_push(5);
        p.observe_queue_step(2);
        p.observe_queue_step(4);
        assert_eq!(p.queue_peak(), 7);
        assert_eq!(p.queue_mean(), 3.0);
    }
}
