//! String interning and fast hashing for the simulator's hot paths.
//!
//! The metric and ODS planes are keyed by short, low-cardinality names
//! (`"zeus.commits"`, `"proxy"/"propagation_s"`) that arrive as `&str` on
//! every single event. Before this module, each recording call paid a
//! `String` allocation (to key a `BTreeMap`) plus SipHash or an O(log n)
//! string-compare walk. A [`SymbolTable`] maps each distinct name to a
//! dense [`Sym`] id exactly once; every subsequent hit is one FxHash of a
//! short string and an equality check — no allocation, no tree walk. Ids
//! index plain `Vec` side tables, and names are resolved back only at
//! export/report time, which is where the sorted, byte-stable ordering of
//! the old `BTreeMap` surface is reproduced.
//!
//! [`FxHasher`] is the rustc/Firefox hash: not DoS-resistant (irrelevant
//! here — all keys are compiled-in names or seeded-deterministic strings)
//! but several times cheaper than SipHash on short keys, and fully
//! deterministic across runs, which the byte-identical goldens require.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`] (deterministic, fast on short keys).
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Multiplicative constant from the rustc-hash / FxHash design: a random
/// odd number with good bit dispersion under wrapping multiplication.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox "Fx" hash: rotate, xor, multiply per word.
///
/// Deterministic (no per-process random state), so anything iterated in
/// hash order must still be sorted before it reaches golden-gated output —
/// determinism of the *hash* does not make bucket order meaningful.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" cannot collide by
            // construction of the tail word alone.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A dense id for an interned string. Ids are assigned in first-seen order
/// and are only meaningful within the [`SymbolTable`] that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The id as a `usize` index into a side table.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string → dense-id table.
///
/// `intern` allocates only the first time a name is seen; every later call
/// is a hash lookup on the borrowed `&str`. `resolve` is O(1).
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    index: FxHashMap<Box<str>, u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Returns the id for `name`, assigning the next dense id (and making
    /// the table's single copy of the string) if it is new.
    #[inline]
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&id) = self.index.get(name) {
            return Sym(id);
        }
        self.intern_slow(name)
    }

    #[cold]
    fn intern_slow(&mut self, name: &str) -> Sym {
        let id = self.names.len() as u32;
        let owned: Box<str> = name.into();
        self.names.push(owned.clone());
        self.index.insert(owned, id);
        Sym(id)
    }

    /// Returns the id for `name` if it was ever interned, without
    /// inserting. The allocation-free read path.
    #[inline]
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.index.get(name).map(|&id| Sym(id))
    }

    /// The string a [`Sym`] stands for.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not issued by this table.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.idx()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All `(id, name)` pairs with ids sorted by *name* — the order every
    /// exported report uses, reproducing the old `BTreeMap` iteration.
    pub fn sorted_by_name(&self) -> Vec<(Sym, &str)> {
        let mut v: Vec<(Sym, &str)> = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_ref()))
            .collect();
        v.sort_by(|a, b| a.1.cmp(b.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("zeus.commits");
        let b = t.intern("zeus.errors");
        assert_eq!(a, Sym(0));
        assert_eq!(b, Sym(1));
        assert_eq!(t.intern("zeus.commits"), a, "re-intern returns same id");
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "zeus.commits");
        assert_eq!(t.get("zeus.errors"), Some(b));
        assert_eq!(t.get("missing"), None);
    }

    #[test]
    fn sorted_by_name_reproduces_btreemap_order() {
        let mut t = SymbolTable::new();
        t.intern("c");
        t.intern("a");
        t.intern("b");
        let names: Vec<&str> = t.sorted_by_name().iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn fx_hash_is_deterministic_across_hashers() {
        use std::hash::Hash;
        let h = |s: &str| {
            let mut hasher = FxHasher::default();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h("proxy.updates"), h("proxy.updates"));
        assert_ne!(h("a"), h("b"));
        assert_ne!(h("ab"), h("ab\0"));
    }
}
