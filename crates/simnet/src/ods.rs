//! ODS-style fleet health aggregation.
//!
//! The paper's evaluation (Figs 7–12) is built on Facebook's ODS monitoring
//! pipeline: every server publishes named counters and latency samples, an
//! aggregation tier rolls them up into fleet-wide time series, and SLO
//! dashboards read the rollups. This module is the simulation-side
//! equivalent: actors emit points through [`Ctx`](crate::sim::Ctx)
//! (`ods_counter` / `ods_sample` / `ods_gauge`), an [`OdsScraper`] actor
//! periodically rolls the raw points up into per-tier [`WindowStats`] over
//! a fast and a slow window of *simulated* time, and registered
//! [`SloPolicy`] objectives are evaluated as burn rates at every scrape.
//!
//! Everything here runs on virtual time and deterministic inputs, so the
//! `repro health` report diffs byte-for-byte against its golden.
//!
//! Disabled by default: every emit call is one branch until
//! [`Sim::enable_ods`](crate::sim::Sim::enable_ods) is called, so
//! experiments that never read the plane pay nothing.

use std::collections::{BTreeSet, VecDeque};
use std::fmt::Write as _;

use crate::intern::{FxHashMap, Sym, SymbolTable};
use crate::sim::{Actor, Ctx, Message};
use crate::stats::{escape_label_value, percentile_sorted};
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;

/// Well-known tier labels, so emitters across crates cannot drift apart.
pub mod tiers {
    /// The Zeus consensus ensemble.
    pub const ZEUS: &str = "zeus";
    /// The observer fan-out tier.
    pub const OBSERVER: &str = "observer";
    /// The per-server Configerator proxies.
    pub const PROXY: &str = "proxy";
    /// The Laser serving tier.
    pub const LASER: &str = "laser";
    /// The Configerator commit/compile pipeline.
    pub const CONFIGERATOR: &str = "configerator";
    /// MobileConfig pull clients.
    pub const MOBILE: &str = "mobile";
}

/// Well-known series names within tiers, mirroring `stats::names`: emitters
/// across crates reference these constants so spellings cannot drift.
pub mod series {
    /// Committed writes (counter, [`tiers::ZEUS`](super::tiers::ZEUS)).
    pub const COMMITS: &str = "commits";
    /// Dropped/rejected proposals (counter, zeus).
    pub const ERRORS: &str = "errors";
    /// Writes applied by observers (counter, observer).
    pub const APPLIED: &str = "applied";
    /// Origin→visible propagation latency in seconds (sample, proxy).
    pub const PROPAGATION_S: &str = "propagation_s";
    /// Proxy failover reconnect attempts (counter, proxy).
    pub const RECONNECTS: &str = "reconnects";
    /// Point reads served (counter, laser).
    pub const GETS: &str = "gets";
    /// Stream-ingest lag behind the origin commit, seconds (sample, laser).
    pub const INGEST_LAG_S: &str = "ingest_lag_s";
    /// Staleness of pulled config at the client, seconds (sample, mobile).
    pub const STALENESS_S: &str = "staleness_s";
    /// Poll round-trips (counter, mobile).
    pub const POLLS: &str = "polls";
    /// Landed commits through the compile pipeline (counter, configerator).
    pub const LANDED: &str = "landed";
    /// Compile failures (counter, configerator).
    pub const COMPILE_ERRORS: &str = "compile_errors";
    /// Per-commit compile latency in seconds (sample, configerator).
    pub const COMPILE_S: &str = "compile_s";
}

/// How points of a series combine inside a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic event deltas: windows report `sum / window` as a rate.
    Counter,
    /// Point-in-time readings: windows report the last value.
    Gauge,
    /// Latency-style samples: windows report count, rate, and percentiles.
    Sample,
}

#[derive(Debug)]
struct Series {
    tier: Sym,
    name: Sym,
    kind: SeriesKind,
    /// Raw points in emit order (timestamps are nondecreasing because
    /// emits happen at the simulation's current instant). Pruned at scrape
    /// time to the slow window.
    points: VecDeque<(SimTime, f64)>,
    /// Distinct nodes that ever emitted into this series.
    nodes: BTreeSet<u32>,
    total_count: u64,
    total_sum: f64,
}

/// Rolled-up statistics of one series over one trailing window.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowStats {
    /// Points inside the window.
    pub count: u64,
    /// Sum of point values inside the window.
    pub sum: f64,
    /// Counters: `sum / window_secs`. Samples: `count / window_secs`.
    pub rate_per_s: f64,
    /// Sample percentiles (zero for counters/gauges or empty windows).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest value in the window.
    pub max: f64,
    /// Gauges: the most recent value in the window.
    pub last: f64,
    /// Fraction of sample points breaching the registered SLO threshold
    /// (zero when no policy covers the series).
    pub breach_fraction: f64,
    /// `breach_fraction / (1 - objective)` — how many times faster than
    /// sustainable the error budget is burning. 1.0 = exactly on budget.
    pub burn_rate: f64,
}

/// A propagation-style SLO: `objective` of samples must stay at or under
/// `threshold`.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// Tier the policy applies to.
    pub tier: String,
    /// Series name within the tier.
    pub series: String,
    /// Sample values above this breach the objective.
    pub threshold: f64,
    /// Target good fraction, e.g. 0.99 → 1% error budget.
    pub objective: f64,
    /// Burn-rate level at which the fast+slow window pair pages.
    pub page_burn: f64,
}

/// One series' rollup at one scrape instant.
#[derive(Debug, Clone)]
pub struct ScrapeRow {
    /// Tier label.
    pub tier: String,
    /// Series name.
    pub name: String,
    /// Series kind.
    pub kind: SeriesKind,
    /// Distinct emitting nodes seen so far.
    pub nodes: u64,
    /// Stats over the fast window.
    pub fast: WindowStats,
    /// Stats over the slow window.
    pub slow: WindowStats,
}

/// One scrape: every live series rolled up at a single instant.
#[derive(Debug, Clone)]
pub struct Scrape {
    /// Scrape instant (virtual time).
    pub at: SimTime,
    /// Per-series rollups, in (tier, name) order.
    pub rows: Vec<ScrapeRow>,
}

/// An SLO page: both burn windows above the policy's page level.
#[derive(Debug, Clone)]
pub struct SloAlert {
    /// When the page fired.
    pub at: SimTime,
    /// Tier of the offending series.
    pub tier: String,
    /// Series name.
    pub series: String,
    /// Fast-window burn rate at the firing scrape.
    pub fast_burn: f64,
    /// Slow-window burn rate at the firing scrape.
    pub slow_burn: f64,
}

/// The aggregation plane. Owned by [`Sim`](crate::sim::Sim); emitters reach
/// it through `Ctx::ods_*`, drivers through `Sim::ods()` / `Sim::ods_mut()`.
#[derive(Debug)]
pub struct Ods {
    enabled: bool,
    fast: SimDuration,
    slow: SimDuration,
    /// Interned tier/series names. The hot emit path hashes the two
    /// borrowed `&str`s once each; `String` keys are only materialised at
    /// scrape/report time.
    syms: SymbolTable,
    /// `(tier, name)` symbol pair → slot in `table`.
    index: FxHashMap<(Sym, Sym), u32>,
    /// Series storage in first-emit order; report paths sort by resolved
    /// `(tier, name)` to reproduce the old `BTreeMap` iteration order.
    table: Vec<Series>,
    slos: Vec<SloPolicy>,
    scrapes: Vec<Scrape>,
}

impl Default for Ods {
    fn default() -> Ods {
        Ods {
            enabled: false,
            // The paper's fleet dashboards read minute-level rollups; the
            // simulation compresses that to 5s/60s of virtual time so a
            // short experiment still exercises both burn windows.
            fast: SimDuration::from_secs(5),
            slow: SimDuration::from_secs(60),
            syms: SymbolTable::new(),
            index: FxHashMap::default(),
            table: Vec::new(),
            slos: Vec::new(),
            scrapes: Vec::new(),
        }
    }
}

impl Ods {
    /// Turns the plane on with the given burn-rate windows.
    pub fn enable(&mut self, fast: SimDuration, slow: SimDuration) {
        self.enabled = true;
        self.fast = fast;
        self.slow = slow;
    }

    /// Whether emits are being collected.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The (fast, slow) burn windows.
    pub fn windows(&self) -> (SimDuration, SimDuration) {
        (self.fast, self.slow)
    }

    /// Registers an SLO to evaluate at every scrape.
    pub fn register_slo(&mut self, policy: SloPolicy) {
        self.slos.push(policy);
    }

    fn emit(
        &mut self,
        kind: SeriesKind,
        node: NodeId,
        tier: &str,
        name: &str,
        at: SimTime,
        value: f64,
    ) {
        if !self.enabled {
            return;
        }
        let t = self.syms.intern(tier);
        let n = self.syms.intern(name);
        let slot = match self.index.get(&(t, n)) {
            Some(&i) => i as usize,
            None => {
                let i = self.table.len();
                self.table.push(Series {
                    tier: t,
                    name: n,
                    kind,
                    points: VecDeque::new(),
                    nodes: BTreeSet::new(),
                    total_count: 0,
                    total_sum: 0.0,
                });
                self.index.insert((t, n), i as u32);
                i
            }
        };
        let s = &mut self.table[slot];
        debug_assert!(
            s.kind == kind,
            "series {tier}/{name} emitted with two kinds"
        );
        s.points.push_back((at, value));
        s.nodes.insert(node.0);
        s.total_count += 1;
        s.total_sum += value;
    }

    /// Slots of `table` sorted by resolved `(tier, name)` — the iteration
    /// order every report surface promises (and the old `BTreeMap` gave
    /// for free).
    fn sorted_slots(&self) -> Vec<usize> {
        let mut slots: Vec<usize> = (0..self.table.len()).collect();
        slots.sort_by(|&a, &b| {
            let sa = &self.table[a];
            let sb = &self.table[b];
            (self.syms.resolve(sa.tier), self.syms.resolve(sa.name))
                .cmp(&(self.syms.resolve(sb.tier), self.syms.resolve(sb.name)))
        });
        slots
    }

    /// Allocation-free lookup of a series by its string key.
    fn lookup(&self, tier: &str, name: &str) -> Option<&Series> {
        let t = self.syms.get(tier)?;
        let n = self.syms.get(name)?;
        self.index.get(&(t, n)).map(|&i| &self.table[i as usize])
    }

    /// Emits a counter delta attributed to `node` at `at`.
    pub fn emit_counter(&mut self, node: NodeId, tier: &str, name: &str, at: SimTime, delta: f64) {
        self.emit(SeriesKind::Counter, node, tier, name, at, delta);
    }

    /// Emits a latency-style sample.
    pub fn emit_sample(&mut self, node: NodeId, tier: &str, name: &str, at: SimTime, value: f64) {
        self.emit(SeriesKind::Sample, node, tier, name, at, value);
    }

    /// Emits a point-in-time gauge reading.
    pub fn emit_gauge(&mut self, node: NodeId, tier: &str, name: &str, at: SimTime, value: f64) {
        self.emit(SeriesKind::Gauge, node, tier, name, at, value);
    }

    fn window_stats(
        &self,
        points: &VecDeque<(SimTime, f64)>,
        kind: SeriesKind,
        now: SimTime,
        window: SimDuration,
        slo: Option<&SloPolicy>,
    ) -> WindowStats {
        let cutoff = SimTime(now.0.saturating_sub(window.as_micros()));
        let mut vals: Vec<f64> = Vec::new();
        let mut sum = 0.0;
        let mut last = 0.0;
        let mut max = f64::NEG_INFINITY;
        let mut bad = 0u64;
        for &(t, v) in points.iter() {
            if t <= cutoff || t > now {
                continue;
            }
            sum += v;
            last = v;
            if v > max {
                max = v;
            }
            if let Some(p) = slo {
                if v > p.threshold {
                    bad += 1;
                }
            }
            vals.push(v);
        }
        let count = vals.len() as u64;
        let secs = window.as_secs_f64();
        let mut stats = WindowStats {
            count,
            sum,
            rate_per_s: if secs == 0.0 {
                0.0
            } else if kind == SeriesKind::Counter {
                sum / secs
            } else {
                count as f64 / secs
            },
            max: if count == 0 { 0.0 } else { max },
            last,
            ..WindowStats::default()
        };
        if kind == SeriesKind::Sample && count > 0 {
            vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN ODS sample"));
            stats.p50 = percentile_sorted(&vals, 50.0);
            stats.p90 = percentile_sorted(&vals, 90.0);
            stats.p99 = percentile_sorted(&vals, 99.0);
        }
        if let Some(p) = slo {
            if count > 0 {
                stats.breach_fraction = bad as f64 / count as f64;
                let budget = (1.0 - p.objective).max(1e-9);
                stats.burn_rate = stats.breach_fraction / budget;
            }
        }
        stats
    }

    /// Rolls every series up at `now`, appends the scrape, and prunes raw
    /// points that have aged out of the slow window.
    pub fn scrape(&mut self, now: SimTime) {
        if !self.enabled {
            return;
        }
        let mut rows = Vec::with_capacity(self.table.len());
        let slos = std::mem::take(&mut self.slos);
        for slot in self.sorted_slots() {
            let s = &self.table[slot];
            let tier = self.syms.resolve(s.tier);
            let name = self.syms.resolve(s.name);
            let slo = slos.iter().find(|p| p.tier == tier && p.series == name);
            let fast = self.window_stats(&s.points, s.kind, now, self.fast, slo);
            let slow = self.window_stats(&s.points, s.kind, now, self.slow, slo);
            rows.push(ScrapeRow {
                tier: tier.to_string(),
                name: name.to_string(),
                kind: s.kind,
                nodes: s.nodes.len() as u64,
                fast,
                slow,
            });
        }
        self.slos = slos;
        self.scrapes.push(Scrape { at: now, rows });
        let cutoff = SimTime(now.0.saturating_sub(self.slow.as_micros()));
        for s in &mut self.table {
            while s.points.front().is_some_and(|&(t, _)| t <= cutoff) {
                s.points.pop_front();
            }
        }
    }

    /// All scrapes taken so far, in time order.
    pub fn scrapes(&self) -> &[Scrape] {
        &self.scrapes
    }

    /// The named fleet time series derived from scrapes: one
    /// `(at, WindowStats)` pair per scrape where the series existed, over
    /// the fast window.
    pub fn fleet_series(&self, tier: &str, name: &str) -> Vec<(SimTime, WindowStats)> {
        self.scrapes
            .iter()
            .filter_map(|s| {
                s.rows
                    .iter()
                    .find(|r| r.tier == tier && r.name == name)
                    .map(|r| (s.at, r.fast))
            })
            .collect()
    }

    /// Raw points of a series still inside the retention window (scrapes
    /// prune to the slow window; an unscraped plane retains everything).
    /// Used by shape analyses — e.g. bucketing reconnects over time.
    pub fn points(&self, tier: &str, name: &str) -> Vec<(SimTime, f64)> {
        self.lookup(tier, name)
            .map(|s| s.points.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Lifetime totals for a series: `(points, sum)`.
    pub fn totals(&self, tier: &str, name: &str) -> (u64, f64) {
        self.lookup(tier, name)
            .map(|s| (s.total_count, s.total_sum))
            .unwrap_or((0, 0.0))
    }

    /// Every (tier, name) pair with its kind and emitting-node count, in
    /// (tier, name) order.
    pub fn series_index(&self) -> Vec<(String, String, SeriesKind, u64)> {
        self.sorted_slots()
            .into_iter()
            .map(|i| {
                let s = &self.table[i];
                (
                    self.syms.resolve(s.tier).to_string(),
                    self.syms.resolve(s.name).to_string(),
                    s.kind,
                    s.nodes.len() as u64,
                )
            })
            .collect()
    }

    /// SLO pages: scrapes where a policy's fast *and* slow burn rates both
    /// reached its page level — the standard multi-window burn alert (the
    /// fast window catches the spike, the slow window filters blips).
    pub fn slo_alerts(&self) -> Vec<SloAlert> {
        let mut alerts = Vec::new();
        for scrape in &self.scrapes {
            for p in &self.slos {
                if let Some(r) = scrape
                    .rows
                    .iter()
                    .find(|r| r.tier == p.tier && r.name == p.series)
                {
                    if r.fast.burn_rate >= p.page_burn && r.slow.burn_rate >= p.page_burn {
                        alerts.push(SloAlert {
                            at: scrape.at,
                            tier: p.tier.clone(),
                            series: p.series.clone(),
                            fast_burn: r.fast.burn_rate,
                            slow_burn: r.slow.burn_rate,
                        });
                    }
                }
            }
        }
        alerts
    }

    /// Registered SLO policies.
    pub fn slos(&self) -> &[SloPolicy] {
        &self.slos
    }

    /// Renders the most recent scrape as Prometheus text with `tier`,
    /// `series`, `window`, and `stat` labels (values escaped per the
    /// exposition format). Deterministic: virtual-time stats only.
    pub fn export_prometheus(&self) -> String {
        let mut out = String::new();
        let Some(last) = self.scrapes.last() else {
            return out;
        };
        let _ = writeln!(
            out,
            "# HELP ods_window_stat Fleet rollup at the last ODS scrape."
        );
        let _ = writeln!(out, "# TYPE ods_window_stat gauge");
        for r in &last.rows {
            for (win, st) in [("fast", &r.fast), ("slow", &r.slow)] {
                let stats: &[(&str, f64)] = match r.kind {
                    SeriesKind::Counter => {
                        &[("rate_per_s", st.rate_per_s), ("count", st.count as f64)]
                    }
                    SeriesKind::Gauge => &[("last", st.last), ("count", st.count as f64)],
                    SeriesKind::Sample => &[
                        ("rate_per_s", st.rate_per_s),
                        ("p50", st.p50),
                        ("p90", st.p90),
                        ("p99", st.p99),
                    ],
                };
                for (stat, v) in stats {
                    let _ = writeln!(
                        out,
                        "ods_window_stat{{tier=\"{}\",series=\"{}\",window=\"{win}\",stat=\"{stat}\"}} {v:.6}",
                        escape_label_value(&r.tier),
                        escape_label_value(&r.name),
                    );
                }
            }
        }
        out
    }
}

/// An actor that drives periodic scrapes from inside the simulation, the
/// way the real ODS aggregation tier polls its publishers.
pub struct OdsScraper {
    period: SimDuration,
}

impl OdsScraper {
    /// Creates a scraper that rolls the plane up every `period`.
    pub fn new(period: SimDuration) -> OdsScraper {
        OdsScraper { period }
    }
}

impl Actor for OdsScraper {
    fn kind(&self) -> &'static str {
        "ods.scraper"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.period, 0);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _msg: Message) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        ctx.ods_scrape();
        ctx.set_timer(self.period, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_collects_nothing() {
        let mut ods = Ods::default();
        ods.emit_counter(NodeId(0), tiers::ZEUS, "commits", SimTime(1), 1.0);
        ods.scrape(SimTime(10));
        assert!(ods.scrapes().is_empty());
        assert_eq!(ods.totals(tiers::ZEUS, "commits"), (0, 0.0));
    }

    #[test]
    fn counter_rate_and_sample_percentiles() {
        let mut ods = Ods::default();
        ods.enable(SimDuration::from_secs(5), SimDuration::from_secs(60));
        let t = |s: u64| SimTime(s * 1_000_000);
        for i in 1..=10u64 {
            ods.emit_counter(NodeId(0), tiers::ZEUS, "commits", t(i), 2.0);
            ods.emit_sample(
                NodeId(1),
                tiers::PROXY,
                "propagation_s",
                t(i),
                0.1 * i as f64,
            );
        }
        ods.scrape(t(10));
        let s = &ods.scrapes()[0];
        let commits = s.rows.iter().find(|r| r.name == "commits").unwrap();
        // Fast window (5s, 10s] holds emits at t=6..=10: 5 deltas of 2.0.
        assert_eq!(commits.fast.count, 5);
        assert!((commits.fast.rate_per_s - 2.0).abs() < 1e-9);
        assert_eq!(commits.slow.count, 10);
        let prop = s.rows.iter().find(|r| r.name == "propagation_s").unwrap();
        assert_eq!(prop.fast.count, 5);
        assert!(prop.fast.p50 >= 0.6 && prop.fast.p99 <= 1.0 + 1e-9);
        assert_eq!(prop.nodes, 1);
    }

    #[test]
    fn slo_burn_rates_and_paging() {
        let mut ods = Ods::default();
        ods.enable(SimDuration::from_secs(5), SimDuration::from_secs(60));
        ods.register_slo(SloPolicy {
            tier: tiers::PROXY.into(),
            series: "propagation_s".into(),
            threshold: 1.0,
            objective: 0.9, // 10% budget
            page_burn: 2.0,
        });
        let t = |s: u64| SimTime(s * 1_000_000);
        // 40% of samples breach: burn = 0.4 / 0.1 = 4x in both windows.
        for i in 0..10u64 {
            let v = if i % 5 < 2 { 5.0 } else { 0.1 };
            ods.emit_sample(NodeId(0), tiers::PROXY, "propagation_s", t(i + 1), v);
        }
        ods.scrape(t(10));
        let r = &ods.scrapes()[0].rows[0];
        assert!((r.slow.breach_fraction - 0.4).abs() < 1e-9);
        assert!((r.slow.burn_rate - 4.0).abs() < 1e-9);
        let alerts = ods.slo_alerts();
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].fast_burn >= 2.0 && alerts[0].slow_burn >= 2.0);
    }

    #[test]
    fn scrape_prunes_to_slow_window() {
        let mut ods = Ods::default();
        ods.enable(SimDuration::from_secs(5), SimDuration::from_secs(10));
        ods.emit_gauge(NodeId(0), tiers::LASER, "lag", SimTime(1_000_000), 3.0);
        ods.emit_gauge(NodeId(0), tiers::LASER, "lag", SimTime(20_000_000), 1.0);
        ods.scrape(SimTime(25_000_000));
        // The t=1s point aged out; only the t=20s point remains windowed.
        let r = &ods.scrapes()[0].rows[0];
        assert_eq!(r.slow.count, 1);
        assert_eq!(r.slow.last, 1.0);
        // Lifetime totals survive pruning.
        assert_eq!(ods.totals(tiers::LASER, "lag").0, 2);
    }

    #[test]
    fn prometheus_export_escapes_labels() {
        let mut ods = Ods::default();
        ods.enable(SimDuration::from_secs(5), SimDuration::from_secs(60));
        ods.emit_gauge(NodeId(0), "we\"ird\\tier\n", "g", SimTime(1), 1.0);
        ods.scrape(SimTime(2));
        let text = ods.export_prometheus();
        assert!(text.contains("tier=\"we\\\"ird\\\\tier\\n\""), "{text}");
        assert!(text.contains("# TYPE ods_window_stat gauge"));
    }
}
