//! Seeded chaos schedules and invariant checking.
//!
//! A [`ChaosPlan`] is a reproducible fault schedule — node crash/recover
//! windows, region partition/heal windows (symmetric and one-way), and
//! message drop/delay windows — generated deterministically from a seed and
//! applied to any [`Sim`] as control events. Every fault heals before the plan's horizon, so a run
//! always ends in a fault-free period where convergence can be asserted.
//!
//! The [`Invariant`] trait is the checker API: protocol crates implement it
//! over their actor state (e.g. "no acknowledged commit lost"), and
//! [`run_plan`] drives the simulation in slices, evaluating every invariant
//! at each quiesce point and once more after the final heal.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::net::LinkFaults;
use crate::sim::Sim;
use crate::stats::names;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, RegionId};

/// What a single scheduled fault does while active.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// Crash a node at `at`, recover it at `until`.
    Crash {
        /// The victim node.
        node: NodeId,
    },
    /// Partition two regions at `at`, heal them at `until`.
    Partition {
        /// One side of the cut.
        a: RegionId,
        /// The other side of the cut.
        b: RegionId,
    },
    /// Cut one direction only at `at`, heal it at `until`: traffic from
    /// `from` to `to` is dropped while replies keep flowing — the classic
    /// asymmetric-routing failure where one side still believes the link
    /// is healthy.
    PartitionOneWay {
        /// The side whose outbound traffic is dropped.
        from: RegionId,
        /// The unreachable destination region.
        to: RegionId,
    },
    /// Install message drop/delay parameters at `at`, clear them at `until`.
    Degrade {
        /// The drop/delay parameters for the window.
        faults: LinkFaults,
    },
    /// Skew the node's local clock by `offset_us` at `at`, restore it at
    /// `until`. Scheduling runs on true time; only the node's own clock
    /// reads (timestamps it originates, latency it computes against foreign
    /// stamps) are off — a drifting NTP client.
    ClockSkew {
        /// The node whose clock drifts.
        node: NodeId,
        /// Signed offset in microseconds.
        offset_us: i64,
    },
    /// Stall the node from `at` to `until` — a GC pause or disk stall.
    /// Unlike a crash, deliveries and timers are deferred, not dropped, and
    /// the backlog drains in order when the window ends.
    Stall {
        /// The paused node.
        node: NodeId,
    },
}

/// One fault window inside a plan.
#[derive(Debug, Clone)]
pub struct Fault {
    /// What happens.
    pub kind: FaultKind,
    /// When the fault is injected.
    pub at: SimTime,
    /// When the fault heals (crash recovers, partition heals, degradation
    /// clears). Always at or before the plan horizon.
    pub until: SimTime,
    /// Human-readable label (e.g. the role of the crashed node).
    pub label: String,
}

impl Fault {
    /// One-line description: `[12.0s..14.5s] crash leader n3`.
    pub fn describe(&self) -> String {
        let window = format!(
            "[{:.1}s..{:.1}s]",
            self.at.as_secs_f64(),
            self.until.as_secs_f64()
        );
        match &self.kind {
            FaultKind::Crash { node } => format!("{window} crash {} {node}", self.label),
            FaultKind::Partition { a, b } => format!("{window} partition {a} <-> {b}"),
            FaultKind::PartitionOneWay { from, to } => {
                format!("{window} partition {from} -> {to} (one-way)")
            }
            FaultKind::Degrade { faults } => format!(
                "{window} degrade links: drop {:.0}%, delay {:.0}% up to {:.0}ms",
                faults.drop_prob * 100.0,
                faults.delay_prob * 100.0,
                faults.max_extra_delay.as_millis_f64()
            ),
            FaultKind::ClockSkew { node, offset_us } => format!(
                "{window} clock-skew {} {node} by {:+}ms",
                self.label,
                offset_us / 1000
            ),
            FaultKind::Stall { node } => {
                format!("{window} stall {} {node} (pause, not crash)", self.label)
            }
        }
    }
}

/// Parameters steering plan generation.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Faults are injected inside `[warmup, horizon]`; everything heals by
    /// `horizon`.
    pub warmup: SimDuration,
    /// The instant by which every fault has healed.
    pub horizon: SimDuration,
    /// Labeled nodes eligible for crash faults (label, node), e.g.
    /// `("leader", NodeId(3))`.
    pub crash_candidates: Vec<(String, NodeId)>,
    /// Maximum number of crash windows.
    pub max_crashes: usize,
    /// Number of regions in the topology (for partition faults).
    pub regions: u16,
    /// Maximum number of partition windows.
    pub max_partitions: usize,
    /// Maximum number of one-way (asymmetric) partition windows.
    pub max_oneway_partitions: usize,
    /// Maximum number of link degradation windows.
    pub max_degrades: usize,
    /// Range of per-message drop probability for degradation windows.
    pub drop_prob: (f64, f64),
    /// Upper bound on injected extra delay.
    pub max_extra_delay: SimDuration,
    /// Shortest fault window.
    pub min_outage: SimDuration,
    /// Longest fault window.
    pub max_outage: SimDuration,
    /// Maximum number of clock-skew windows (victims drawn from
    /// `crash_candidates`).
    pub max_clock_skews: usize,
    /// Largest clock offset magnitude injected by a skew window.
    pub max_skew: SimDuration,
    /// Maximum number of stall (GC-pause / slow-disk) windows (victims
    /// drawn from `crash_candidates`).
    pub max_stalls: usize,
    /// Longest stall window. Stalls are kept shorter than generic outages:
    /// a multi-second pause is a crash in all but name.
    pub max_stall: SimDuration,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            warmup: SimDuration::from_secs(2),
            horizon: SimDuration::from_secs(20),
            crash_candidates: Vec::new(),
            max_crashes: 3,
            regions: 1,
            max_partitions: 2,
            max_oneway_partitions: 2,
            max_degrades: 2,
            drop_prob: (0.02, 0.25),
            max_extra_delay: SimDuration::from_millis(200),
            min_outage: SimDuration::from_millis(500),
            max_outage: SimDuration::from_secs(5),
            max_clock_skews: 2,
            max_skew: SimDuration::from_secs(2),
            max_stalls: 2,
            max_stall: SimDuration::from_millis(1500),
        }
    }
}

/// A deterministic, replayable fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// The scheduled faults, in injection order.
    pub faults: Vec<Fault>,
    /// The instant by which every fault has healed.
    pub horizon: SimTime,
}

impl ChaosPlan {
    /// Generates a plan from `seed`. The same seed and config always produce
    /// the same plan, which is what makes failing scenarios replayable.
    pub fn generate(seed: u64, cfg: &ChaosConfig) -> ChaosPlan {
        assert!(cfg.warmup < cfg.horizon, "warmup must precede horizon");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4A05);
        let mut faults = Vec::new();
        let horizon = SimTime::ZERO + cfg.horizon;

        let window = |rng: &mut SmallRng| -> (SimTime, SimTime) {
            let lo = cfg.warmup.as_micros();
            let hi = cfg.horizon.as_micros();
            let len = rng.gen_range(cfg.min_outage.as_micros()..=cfg.max_outage.as_micros());
            let latest_start = hi.saturating_sub(len).max(lo);
            let at = rng.gen_range(lo..=latest_start);
            (SimTime(at), SimTime((at + len).min(hi)))
        };

        // Crashes: distinct victims, sampled without replacement.
        if !cfg.crash_candidates.is_empty() && cfg.max_crashes > 0 {
            let n = rng.gen_range(1..=cfg.max_crashes.min(cfg.crash_candidates.len()));
            let mut pool: Vec<usize> = (0..cfg.crash_candidates.len()).collect();
            pool.shuffle(&mut rng);
            for &idx in pool.iter().take(n) {
                let (label, node) = &cfg.crash_candidates[idx];
                let (at, until) = window(&mut rng);
                faults.push(Fault {
                    kind: FaultKind::Crash { node: *node },
                    at,
                    until,
                    label: label.clone(),
                });
            }
        }

        // Partitions: random distinct region pairs.
        if cfg.regions >= 2 && cfg.max_partitions > 0 {
            let n = rng.gen_range(0..=cfg.max_partitions);
            for _ in 0..n {
                let a = rng.gen_range(0..cfg.regions);
                let mut b = rng.gen_range(0..cfg.regions - 1);
                if b >= a {
                    b += 1;
                }
                let (at, until) = window(&mut rng);
                faults.push(Fault {
                    kind: FaultKind::Partition {
                        a: RegionId(a),
                        b: RegionId(b),
                    },
                    at,
                    until,
                    label: String::new(),
                });
            }
        }

        // Link degradation: non-overlapping windows (the fault plane holds
        // one parameter set at a time, so overlap would let an early clear
        // cancel a later window).
        if cfg.max_degrades > 0 {
            let n = rng.gen_range(0..=cfg.max_degrades);
            let mut cursor = cfg.warmup.as_micros();
            for _ in 0..n {
                let len = rng.gen_range(cfg.min_outage.as_micros()..=cfg.max_outage.as_micros());
                let gap = rng.gen_range(0..=cfg.max_outage.as_micros());
                let at = cursor + gap;
                let until = (at + len).min(cfg.horizon.as_micros());
                if at >= until {
                    break;
                }
                cursor = until;
                let drop_prob = rng.gen_range(cfg.drop_prob.0..=cfg.drop_prob.1);
                let delay_prob = rng.gen_range(0.0..=0.5);
                faults.push(Fault {
                    kind: FaultKind::Degrade {
                        faults: LinkFaults {
                            drop_prob,
                            delay_prob,
                            max_extra_delay: SimDuration::from_micros(
                                rng.gen_range(0..=cfg.max_extra_delay.as_micros()),
                            ),
                        },
                    },
                    at: SimTime(at),
                    until: SimTime(until),
                    label: String::new(),
                });
            }
        }

        // One-way partitions: random ordered distinct region pairs. Drawn
        // last so earlier fault families keep their RNG streams when this
        // knob is zeroed relative to older configs.
        if cfg.regions >= 2 && cfg.max_oneway_partitions > 0 {
            let n = rng.gen_range(0..=cfg.max_oneway_partitions);
            for _ in 0..n {
                let from = rng.gen_range(0..cfg.regions);
                let mut to = rng.gen_range(0..cfg.regions - 1);
                if to >= from {
                    to += 1;
                }
                let (at, until) = window(&mut rng);
                faults.push(Fault {
                    kind: FaultKind::PartitionOneWay {
                        from: RegionId(from),
                        to: RegionId(to),
                    },
                    at,
                    until,
                    label: String::new(),
                });
            }
        }

        // Clock skews: victims drawn (with replacement) from the crash
        // candidate pool — any labeled node can have a drifting clock.
        // Drawn after one-way partitions so earlier fault families keep
        // their RNG streams when this knob is zeroed relative to older
        // configs.
        if !cfg.crash_candidates.is_empty() && cfg.max_clock_skews > 0 {
            let n = rng.gen_range(0..=cfg.max_clock_skews);
            for _ in 0..n {
                let idx = rng.gen_range(0..cfg.crash_candidates.len());
                let (label, node) = cfg.crash_candidates[idx].clone();
                let max_us = cfg.max_skew.as_micros().max(1);
                let magnitude = rng.gen_range(max_us / 4..=max_us) as i64;
                let offset_us = if rng.gen_bool(0.5) {
                    magnitude
                } else {
                    -magnitude
                };
                let (at, until) = window(&mut rng);
                faults.push(Fault {
                    kind: FaultKind::ClockSkew { node, offset_us },
                    at,
                    until,
                    label,
                });
            }
        }

        // Stalls: same victim pool, but bounded by `max_stall` rather than
        // `max_outage` (drawn last, same stream-stability convention).
        if !cfg.crash_candidates.is_empty() && cfg.max_stalls > 0 {
            let n = rng.gen_range(0..=cfg.max_stalls);
            for _ in 0..n {
                let idx = rng.gen_range(0..cfg.crash_candidates.len());
                let (label, node) = cfg.crash_candidates[idx].clone();
                let hi = cfg.max_stall.as_micros().max(1);
                let lo = cfg.min_outage.as_micros().min(hi);
                let len = rng.gen_range(lo..=hi);
                let latest_start = cfg
                    .horizon
                    .as_micros()
                    .saturating_sub(len)
                    .max(cfg.warmup.as_micros());
                let at = rng.gen_range(cfg.warmup.as_micros()..=latest_start);
                faults.push(Fault {
                    kind: FaultKind::Stall { node },
                    at: SimTime(at),
                    until: SimTime((at + len).min(cfg.horizon.as_micros())),
                    label,
                });
            }
        }

        faults.sort_by_key(|f| f.at);
        ChaosPlan {
            seed,
            faults,
            horizon,
        }
    }

    /// Schedules every fault (and its heal) on `sim` as control events.
    pub fn apply(&self, sim: &mut Sim) {
        for fault in &self.faults {
            match fault.kind.clone() {
                FaultKind::Crash { node } => {
                    sim.schedule(fault.at, move |s| {
                        s.metrics_mut().incr(names::CHAOS_CRASHES, 1);
                        s.crash(node);
                    });
                    sim.schedule(fault.until, move |s| s.recover(node));
                }
                FaultKind::Partition { a, b } => {
                    sim.schedule(fault.at, move |s| {
                        s.metrics_mut().incr(names::CHAOS_PARTITIONS, 1);
                        s.partition(a, b);
                    });
                    sim.schedule(fault.until, move |s| s.heal(a, b));
                }
                FaultKind::PartitionOneWay { from, to } => {
                    sim.schedule(fault.at, move |s| {
                        s.metrics_mut().incr(names::CHAOS_ONEWAY_PARTITIONS, 1);
                        s.partition_oneway(from, to);
                    });
                    sim.schedule(fault.until, move |s| s.heal_oneway(from, to));
                }
                FaultKind::Degrade { faults } => {
                    sim.schedule(fault.at, move |s| {
                        s.metrics_mut().incr(names::CHAOS_DEGRADES, 1);
                        s.set_link_faults(faults);
                    });
                    sim.schedule(fault.until, |s| s.clear_link_faults());
                }
                FaultKind::ClockSkew { node, offset_us } => {
                    sim.schedule(fault.at, move |s| {
                        s.metrics_mut()
                            .incr(crate::stats::names::CHAOS_CLOCK_SKEWS, 1);
                        s.set_clock_skew(node, offset_us);
                    });
                    sim.schedule(fault.until, move |s| s.clear_clock_skew(node));
                }
                FaultKind::Stall { node } => {
                    let until = fault.until;
                    // The stall carries its own horizon; no heal event.
                    sim.schedule(fault.at, move |s| {
                        s.metrics_mut().incr(crate::stats::names::CHAOS_STALLS, 1);
                        s.stall(node, until);
                    });
                }
            }
        }
    }

    /// One description line per fault, in injection order.
    pub fn describe(&self) -> Vec<String> {
        self.faults.iter().map(Fault::describe).collect()
    }
}

/// A safety or liveness property checked against the simulation.
///
/// Implementations inspect actor state through [`Sim::actor`] downcasts.
/// `check_always` runs at every quiesce point, including while faults are
/// active, so it must only assert properties that hold *under* faults
/// (safety). `check_final` runs once after every fault has healed and the
/// system has settled, so it may assert convergence (liveness).
pub trait Invariant {
    /// Short stable name for reporting.
    fn name(&self) -> &'static str;

    /// Safety check, evaluated at every quiesce point.
    fn check_always(&mut self, _sim: &Sim) -> Result<(), String> {
        Ok(())
    }

    /// Liveness check, evaluated once after all faults healed.
    fn check_final(&mut self, _sim: &Sim) -> Result<(), String> {
        Ok(())
    }

    /// Optional measurement reported alongside the verdict (e.g. observed
    /// convergence time). Collected after `check_final`.
    fn note(&self) -> Option<String> {
        None
    }
}

/// The verdict for one invariant after a chaos run.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The invariant's name.
    pub name: &'static str,
    /// `None` if the invariant held; otherwise the first failure message.
    pub failure: Option<String>,
    /// Simulated time of the first failure.
    pub failed_at: Option<SimTime>,
    /// Optional measurement reported by the invariant (see
    /// [`Invariant::note`]).
    pub note: Option<String>,
}

impl Verdict {
    /// Whether the invariant held for the whole run.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// The result of [`run_plan`].
#[derive(Debug)]
pub struct ChaosReport {
    /// Per-invariant verdicts, in the order the invariants were given.
    pub verdicts: Vec<Verdict>,
    /// Number of quiesce points at which `check_always` ran.
    pub checkpoints: usize,
    /// Simulated time when the run finished.
    pub finished_at: SimTime,
}

impl ChaosReport {
    /// Whether every invariant held.
    pub fn all_ok(&self) -> bool {
        self.verdicts.iter().all(Verdict::ok)
    }
}

/// Applies `plan` to `sim` and drives it in `check_every` slices until
/// `plan.horizon + settle`, evaluating every invariant's `check_always` at
/// each slice boundary and `check_final` at the end. The first failure per
/// invariant is recorded; checking continues for the others.
pub fn run_plan(
    sim: &mut Sim,
    plan: &ChaosPlan,
    invariants: &mut [Box<dyn Invariant>],
    check_every: SimDuration,
    settle: SimDuration,
) -> ChaosReport {
    plan.apply(sim);
    let mut verdicts: Vec<Verdict> = invariants
        .iter()
        .map(|inv| Verdict {
            name: inv.name(),
            failure: None,
            failed_at: None,
            note: None,
        })
        .collect();
    let end = plan.horizon + settle;
    let mut checkpoints = 0usize;
    while sim.now() < end {
        sim.run_for(check_every);
        checkpoints += 1;
        for (inv, verdict) in invariants.iter_mut().zip(&mut verdicts) {
            if verdict.failure.is_none() {
                if let Err(msg) = inv.check_always(sim) {
                    verdict.failure = Some(msg);
                    verdict.failed_at = Some(sim.now());
                }
            }
        }
    }
    for (inv, verdict) in invariants.iter_mut().zip(&mut verdicts) {
        if verdict.failure.is_none() {
            if let Err(msg) = inv.check_final(sim) {
                verdict.failure = Some(msg);
                verdict.failed_at = Some(sim.now());
            }
        }
        verdict.note = inv.note();
    }
    ChaosReport {
        verdicts,
        checkpoints,
        finished_at: sim.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetConfig;
    use crate::sim::{Actor, Ctx, Message};
    use crate::topology::Topology;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let cfg = ChaosConfig {
            crash_candidates: vec![
                ("a".into(), NodeId(0)),
                ("b".into(), NodeId(1)),
                ("c".into(), NodeId(2)),
            ],
            regions: 3,
            ..ChaosConfig::default()
        };
        let p1 = ChaosPlan::generate(42, &cfg);
        let p2 = ChaosPlan::generate(42, &cfg);
        assert_eq!(p1.describe(), p2.describe());
        let p3 = ChaosPlan::generate(43, &cfg);
        assert_ne!(p1.describe(), p3.describe());
        assert!(!p1.faults.is_empty());
    }

    #[test]
    fn every_fault_heals_before_horizon() {
        let cfg = ChaosConfig {
            crash_candidates: (0..10u32).map(|n| (format!("n{n}"), NodeId(n))).collect(),
            max_crashes: 5,
            regions: 4,
            max_partitions: 4,
            max_degrades: 4,
            ..ChaosConfig::default()
        };
        for seed in 0..50 {
            let plan = ChaosPlan::generate(seed, &cfg);
            for fault in &plan.faults {
                assert!(fault.at < fault.until, "{}", fault.describe());
                assert!(fault.until <= plan.horizon, "{}", fault.describe());
            }
        }
    }

    #[test]
    fn plans_include_oneway_partitions() {
        let cfg = ChaosConfig {
            regions: 3,
            max_crashes: 0,
            max_partitions: 0,
            max_degrades: 0,
            ..ChaosConfig::default()
        };
        let mut saw_oneway = false;
        for seed in 0..20 {
            let plan = ChaosPlan::generate(seed, &cfg);
            for fault in &plan.faults {
                let FaultKind::PartitionOneWay { from, to } = fault.kind else {
                    panic!("only one-way faults were enabled: {}", fault.describe());
                };
                assert_ne!(from, to);
                assert!(fault.describe().contains("one-way"));
                saw_oneway = true;
            }
        }
        assert!(saw_oneway, "no seed in 0..20 drew a one-way partition");
    }

    #[test]
    fn plans_include_clock_skews_and_stalls() {
        let cfg = ChaosConfig {
            crash_candidates: vec![("a".into(), NodeId(0)), ("b".into(), NodeId(1))],
            regions: 1,
            max_crashes: 0,
            max_partitions: 0,
            max_oneway_partitions: 0,
            max_degrades: 0,
            ..ChaosConfig::default()
        };
        let (mut saw_skew, mut saw_stall) = (false, false);
        for seed in 0..20 {
            let plan = ChaosPlan::generate(seed, &cfg);
            for fault in &plan.faults {
                match fault.kind {
                    FaultKind::ClockSkew { offset_us, .. } => {
                        assert_ne!(offset_us, 0);
                        assert!(
                            offset_us.unsigned_abs() <= cfg.max_skew.as_micros(),
                            "{}",
                            fault.describe()
                        );
                        assert!(fault.describe().contains("clock-skew"));
                        saw_skew = true;
                    }
                    FaultKind::Stall { .. } => {
                        assert!(
                            fault.until - fault.at <= cfg.max_stall,
                            "{}",
                            fault.describe()
                        );
                        assert!(fault.describe().contains("stall"));
                        saw_stall = true;
                    }
                    _ => panic!("only skew/stall were enabled: {}", fault.describe()),
                }
            }
        }
        assert!(saw_skew, "no seed in 0..20 drew a clock skew");
        assert!(saw_stall, "no seed in 0..20 drew a stall");
    }

    #[test]
    fn applied_skews_and_stalls_fire_and_heal() {
        let cfg = ChaosConfig {
            warmup: SimDuration::from_millis(500),
            horizon: SimDuration::from_secs(6),
            crash_candidates: vec![("n".into(), NodeId(0))],
            regions: 1,
            max_crashes: 0,
            max_partitions: 0,
            max_oneway_partitions: 0,
            max_degrades: 0,
            max_clock_skews: 2,
            max_stalls: 2,
            ..ChaosConfig::default()
        };
        // Pick a seed whose plan has at least one of each.
        let (seed, plan) = (0..50)
            .map(|s| (s, ChaosPlan::generate(s, &cfg)))
            .find(|(_, p)| {
                p.faults
                    .iter()
                    .any(|f| matches!(f.kind, FaultKind::ClockSkew { .. }))
                    && p.faults
                        .iter()
                        .any(|f| matches!(f.kind, FaultKind::Stall { .. }))
            })
            .expect("some seed draws both fault kinds");
        let topo = Topology::symmetric(1, 1, 2);
        let mut sim = Sim::new(topo, NetConfig::default(), seed);
        plan.apply(&mut sim);
        sim.run_until(plan.horizon + SimDuration::from_secs(1));
        assert!(sim.metrics().counter(names::CHAOS_CLOCK_SKEWS) >= 1);
        assert!(sim.metrics().counter(names::CHAOS_STALLS) >= 1);
        // Everything healed by the horizon.
        assert!(!sim.is_stalled(NodeId(0)));
        assert_eq!(sim.local_now(NodeId(0)), sim.now());
    }

    struct Pinger {
        peer: NodeId,
        received: u64,
    }

    impl Actor for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _msg: Message) {
            self.received += 1;
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            ctx.send_value(self.peer, 64, ());
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }
    }

    #[test]
    fn degrade_windows_drop_traffic_then_stop() {
        let topo = Topology::symmetric(2, 1, 1);
        let mut sim = Sim::new(topo, NetConfig::default(), 9);
        sim.add_actor(
            NodeId(0),
            Box::new(Pinger {
                peer: NodeId(1),
                received: 0,
            }),
        );
        sim.add_actor(
            NodeId(1),
            Box::new(Pinger {
                peer: NodeId(0),
                received: 0,
            }),
        );
        sim.schedule(SimTime(0), |s| {
            s.set_link_faults(LinkFaults {
                drop_prob: 1.0,
                delay_prob: 0.0,
                max_extra_delay: SimDuration::ZERO,
            });
        });
        sim.schedule(SimTime(5_000_000), Sim::clear_link_faults);
        sim.run_until(SimTime(10_000_000));
        assert!(sim.metrics().counter("simnet.dropped_chaos") > 0);
        let a: &Pinger = sim.actor(NodeId(0)).unwrap();
        // Nothing for 5s, then ~50 pings in the healthy half.
        assert!(a.received >= 40, "received {}", a.received);
        assert!(a.received <= 55, "received {}", a.received);
    }

    struct CountingInvariant {
        calls: usize,
        finals: usize,
        fail_at_call: Option<usize>,
    }

    impl Invariant for CountingInvariant {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn check_always(&mut self, _sim: &Sim) -> Result<(), String> {
            self.calls += 1;
            if Some(self.calls) == self.fail_at_call {
                return Err("injected failure".to_string());
            }
            Ok(())
        }
        fn check_final(&mut self, _sim: &Sim) -> Result<(), String> {
            self.finals += 1;
            Ok(())
        }
    }

    #[test]
    fn run_plan_reports_first_failure_and_runs_finals() {
        let topo = Topology::symmetric(2, 1, 2);
        let mut sim = Sim::new(topo, NetConfig::default(), 5);
        sim.add_actor(
            NodeId(0),
            Box::new(Pinger {
                peer: NodeId(1),
                received: 0,
            }),
        );
        sim.add_actor(
            NodeId(1),
            Box::new(Pinger {
                peer: NodeId(0),
                received: 0,
            }),
        );
        let cfg = ChaosConfig {
            warmup: SimDuration::from_millis(500),
            horizon: SimDuration::from_secs(4),
            crash_candidates: vec![("pinger".into(), NodeId(2))],
            regions: 2,
            max_outage: SimDuration::from_secs(1),
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::generate(7, &cfg);
        let mut invariants: Vec<Box<dyn Invariant>> = vec![
            Box::new(CountingInvariant {
                calls: 0,
                finals: 0,
                fail_at_call: Some(2),
            }),
            Box::new(CountingInvariant {
                calls: 0,
                finals: 0,
                fail_at_call: None,
            }),
        ];
        let report = run_plan(
            &mut sim,
            &plan,
            &mut invariants,
            SimDuration::from_millis(500),
            SimDuration::from_secs(1),
        );
        assert!(!report.all_ok());
        assert!(report.verdicts[0].failure.as_deref() == Some("injected failure"));
        assert!(report.verdicts[0].failed_at.is_some());
        assert!(report.verdicts[1].ok());
        assert!(report.checkpoints >= 8);
        // All faults healed: the sim must end without partitions or faults.
        assert!(!sim.has_partitions());
        assert!(!sim.link_faults().is_active());
    }
}
