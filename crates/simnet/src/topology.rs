//! Fleet topology: regions, clusters, and servers.
//!
//! The paper's fleet is organized as geographically distributed *regions*
//! (data centers), each containing multiple *clusters* of thousands of
//! servers (§3.4). [`Topology`] captures that hierarchy and gives every
//! server a dense [`NodeId`] so the simulator can index per-node state with
//! plain vectors.

use std::fmt;

/// Dense identifier of a simulated node (server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a region (data center).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u16);

/// Identifier of a cluster, unique across the whole topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Where a node sits in the region/cluster hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The node's region.
    pub region: RegionId,
    /// The node's cluster (globally unique id).
    pub cluster: ClusterId,
}

/// The relative network distance between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proximity {
    /// The two endpoints are the same node.
    SameNode,
    /// Same cluster, different servers.
    SameCluster,
    /// Same region, different clusters.
    SameRegion,
    /// Different regions (cross-continent in the paper's deployment).
    CrossRegion,
}

/// A fleet topology: an immutable region → cluster → server hierarchy.
///
/// # Examples
///
/// ```
/// use simnet::topology::Topology;
///
/// // Three regions, four clusters each, 100 servers per cluster.
/// let topo = Topology::symmetric(3, 4, 100);
/// assert_eq!(topo.num_nodes(), 1200);
/// assert_eq!(topo.num_clusters(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    placements: Vec<Placement>,
    clusters: Vec<Vec<NodeId>>,
    cluster_region: Vec<RegionId>,
    regions: Vec<Vec<ClusterId>>,
}

impl Topology {
    /// Builds a symmetric topology: `regions` regions, each with
    /// `clusters_per_region` clusters of `servers_per_cluster` servers.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn symmetric(
        regions: usize,
        clusters_per_region: usize,
        servers_per_cluster: usize,
    ) -> Topology {
        assert!(
            regions > 0 && clusters_per_region > 0 && servers_per_cluster > 0,
            "topology dimensions must be nonzero"
        );
        let mut builder = TopologyBuilder::new();
        for _ in 0..regions {
            let r = builder.add_region();
            for _ in 0..clusters_per_region {
                let c = builder.add_cluster(r);
                builder.add_servers(c, servers_per_cluster);
            }
        }
        builder.build()
    }

    /// Total number of server nodes.
    pub fn num_nodes(&self) -> usize {
        self.placements.len()
    }

    /// Total number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Total number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Returns the placement of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn placement(&self, node: NodeId) -> Placement {
        self.placements[node.0 as usize]
    }

    /// Returns the nodes of `cluster`.
    pub fn cluster_nodes(&self, cluster: ClusterId) -> &[NodeId] {
        &self.clusters[cluster.0 as usize]
    }

    /// Returns the region containing `cluster`.
    pub fn cluster_region(&self, cluster: ClusterId) -> RegionId {
        self.cluster_region[cluster.0 as usize]
    }

    /// Returns the clusters of `region`.
    pub fn region_clusters(&self, region: RegionId) -> &[ClusterId] {
        &self.regions[region.0 as usize]
    }

    /// Iterates over every node id in the topology.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.placements.len() as u32).map(NodeId)
    }

    /// Classifies the network distance between `a` and `b`.
    pub fn proximity(&self, a: NodeId, b: NodeId) -> Proximity {
        if a == b {
            return Proximity::SameNode;
        }
        let pa = self.placement(a);
        let pb = self.placement(b);
        if pa.cluster == pb.cluster {
            Proximity::SameCluster
        } else if pa.region == pb.region {
            Proximity::SameRegion
        } else {
            Proximity::CrossRegion
        }
    }
}

/// Incremental builder for irregular topologies.
///
/// # Examples
///
/// ```
/// use simnet::topology::TopologyBuilder;
///
/// let mut b = TopologyBuilder::new();
/// let r = b.add_region();
/// let c = b.add_cluster(r);
/// let nodes = b.add_servers(c, 8);
/// let topo = b.build();
/// assert_eq!(topo.cluster_nodes(c), &nodes[..]);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    placements: Vec<Placement>,
    clusters: Vec<Vec<NodeId>>,
    cluster_region: Vec<RegionId>,
    regions: Vec<Vec<ClusterId>>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Adds a region and returns its id.
    pub fn add_region(&mut self) -> RegionId {
        let id = RegionId(self.regions.len() as u16);
        self.regions.push(Vec::new());
        id
    }

    /// Adds a cluster to `region` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `region` was not created by this builder.
    pub fn add_cluster(&mut self, region: RegionId) -> ClusterId {
        assert!((region.0 as usize) < self.regions.len(), "unknown region");
        let id = ClusterId(self.clusters.len() as u32);
        self.clusters.push(Vec::new());
        self.cluster_region.push(region);
        self.regions[region.0 as usize].push(id);
        id
    }

    /// Adds one server to `cluster` and returns its node id.
    pub fn add_server(&mut self, cluster: ClusterId) -> NodeId {
        assert!(
            (cluster.0 as usize) < self.clusters.len(),
            "unknown cluster"
        );
        let id = NodeId(self.placements.len() as u32);
        self.placements.push(Placement {
            region: self.cluster_region[cluster.0 as usize],
            cluster,
        });
        self.clusters[cluster.0 as usize].push(id);
        id
    }

    /// Adds `n` servers to `cluster`, returning their ids.
    pub fn add_servers(&mut self, cluster: ClusterId, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_server(cluster)).collect()
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        Topology {
            placements: self.placements,
            clusters: self.clusters,
            cluster_region: self.cluster_region,
            regions: self.regions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_shape() {
        let t = Topology::symmetric(2, 3, 10);
        assert_eq!(t.num_regions(), 2);
        assert_eq!(t.num_clusters(), 6);
        assert_eq!(t.num_nodes(), 60);
        for r in 0..2 {
            assert_eq!(t.region_clusters(RegionId(r)).len(), 3);
        }
    }

    #[test]
    fn placement_is_consistent() {
        let t = Topology::symmetric(2, 2, 5);
        for node in t.nodes() {
            let p = t.placement(node);
            assert!(t.cluster_nodes(p.cluster).contains(&node));
            assert_eq!(t.cluster_region(p.cluster), p.region);
            assert!(t.region_clusters(p.region).contains(&p.cluster));
        }
    }

    #[test]
    fn proximity_classification() {
        let t = Topology::symmetric(2, 2, 2);
        // Nodes 0,1 share cluster 0; nodes 2,3 share cluster 1 (region 0);
        // nodes 4.. are region 1.
        assert_eq!(t.proximity(NodeId(0), NodeId(0)), Proximity::SameNode);
        assert_eq!(t.proximity(NodeId(0), NodeId(1)), Proximity::SameCluster);
        assert_eq!(t.proximity(NodeId(0), NodeId(2)), Proximity::SameRegion);
        assert_eq!(t.proximity(NodeId(0), NodeId(4)), Proximity::CrossRegion);
    }

    #[test]
    fn irregular_builder() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_region();
        let r1 = b.add_region();
        let c0 = b.add_cluster(r0);
        let c1 = b.add_cluster(r1);
        b.add_servers(c0, 3);
        b.add_servers(c1, 1);
        let t = b.build();
        assert_eq!(t.cluster_nodes(c0).len(), 3);
        assert_eq!(t.cluster_nodes(c1).len(), 1);
        assert_eq!(t.num_nodes(), 4);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = Topology::symmetric(0, 1, 1);
    }
}
