//! Causal tracing for simulated config propagation.
//!
//! A *trace* follows one logical operation — typically a single config
//! commit — across every hop of the distribution pipeline: mutator →
//! landing strip → gitstore → tailer → Zeus leader quorum → observer
//! fan-out → proxy → client apply. Each hop is a [`SpanRecord`] stamped
//! with the node, the simulated time, and key-value attributes; spans form
//! a tree through parent links, and the whole tree shares one [`TraceId`].
//!
//! The [`Tracer`] lives on the [`crate::sim::Sim`] next to
//! [`crate::stats::Metrics`]; actors reach it through [`crate::sim::Ctx`].
//! Trace context ([`TraceCtx`]) rides inside protocol messages (and on the
//! delivery envelope via `Ctx::send_traced`), so retransmissions and
//! failovers carry the causal link with them. Duplicate deliveries are the
//! norm in a lossy network, so hop recording goes through [`Tracer::hop`],
//! which deduplicates on (trace, hop name, node): the first arrival wins,
//! re-deliveries return `None` and record nothing.
//!
//! Batched frames (a retransmitted append batch, a coalesced observer or
//! proxy push) carry one context *per batched write* on the envelope
//! (`Ctx::send_traced_batch`): each write keeps its own trace, so the
//! per-write dedup key still applies hop-by-hop, and an engine-level drop
//! of the frame annotates every write's waterfall rather than only the
//! first one's.
//!
//! All IDs are allocated from sequential counters, so a run's trace output
//! is as deterministic as the simulation itself.

use std::collections::BTreeMap;
use std::collections::HashSet;

use crate::time::SimTime;
use crate::topology::NodeId;

/// Identifies one end-to-end trace (one config commit's journey).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// The causal context carried in messages: which trace, and which span to
/// parent new hops under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The trace this context belongs to.
    pub trace: TraceId,
    /// The span new children should hang off.
    pub span: SpanId,
}

/// Whether a record is a hop (a span with causal children) or an
/// annotation (a point event attached to an existing span, e.g. a
/// retransmission or a dropped packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span: one pipeline hop.
    Span,
    /// An annotation on an existing span.
    Annot,
}

/// One recorded span or annotation.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The trace this record belongs to.
    pub trace: TraceId,
    /// This record's span id (annotations get ids too, for ordering).
    pub span: SpanId,
    /// Parent span, `None` for a trace root.
    pub parent: Option<SpanId>,
    /// Hop or annotation name, e.g. `"zeus.quorum_commit"`.
    pub name: &'static str,
    /// Node the record was taken on; `None` for driver-side spans (the
    /// in-process configerator pipeline runs outside the actor plane).
    pub node: Option<NodeId>,
    /// Simulated time of the record.
    pub at: SimTime,
    /// Free-form attributes (zxid, retry counts, drop reasons, ...).
    pub attrs: Vec<(&'static str, String)>,
    /// Span or annotation.
    pub kind: RecordKind,
}

/// The simulation-wide trace collector.
///
/// Span and trace IDs are sequential; records append in the order they are
/// taken, which (because handlers run at nondecreasing simulated time) is
/// also time order.
#[derive(Debug, Default)]
pub struct Tracer {
    next_trace: u64,
    next_span: u64,
    records: Vec<SpanRecord>,
    labels: BTreeMap<TraceId, String>,
    seen_hops: HashSet<(TraceId, &'static str, i64)>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    fn alloc_span(&mut self) -> SpanId {
        self.next_span += 1;
        SpanId(self.next_span)
    }

    /// Starts a new trace with a human-readable `label` (e.g. the config
    /// path) and a root span named `name`. Returns the root context.
    pub fn start(
        &mut self,
        label: impl Into<String>,
        name: &'static str,
        node: Option<NodeId>,
        at: SimTime,
        attrs: Vec<(&'static str, String)>,
    ) -> TraceCtx {
        self.next_trace += 1;
        let trace = TraceId(self.next_trace);
        self.labels.insert(trace, label.into());
        let span = self.alloc_span();
        self.records.push(SpanRecord {
            trace,
            span,
            parent: None,
            name,
            node,
            at,
            attrs,
            kind: RecordKind::Span,
        });
        TraceCtx { trace, span }
    }

    /// Records a child span under `parent` unconditionally. Use for hops
    /// that cannot be duplicated (driver-side pipeline stages).
    pub fn child(
        &mut self,
        parent: TraceCtx,
        name: &'static str,
        node: Option<NodeId>,
        at: SimTime,
        attrs: Vec<(&'static str, String)>,
    ) -> TraceCtx {
        let span = self.alloc_span();
        self.records.push(SpanRecord {
            trace: parent.trace,
            span,
            parent: Some(parent.span),
            name,
            node,
            at,
            attrs,
            kind: RecordKind::Span,
        });
        TraceCtx {
            trace: parent.trace,
            span,
        }
    }

    /// Records a child span under `parent`, deduplicated on
    /// (trace, name, node): if this hop was already recorded at this node,
    /// nothing is recorded and `None` is returned. This is what keeps
    /// retransmitted and duplicated messages from double-counting hops.
    pub fn hop(
        &mut self,
        parent: TraceCtx,
        name: &'static str,
        node: Option<NodeId>,
        at: SimTime,
        attrs: Vec<(&'static str, String)>,
    ) -> Option<TraceCtx> {
        let key = (parent.trace, name, node.map(|n| n.0 as i64).unwrap_or(-1));
        if !self.seen_hops.insert(key) {
            return None;
        }
        Some(self.child(parent, name, node, at, attrs))
    }

    /// Records an annotation (retry, drop, redirect, ...) under `ctx`'s
    /// span. Annotations are never deduplicated — every retransmission
    /// counts.
    pub fn annot(
        &mut self,
        ctx: TraceCtx,
        name: &'static str,
        node: Option<NodeId>,
        at: SimTime,
        attrs: Vec<(&'static str, String)>,
    ) {
        let span = self.alloc_span();
        self.records.push(SpanRecord {
            trace: ctx.trace,
            span,
            parent: Some(ctx.span),
            name,
            node,
            at,
            attrs,
            kind: RecordKind::Annot,
        });
    }

    /// All trace ids, in creation order.
    pub fn traces(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.labels.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The label a trace was started with.
    pub fn label(&self, trace: TraceId) -> Option<&str> {
        self.labels.get(&trace).map(String::as_str)
    }

    /// All records, in recording order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Records belonging to `trace`, in recording order.
    pub fn trace_records(&self, trace: TraceId) -> Vec<&SpanRecord> {
        self.records.iter().filter(|r| r.trace == trace).collect()
    }

    /// Records in `trace` whose parent span does not exist in the trace.
    /// A correct instrumentation produces none: every hop's parent context
    /// was recorded before the message carrying it was sent.
    pub fn orphans(&self, trace: TraceId) -> Vec<&SpanRecord> {
        let known: HashSet<SpanId> = self
            .records
            .iter()
            .filter(|r| r.trace == trace && r.kind == RecordKind::Span)
            .map(|r| r.span)
            .collect();
        self.records
            .iter()
            .filter(|r| r.trace == trace)
            .filter(|r| match r.parent {
                Some(p) => !known.contains(&p),
                None => false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_and_deterministic() {
        let mut t = Tracer::new();
        let a = t.start("x", "root", None, SimTime(0), vec![]);
        let b = t.start("y", "root", None, SimTime(1), vec![]);
        assert_eq!(a.trace, TraceId(1));
        assert_eq!(b.trace, TraceId(2));
        assert_eq!(t.traces(), vec![TraceId(1), TraceId(2)]);
        assert_eq!(t.label(a.trace), Some("x"));
    }

    #[test]
    fn hop_dedups_per_trace_name_node() {
        let mut t = Tracer::new();
        let root = t.start("c", "root", None, SimTime(0), vec![]);
        let h1 = t.hop(root, "apply", Some(NodeId(3)), SimTime(5), vec![]);
        assert!(h1.is_some());
        // A duplicate delivery of the same message records nothing.
        assert!(t
            .hop(root, "apply", Some(NodeId(3)), SimTime(9), vec![])
            .is_none());
        // The same hop on a different node is a distinct record.
        assert!(t
            .hop(root, "apply", Some(NodeId(4)), SimTime(9), vec![])
            .is_some());
        let spans: Vec<_> = t
            .trace_records(root.trace)
            .into_iter()
            .filter(|r| r.kind == RecordKind::Span)
            .collect();
        assert_eq!(spans.len(), 3);
    }

    #[test]
    fn annotations_are_never_deduped() {
        let mut t = Tracer::new();
        let root = t.start("c", "root", None, SimTime(0), vec![]);
        t.annot(root, "retry", Some(NodeId(0)), SimTime(1), vec![]);
        t.annot(root, "retry", Some(NodeId(0)), SimTime(2), vec![]);
        let annots: Vec<_> = t
            .trace_records(root.trace)
            .into_iter()
            .filter(|r| r.kind == RecordKind::Annot)
            .collect();
        assert_eq!(annots.len(), 2);
    }

    #[test]
    fn orphan_detection() {
        let mut t = Tracer::new();
        let root = t.start("c", "root", None, SimTime(0), vec![]);
        let child = t.child(root, "mid", None, SimTime(1), vec![]);
        assert!(t.orphans(root.trace).is_empty());
        // Forge a context pointing at a span that was never recorded.
        let forged = TraceCtx {
            trace: root.trace,
            span: SpanId(999),
        };
        t.child(forged, "lost", None, SimTime(2), vec![]);
        assert_eq!(t.orphans(root.trace).len(), 1);
        let _ = child;
    }
}
