//! Network latency and bandwidth model.
//!
//! Point-to-point delivery time is `propagation(proximity) + size/bandwidth`
//! plus jitter. Each node additionally has a serialized egress link (and
//! optionally ingress link), which is what makes a single origin server a
//! bottleneck when it must push bulk data to thousands of receivers — the
//! effect PackageVessel's P2P distribution exists to avoid (§3.5).

use crate::time::SimDuration;
use crate::topology::Proximity;

/// Static parameters of the network model.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One-way propagation delay between servers in the same cluster.
    pub same_cluster_rtt2: SimDuration,
    /// One-way propagation delay between clusters in the same region.
    pub same_region_rtt2: SimDuration,
    /// One-way propagation delay between regions.
    pub cross_region_rtt2: SimDuration,
    /// Per-node egress bandwidth in bytes per second.
    pub egress_bytes_per_sec: u64,
    /// Per-node ingress bandwidth in bytes per second.
    pub ingress_bytes_per_sec: u64,
    /// Maximum jitter added to each delivery, uniformly sampled.
    pub max_jitter: SimDuration,
    /// Fixed per-message processing overhead at the receiver.
    pub per_message_overhead: SimDuration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            same_cluster_rtt2: SimDuration::from_micros(250),
            same_region_rtt2: SimDuration::from_micros(1_500),
            cross_region_rtt2: SimDuration::from_millis(40),
            // 10 Gb/s ≈ 1.25 GB/s.
            egress_bytes_per_sec: 1_250_000_000,
            ingress_bytes_per_sec: 1_250_000_000,
            max_jitter: SimDuration::from_micros(200),
            per_message_overhead: SimDuration::from_micros(50),
        }
    }
}

impl NetConfig {
    /// A configuration matching a wide-area deployment with commodity 10G
    /// NICs (the default).
    pub fn datacenter() -> NetConfig {
        NetConfig::default()
    }

    /// Returns the one-way propagation delay for a link of the given
    /// proximity class.
    pub fn propagation(&self, prox: Proximity) -> SimDuration {
        match prox {
            Proximity::SameNode => SimDuration::ZERO,
            Proximity::SameCluster => self.same_cluster_rtt2,
            Proximity::SameRegion => self.same_region_rtt2,
            Proximity::CrossRegion => self.cross_region_rtt2,
        }
    }

    /// Returns the wire time for `bytes` at the egress rate.
    pub fn egress_transmit(&self, bytes: u64) -> SimDuration {
        transmit_time(bytes, self.egress_bytes_per_sec)
    }

    /// Returns the wire time for `bytes` at the ingress rate.
    pub fn ingress_transmit(&self, bytes: u64) -> SimDuration {
        transmit_time(bytes, self.ingress_bytes_per_sec)
    }
}

/// Transient message-level fault injection on non-local links (the chaos
/// fault plane). Applied by the simulator to every message that traverses
/// the network (loopback traffic is exempt): with `drop_prob` the message
/// vanishes, otherwise with `delay_prob` it is delayed by an extra uniform
/// `0..=max_extra_delay`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that a surviving message is delayed.
    pub delay_prob: f64,
    /// Upper bound of the uniformly sampled extra delay.
    pub max_extra_delay: SimDuration,
}

impl LinkFaults {
    /// Whether these parameters can affect any message.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || (self.delay_prob > 0.0 && self.max_extra_delay > SimDuration::ZERO)
    }
}

fn transmit_time(bytes: u64, rate: u64) -> SimDuration {
    if rate == 0 {
        return SimDuration::ZERO;
    }
    // Ceil division in microseconds to never round a nonzero transfer to 0.
    let us = (bytes as u128 * 1_000_000u128).div_ceil(rate as u128);
    SimDuration::from_micros(us as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_ordering() {
        let c = NetConfig::default();
        assert!(c.propagation(Proximity::SameCluster) < c.propagation(Proximity::SameRegion));
        assert!(c.propagation(Proximity::SameRegion) < c.propagation(Proximity::CrossRegion));
        assert_eq!(c.propagation(Proximity::SameNode), SimDuration::ZERO);
    }

    #[test]
    fn transmit_time_scales_with_size() {
        let c = NetConfig {
            egress_bytes_per_sec: 1_000_000, // 1 MB/s
            ..NetConfig::default()
        };
        assert_eq!(c.egress_transmit(1_000_000), SimDuration::from_secs(1));
        assert_eq!(
            c.egress_transmit(500_000),
            SimDuration::from_micros(500_000)
        );
        // Tiny transfers still cost at least one microsecond.
        assert_eq!(c.egress_transmit(1), SimDuration::from_micros(1));
        assert_eq!(c.egress_transmit(0), SimDuration::ZERO);
    }

    #[test]
    fn zero_rate_is_instant() {
        let c = NetConfig {
            egress_bytes_per_sec: 0,
            ..NetConfig::default()
        };
        assert_eq!(c.egress_transmit(1 << 30), SimDuration::ZERO);
    }
}
