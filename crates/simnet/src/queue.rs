//! The event queue and event slab backing [`crate::sim::Sim`].
//!
//! The seed engine kept every pending event in one `BinaryHeap<Event>`,
//! where `Event` owned its (boxed, potentially closure-carrying) payload.
//! Two costs dominated at fleet scale: every push sifted a fat element
//! through the heap, and the observer fan-out path allocated and dropped
//! heap nodes at the event rate. This module splits the two concerns:
//!
//! * [`Slab`] — an index-allocated arena for event payloads. Payloads are
//!   written once on push and moved out once on pop; the queue itself only
//!   carries copyable 20-byte [`EventKey`]s.
//! * [`CalendarQueue`] — a hierarchical timer wheel: a *near* min-heap for
//!   the bucket currently being drained, a ring of `NB` fixed-width
//!   buckets covering the next ~131 ms of virtual time, and a *far*
//!   min-heap for everything beyond the ring horizon. Most simulation
//!   traffic (RPC latencies of 50 µs–40 ms) lands in a ring bucket with an
//!   O(1) push, and only the handful of events inside one 128 µs bucket
//!   ever pay heap sifting.
//! * [`EventQueue`] — the calendar queue plus a debug/reference mode that
//!   is the seed's plain `BinaryHeap`, used by determinism tests to prove
//!   the calendar ordering is *exactly* the historical `(at, seq)` order.
//!
//! # Ordering contract
//!
//! `pop` returns keys in strictly ascending `(at_us, seq)` order — the
//! same total order as the seed heap's reversed `(at, seq)` comparison.
//! This holds because of three invariants, maintained by every operation:
//!
//! 1. every key in `near` has `at_us < boundary` where `boundary` is the
//!    upper edge of the bucket the cursor has consumed;
//! 2. ring bucket `b` holds exactly the keys with
//!    `base + b·W ≤ at_us < base + (b+1)·W`, and only buckets strictly
//!    after the cursor are occupied;
//! 3. every key in `far` has `at_us ≥ base + NB·W` (the ring horizon).
//!
//! The simulator only pushes keys with `at_us ≥ now`, and `now` is always
//! the timestamp of the last popped key, so a late push can never land in
//! a bucket the cursor has already passed — it routes into `near`, whose
//! heap restores order locally.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of ring buckets. Power of two so the occupancy bitmap is a
/// whole number of words.
const NB: usize = 1024;
/// Bucket width in microseconds. 128 µs × 1024 buckets ≈ 131 ms horizon,
/// which covers every modeled one-hop latency (50 µs overhead → 40 ms
/// cross-region) without touching the far heap.
const WIDTH_US: u64 = 128;
/// Ring horizon: events at `base + SPAN_US` or later go to the far heap.
const SPAN_US: u64 = NB as u64 * WIDTH_US;
/// Words in the occupancy bitmap.
const BITMAP_WORDS: usize = NB / 64;

/// The queue's view of one pending event: its virtual timestamp, the
/// global insertion sequence (tie-break), and the slab slot holding the
/// payload. Field order gives derived `Ord` the `(at, seq)` contract;
/// `idx` never decides (seq is unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Virtual due time in microseconds.
    pub at_us: u64,
    /// Global insertion sequence; unique, so ties on `at_us` are broken
    /// deterministically by push order.
    pub seq: u64,
    /// Slot in the event [`Slab`] holding this event's payload.
    pub idx: u32,
}

/// An index-allocated arena with a free list. `insert` reuses freed slots
/// (LIFO), so a steady-state simulation reaches a high-water mark of live
/// events and then stops allocating entirely.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Slab<T> {
        Slab::default()
    }

    /// Stores `value`, returning the slot index to fetch it back with.
    #[inline]
    pub fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(value);
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Some(value));
                idx
            }
        }
    }

    /// Moves the value out of `idx` and recycles the slot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not currently occupied.
    #[inline]
    pub fn remove(&mut self, idx: u32) -> T {
        let v = self.slots[idx as usize].take().expect("slab slot occupied");
        self.free.push(idx);
        v
    }

    /// Number of live (occupied) slots.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no slots are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity high-water mark (total slots ever allocated).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Hierarchical (calendar) event queue. See the module docs for the
/// structure and ordering proof.
#[derive(Debug)]
pub struct CalendarQueue {
    /// Min-heap of keys below `boundary` — the bucket(s) already consumed
    /// by the cursor plus any late pushes.
    near: BinaryHeap<Reverse<EventKey>>,
    /// Fixed-width buckets relative to `base`; unsorted within a bucket.
    ring: Vec<Vec<EventKey>>,
    /// One bit per ring bucket: does it hold any keys?
    occupied: [u64; BITMAP_WORDS],
    /// Virtual time of ring bucket 0's lower edge, aligned to `WIDTH_US`.
    base: u64,
    /// Index of the last bucket drained into `near`; buckets `<= cursor`
    /// are empty.
    cursor: usize,
    /// Min-heap of keys at or beyond the ring horizon.
    far: BinaryHeap<Reverse<EventKey>>,
    len: usize,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl CalendarQueue {
    /// Creates an empty queue anchored at virtual time zero.
    pub fn new() -> CalendarQueue {
        CalendarQueue {
            near: BinaryHeap::new(),
            ring: (0..NB).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            base: 0,
            cursor: 0,
            far: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Upper edge of the consumed region: keys below this must live in
    /// `near`.
    #[inline]
    fn boundary(&self) -> u64 {
        self.base + (self.cursor as u64 + 1) * WIDTH_US
    }

    #[inline]
    fn mark(&mut self, b: usize) {
        self.occupied[b / 64] |= 1u64 << (b % 64);
    }

    #[inline]
    fn clear(&mut self, b: usize) {
        self.occupied[b / 64] &= !(1u64 << (b % 64));
    }

    /// Inserts a key. O(1) for the common ring-bucket case.
    #[inline]
    pub fn push(&mut self, key: EventKey) {
        self.len += 1;
        if key.at_us < self.boundary() {
            self.near.push(Reverse(key));
        } else if key.at_us < self.base + SPAN_US {
            let b = ((key.at_us - self.base) / WIDTH_US) as usize;
            self.ring[b].push(key);
            self.mark(b);
        } else {
            self.far.push(Reverse(key));
        }
    }

    /// Removes and returns the minimum key, or `None` if empty.
    #[inline]
    pub fn pop(&mut self) -> Option<EventKey> {
        if self.near.is_empty() {
            self.prime();
        }
        let key = self.near.pop().map(|Reverse(k)| k);
        if key.is_some() {
            self.len -= 1;
        }
        key
    }

    /// Returns the minimum key without removing it. Takes `&mut self`
    /// because it may need to drain the next bucket into `near`.
    #[inline]
    pub fn peek_min(&mut self) -> Option<EventKey> {
        if self.near.is_empty() {
            self.prime();
        }
        self.near.peek().map(|&Reverse(k)| k)
    }

    /// Number of pending keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no keys are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Refills `near` from the first occupied ring bucket after the
    /// cursor, or — if the ring is drained — rebases onto the far heap.
    /// Leaves `near` non-empty iff the queue is non-empty.
    #[cold]
    fn prime(&mut self) {
        debug_assert!(self.near.is_empty());
        if let Some(b) = self.next_occupied() {
            self.cursor = b;
            let bucket = std::mem::take(&mut self.ring[b]);
            self.clear(b);
            for key in bucket {
                self.near.push(Reverse(key));
            }
            return;
        }
        // Ring fully drained: jump the window to the earliest far event
        // and redistribute everything inside the new horizon.
        let Some(&Reverse(min)) = self.far.peek() else {
            return;
        };
        self.base = min.at_us - (min.at_us % WIDTH_US);
        self.cursor = 0;
        let horizon = self.base + SPAN_US;
        while let Some(&Reverse(k)) = self.far.peek() {
            if k.at_us >= horizon {
                break;
            }
            let Reverse(k) = self.far.pop().expect("peeked far key");
            if k.at_us < self.boundary() {
                // `min` itself lands here: cursor 0's bucket is `near`.
                self.near.push(Reverse(k));
            } else {
                let b = ((k.at_us - self.base) / WIDTH_US) as usize;
                self.ring[b].push(k);
                self.mark(b);
            }
        }
        debug_assert!(!self.near.is_empty());
    }

    /// First occupied bucket index strictly after the cursor, via a word-
    /// at-a-time bitmap scan.
    #[inline]
    fn next_occupied(&self) -> Option<usize> {
        let start = self.cursor + 1;
        if start >= NB {
            return None;
        }
        let mut w = start / 64;
        // Mask off bits at or below the cursor within the first word.
        let mut word = self.occupied[w] & !((1u64 << (start % 64)) - 1);
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= BITMAP_WORDS {
                return None;
            }
            word = self.occupied[w];
        }
    }
}

/// The engine's pluggable queue: the production [`CalendarQueue`], or the
/// seed's plain binary heap kept as a reference implementation so tests
/// can prove both produce byte-identical schedules.
#[derive(Debug)]
pub enum EventQueue {
    /// Hierarchical calendar queue (production default).
    Calendar(CalendarQueue),
    /// Single `BinaryHeap` with the seed's reversed `(at, seq)` ordering.
    Reference(BinaryHeap<Reverse<EventKey>>),
}

impl EventQueue {
    /// Creates the production calendar queue.
    pub fn calendar() -> EventQueue {
        EventQueue::Calendar(CalendarQueue::new())
    }

    /// Creates the reference binary-heap queue.
    pub fn reference() -> EventQueue {
        EventQueue::Reference(BinaryHeap::new())
    }

    /// Inserts a key.
    #[inline]
    pub fn push(&mut self, key: EventKey) {
        match self {
            EventQueue::Calendar(q) => q.push(key),
            EventQueue::Reference(h) => h.push(Reverse(key)),
        }
    }

    /// Removes and returns the minimum key.
    #[inline]
    pub fn pop(&mut self) -> Option<EventKey> {
        match self {
            EventQueue::Calendar(q) => q.pop(),
            EventQueue::Reference(h) => h.pop().map(|Reverse(k)| k),
        }
    }

    /// Returns the minimum key without removing it.
    #[inline]
    pub fn peek_min(&mut self) -> Option<EventKey> {
        match self {
            EventQueue::Calendar(q) => q.peek_min(),
            EventQueue::Reference(h) => h.peek().map(|&Reverse(k)| k),
        }
    }

    /// Number of pending keys.
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.len(),
            EventQueue::Reference(h) => h.len(),
        }
    }

    /// Whether no keys are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at_us: u64, seq: u64) -> EventKey {
        EventKey {
            at_us,
            seq,
            idx: seq as u32,
        }
    }

    /// Deterministic xorshift so the test needs no external RNG crate.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn slab_reuses_slots() {
        let mut s: Slab<String> = Slab::new();
        let a = s.insert("a".into());
        let b = s.insert("b".into());
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), "a");
        let c = s.insert("c".into());
        assert_eq!(c, a, "freed slot is recycled");
        assert_eq!(s.capacity(), 2, "no growth past the high-water mark");
        assert_eq!(s.remove(b), "b");
        assert_eq!(s.remove(c), "c");
        assert!(s.is_empty());
    }

    #[test]
    fn pops_in_at_seq_order_within_bucket_ties() {
        let mut q = CalendarQueue::new();
        // Same timestamp, shuffled insertion — must come back by seq.
        q.push(key(100, 3));
        q.push(key(100, 1));
        q.push(key(100, 2));
        assert_eq!(q.pop(), Some(key(100, 1)));
        assert_eq!(q.pop(), Some(key(100, 2)));
        assert_eq!(q.pop(), Some(key(100, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn spans_ring_and_far_horizons() {
        let mut q = CalendarQueue::new();
        // One event per regime: near bucket, deep ring, past horizon.
        q.push(key(10, 1));
        q.push(key(SPAN_US - 1, 2));
        q.push(key(SPAN_US * 3 + 17, 3));
        q.push(key(SPAN_US * 3 + 17, 4));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some(key(10, 1)));
        assert_eq!(q.pop(), Some(key(SPAN_US - 1, 2)));
        assert_eq!(q.pop(), Some(key(SPAN_US * 3 + 17, 3)));
        assert_eq!(q.pop(), Some(key(SPAN_US * 3 + 17, 4)));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_matches_reference_heap() {
        let mut cal = CalendarQueue::new();
        let mut reference: BinaryHeap<Reverse<EventKey>> = BinaryHeap::new();
        let mut rng = Rng(0x9e3779b97f4a7c15);
        let mut now = 0u64;
        let mut seq = 0u64;
        for round in 0..10_000 {
            // Pushes are always scheduled at or after `now`, like the sim.
            let burst = rng.next() % 4;
            for _ in 0..=burst {
                // Mix of near (µs), mid (ms), and far (second+) offsets.
                let off = match rng.next() % 10 {
                    0..=5 => rng.next() % 500,
                    6..=8 => rng.next() % 40_000,
                    _ => rng.next() % 3_000_000,
                };
                let k = key(now + off, seq);
                seq += 1;
                cal.push(k);
                reference.push(Reverse(k));
            }
            if round % 3 != 0 {
                let a = cal.pop();
                let b = reference.pop().map(|Reverse(k)| k);
                assert_eq!(a, b, "divergence at round {round}");
                if let Some(k) = a {
                    assert!(k.at_us >= now, "time went backwards");
                    now = k.at_us;
                }
            }
            assert_eq!(cal.len(), reference.len());
        }
        // Drain both completely.
        loop {
            let a = cal.pop();
            let b = reference.pop().map(|Reverse(k)| k);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(key(SPAN_US + 5, 1));
        q.push(key(7, 2));
        assert_eq!(q.peek_min(), Some(key(7, 2)));
        assert_eq!(q.pop(), Some(key(7, 2)));
        assert_eq!(q.peek_min(), Some(key(SPAN_US + 5, 1)));
        assert_eq!(q.pop(), Some(key(SPAN_US + 5, 1)));
        assert_eq!(q.peek_min(), None);
    }
}
