//! The discrete-event simulation engine.
//!
//! A [`Sim`] owns a fleet [`Topology`], a [`NetConfig`] network model, one
//! [`Actor`] per node, and a time-ordered event queue. Actors communicate
//! exclusively by message passing through [`Ctx::send`]; the engine charges
//! propagation delay, per-node egress/ingress serialization, and jitter, so
//! fan-out bottlenecks emerge mechanically rather than by assumption.
//!
//! Runs are deterministic: the queue breaks ties by insertion sequence and
//! all randomness flows from the seed passed to [`Sim::new`].

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

use crate::intern::{FxHashMap, FxHashSet, Sym};
use crate::net::{LinkFaults, NetConfig};
use crate::ods::Ods;
use crate::profile::{EventClass, Profiler};
use crate::queue::{EventKey, EventQueue, Slab};
use crate::stats::{names, Metrics};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Proximity, RegionId, Topology};
use crate::trace::{TraceCtx, Tracer};

/// An opaque message payload exchanged between actors.
///
/// Protocol crates define their own message enums and downcast on receipt.
pub type Message = Box<dyn Any>;

/// A simulated process running on one node.
///
/// All methods receive a [`Ctx`] giving access to the clock, the RNG, metric
/// recording, and message/timer scheduling. Handlers run to completion at a
/// single instant of simulated time.
pub trait Actor: Any {
    /// Called once when the simulation starts (or when the actor is added to
    /// an already-running simulation).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when a message from `from` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}

    /// Called when the node recovers from a crash.
    fn on_recover(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A stable label for the subsystem this actor belongs to (e.g.
    /// `"zeus.observer"`), used by the self-profiler to aggregate dispatch
    /// counts and wall time per tier. The default groups unlabeled actors
    /// under `"actor"`.
    fn kind(&self) -> &'static str {
        "actor"
    }
}

enum EventKind {
    /// First byte of a network message reaches the receiver's NIC. The
    /// ingress link is claimed *here*, in arrival order — claiming it at
    /// send time would let a message still in flight across a slow link
    /// head-of-line-block later sends that arrive sooner.
    Arrive {
        to: NodeId,
        from: NodeId,
        size: u64,
        msg: Message,
        traces: Vec<TraceCtx>,
    },
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: Message,
        /// Trace contexts riding on the delivery envelope (in addition to
        /// whatever the protocol payload itself carries), so the engine can
        /// annotate drops and retransmits onto the originating traces. A
        /// batched frame carries one context per batched write: if the
        /// frame is dropped, *every* write's waterfall shows the drop, not
        /// just the first one's. Empty for untraced messages.
        traces: Vec<TraceCtx>,
    },
    Timer {
        node: NodeId,
        tag: u64,
    },
    Start {
        node: NodeId,
    },
    Control(Box<dyn FnOnce(&mut Sim)>),
}

/// When set, every subsequently created [`Sim`] starts on the reference
/// binary-heap queue instead of the calendar queue. Used by determinism
/// tests to prove both queues produce identical schedules; safe to flip
/// globally because the two orderings are identical by construction.
static REFERENCE_QUEUE_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Selects which event queue newly created simulators use: the reference
/// seed `BinaryHeap` (`true`) or the production calendar queue (`false`,
/// the default). Exists for byte-determinism tests.
pub fn set_default_reference_queue(on: bool) {
    REFERENCE_QUEUE_DEFAULT.store(on, AtomicOrdering::SeqCst);
}

/// The discrete-event simulator.
///
/// # Examples
///
/// ```
/// use simnet::prelude::*;
///
/// struct Echo;
/// impl Actor for Echo {
///     fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
///         let text = *msg.downcast::<&'static str>().unwrap();
///         ctx.metrics().incr("echoed", 1);
///         if text == "ping" {
///             ctx.send_value(from, 8, "pong");
///         }
///     }
/// }
///
/// let topo = Topology::symmetric(1, 1, 2);
/// let mut sim = Sim::new(topo, NetConfig::default(), 42);
/// sim.add_actor(NodeId(0), Box::new(Echo));
/// sim.add_actor(NodeId(1), Box::new(Echo));
/// sim.post(SimTime::ZERO, NodeId(0), NodeId(1), Box::new("ping"));
/// sim.run_until_idle();
/// assert_eq!(sim.metrics().counter("echoed"), 2);
/// ```
pub struct Sim {
    topo: Topology,
    net: NetConfig,
    now: SimTime,
    seq: u64,
    /// Pending event keys, ordered by `(at, seq)`; payloads live in
    /// `events` and the queue only moves copyable keys around.
    queue: EventQueue,
    /// Slab of pending event payloads, indexed by [`EventKey::idx`].
    events: Slab<EventKind>,
    actors: Vec<Option<Box<dyn Actor>>>,
    up: Vec<bool>,
    egress_free: Vec<SimTime>,
    ingress_free: Vec<SimTime>,
    /// Last scheduled first-byte arrival per directed link. Arrivals on one
    /// link are clamped to this so a message never overtakes an earlier one
    /// on the same (from, to) stream (TCP-like per-link FIFO), even when
    /// jitter or injected delay would let it. Entries whose clamp time has
    /// passed are dead weight (a future arrival's first byte is always
    /// `>= now`) and are pruned periodically in [`Sim::step`].
    link_order: FxHashMap<(u32, u32), SimTime>,
    partitions: FxHashSet<(u16, u16)>,
    /// Directed region cuts: `(from, to)` means traffic from `from` to `to`
    /// is dropped while the reverse direction still flows.
    partitions_oneway: FxHashSet<(u16, u16)>,
    /// Per-node stall horizon: while `now < stalled_until[n]`, local
    /// processing on `n` (deliveries, timers, starts) is deferred to the
    /// horizon instead of running — a GC pause or disk stall, where work
    /// queues up rather than being lost.
    stalled_until: Vec<SimTime>,
    /// Per-node clock offset in signed microseconds: what the node's local
    /// clock reads relative to true simulation time.
    clock_skew: Vec<i64>,
    link_faults: LinkFaults,
    rng: SmallRng,
    metrics: Metrics,
    tracer: Tracer,
    /// Trace contexts of the delivery currently being handled, readable by
    /// the receiving actor via [`Ctx::incoming_trace`].
    delivering_traces: Vec<TraceCtx>,
    events_processed: u64,
    profiler: Profiler,
    ods: Ods,
    /// Pre-interned symbols for the two counters bumped on every message
    /// accepted by the network model, so `transmit` skips the name hash.
    sym_messages_sent: Sym,
    sym_bytes_sent: Sym,
}

impl Sim {
    /// Creates a simulator over `topo` with the given network model and RNG
    /// seed. Every node starts up with no actor installed.
    pub fn new(topo: Topology, net: NetConfig, seed: u64) -> Sim {
        let n = topo.num_nodes();
        let mut metrics = Metrics::new();
        let sym_messages_sent = metrics.counter_sym(names::MESSAGES_SENT);
        let sym_bytes_sent = metrics.counter_sym(names::BYTES_SENT);
        Sim {
            topo,
            net,
            now: SimTime::ZERO,
            seq: 0,
            queue: if REFERENCE_QUEUE_DEFAULT.load(AtomicOrdering::SeqCst) {
                EventQueue::reference()
            } else {
                EventQueue::calendar()
            },
            events: Slab::new(),
            actors: (0..n).map(|_| None).collect(),
            up: vec![true; n],
            egress_free: vec![SimTime::ZERO; n],
            ingress_free: vec![SimTime::ZERO; n],
            link_order: FxHashMap::default(),
            partitions: FxHashSet::default(),
            partitions_oneway: FxHashSet::default(),
            stalled_until: vec![SimTime::ZERO; n],
            clock_skew: vec![0; n],
            link_faults: LinkFaults::default(),
            rng: SmallRng::seed_from_u64(seed),
            metrics,
            tracer: Tracer::new(),
            delivering_traces: Vec::new(),
            events_processed: 0,
            profiler: Profiler::new(n),
            sym_messages_sent,
            sym_bytes_sent,
            ods: Ods::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The fleet topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to collected metrics (for experiment drivers).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Collected trace records.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the tracer (for experiment drivers starting
    /// traces from outside the actor plane).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Turns on the self-profiler. Until called, every profiling hook is a
    /// single branch (no clock reads), so unprofiled runs — and their
    /// goldens — are unaffected.
    pub fn enable_profiler(&mut self) {
        self.profiler.enable();
    }

    /// Turns on queue-depth tracking only (peak and mean occupancy) —
    /// the subset of profiling the paper-scale fleet report prints —
    /// without the per-dispatch clock reads and cell accounting of the
    /// full profiler. Two integer updates per event.
    pub fn enable_queue_stats(&mut self) {
        self.profiler.enable_queue_stats();
    }

    /// The self-profiler's accumulated accounting.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Turns on the ODS aggregation plane with the given burn-rate windows.
    pub fn enable_ods(&mut self, fast: SimDuration, slow: SimDuration) {
        self.ods.enable(fast, slow);
    }

    /// The ODS aggregation plane.
    pub fn ods(&self) -> &Ods {
        &self.ods
    }

    /// Mutable access to the ODS plane (register SLOs, force scrapes).
    pub fn ods_mut(&mut self) -> &mut Ods {
        &mut self.ods
    }

    /// Installs `actor` on `node`, replacing any existing actor. The actor's
    /// [`Actor::on_start`] runs at the current simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the topology.
    pub fn add_actor(&mut self, node: NodeId, actor: Box<dyn Actor>) {
        assert!((node.0 as usize) < self.actors.len(), "node out of range");
        self.actors[node.0 as usize] = Some(actor);
        self.push(self.now, EventKind::Start { node });
    }

    /// Returns a shared reference to the actor on `node`, downcast to `T`.
    /// Returns `None` if there is no actor or the type does not match.
    pub fn actor<T: Actor + 'static>(&self, node: NodeId) -> Option<&T> {
        self.actors[node.0 as usize]
            .as_ref()
            .and_then(|a| (a.as_ref() as &dyn Any).downcast_ref::<T>())
    }

    /// Returns a mutable reference to the actor on `node`, downcast to `T`.
    pub fn actor_mut<T: Actor + 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.actors[node.0 as usize]
            .as_mut()
            .and_then(|a| (a.as_mut() as &mut dyn Any).downcast_mut::<T>())
    }

    /// Schedules delivery of `msg` to `to` at time `at` (clamped to the
    /// present), bypassing the network model. `from` is reported as the
    /// sender. Useful for experiment drivers injecting external stimuli.
    pub fn post(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: Message) {
        self.post_traced(at, from, to, msg, None);
    }

    /// Like [`Sim::post`], with a trace context on the delivery envelope.
    pub fn post_traced(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        msg: Message,
        trace: Option<TraceCtx>,
    ) {
        let at = at.max(self.now);
        self.push(
            at,
            EventKind::Deliver {
                to,
                from,
                msg,
                traces: trace.into_iter().collect(),
            },
        );
    }

    /// Schedules `f` to run against the simulator at time `at` (clamped to
    /// the present). Control functions may crash nodes, inject partitions,
    /// post messages, or record metrics.
    pub fn schedule(&mut self, at: SimTime, f: impl FnOnce(&mut Sim) + 'static) {
        let at = at.max(self.now);
        self.push(at, EventKind::Control(Box::new(f)));
    }

    /// Crashes `node`: pending and future deliveries and timers are dropped
    /// until it recovers.
    pub fn crash(&mut self, node: NodeId) {
        self.up[node.0 as usize] = false;
    }

    /// Recovers `node` and invokes its actor's [`Actor::on_recover`].
    pub fn recover(&mut self, node: NodeId) {
        if !self.up[node.0 as usize] {
            self.up[node.0 as usize] = true;
            if let Some(mut actor) = self.actors[node.0 as usize].take() {
                let start = self.profiler.enabled().then(crate::profile::now_ticks);
                let mut ctx = Ctx { sim: self, node };
                actor.on_recover(&mut ctx);
                if let Some(start) = start {
                    let ticks = crate::profile::now_ticks().saturating_sub(start);
                    self.profiler
                        .record_dispatch(node, actor.kind(), EventClass::Recover, ticks);
                }
                self.actors[node.0 as usize] = Some(actor);
            }
        }
    }

    /// Returns whether `node` is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.up[node.0 as usize]
    }

    /// Stalls `node` until `until`: deliveries, timers, and starts targeting
    /// it are deferred to `until` instead of running — modeling a GC pause
    /// or a disk stall. Unlike [`Sim::crash`], nothing is dropped; the
    /// backlog drains (in its original order) when the window ends. Extends
    /// any stall already in effect; a `until` in the past is a no-op.
    pub fn stall(&mut self, node: NodeId, until: SimTime) {
        let slot = &mut self.stalled_until[node.0 as usize];
        *slot = (*slot).max(until);
    }

    /// Returns whether `node` is currently inside a stall window.
    pub fn is_stalled(&self, node: NodeId) -> bool {
        self.stalled_until[node.0 as usize] > self.now
    }

    /// Skews `node`'s local clock by `offset_us` microseconds: its
    /// [`Ctx::now`] reads true time plus the offset (clamped at zero).
    /// Skew corrupts cross-node latency accounting — an origin stamped by a
    /// fast clock looks slower everywhere else — without perturbing event
    /// scheduling, which runs on true time.
    pub fn set_clock_skew(&mut self, node: NodeId, offset_us: i64) {
        self.clock_skew[node.0 as usize] = offset_us;
    }

    /// Removes any clock skew on `node`.
    pub fn clear_clock_skew(&mut self, node: NodeId) {
        self.clock_skew[node.0 as usize] = 0;
    }

    /// The local clock reading on `node`: true time plus its skew,
    /// saturating at the epoch.
    pub fn local_now(&self, node: NodeId) -> SimTime {
        let off = self.clock_skew[node.0 as usize];
        SimTime((self.now.0 as i64).saturating_add(off).max(0) as u64)
    }

    /// Partitions two regions: messages between them are dropped until
    /// [`Sim::heal`] is called.
    pub fn partition(&mut self, a: RegionId, b: RegionId) {
        self.partitions.insert(normalize(a, b));
    }

    /// Heals a partition created by [`Sim::partition`].
    pub fn heal(&mut self, a: RegionId, b: RegionId) {
        self.partitions.remove(&normalize(a, b));
    }

    /// Partitions two regions asymmetrically: messages from `from` to `to`
    /// are dropped while the reverse direction still flows. The one-way
    /// failure is what makes real networks interesting — acks vanish while
    /// requests arrive, so one side believes the link is healthy.
    pub fn partition_oneway(&mut self, from: RegionId, to: RegionId) {
        self.partitions_oneway.insert((from.0, to.0));
    }

    /// Heals a cut created by [`Sim::partition_oneway`].
    pub fn heal_oneway(&mut self, from: RegionId, to: RegionId) {
        self.partitions_oneway.remove(&(from.0, to.0));
    }

    /// Returns whether any region pair is currently partitioned (in either
    /// or only one direction).
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty() || !self.partitions_oneway.is_empty()
    }

    /// Installs message-level fault injection on all non-local links,
    /// replacing the previous parameters. Pass `LinkFaults::default()` (or
    /// call [`Sim::clear_link_faults`]) to stop injecting.
    pub fn set_link_faults(&mut self, faults: LinkFaults) {
        self.link_faults = faults;
    }

    /// Removes all message-level fault injection.
    pub fn clear_link_faults(&mut self) {
        self.link_faults = LinkFaults::default();
    }

    /// The currently installed link fault parameters.
    pub fn link_faults(&self) -> &LinkFaults {
        &self.link_faults
    }

    /// Runs a single event. Returns `false` if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(key) = self.queue.pop() else {
            return false;
        };
        let kind = self.events.remove(key.idx);
        debug_assert!(key.at_us >= self.now.0, "time went backwards");
        self.now = SimTime(key.at_us);
        self.events_processed += 1;
        if self.profiler.queue_stats_enabled() {
            self.profiler.observe_queue_step(self.queue.len());
        }
        // Opportunistic upkeep: drop per-link FIFO clamps that can no
        // longer affect anything (a future arrival's first byte is always
        // `>= now`). Amortized over 64Ki events so the common step stays
        // branch-cheap; keyed to virtual progress, so it is deterministic.
        if self.events_processed & 0xFFFF == 0 && !self.link_order.is_empty() {
            let now = self.now;
            self.link_order.retain(|_, t| *t > now);
        }
        // A stalled node defers local processing: the event is parked at
        // the stall horizon, not dropped. Re-pushing in pop order assigns
        // increasing sequence numbers, so the backlog replays in its
        // original order. Network arrivals (`Arrive`) are exempt — the NIC
        // still accepts bytes while the process is paused.
        let stall_target = match &kind {
            EventKind::Deliver { to, .. } => Some(*to),
            EventKind::Timer { node, .. } | EventKind::Start { node } => Some(*node),
            _ => None,
        };
        if let Some(node) = stall_target {
            let until = self.stalled_until[node.0 as usize];
            if until > self.now {
                self.metrics.incr(names::STALL_DEFERRED, 1);
                self.push(until, kind);
                return true;
            }
        }
        match kind {
            EventKind::Arrive {
                to,
                from,
                size,
                msg,
                traces,
            } => {
                if self.profiler.enabled() {
                    self.profiler.record_bytes_in(to, size);
                }
                // Serialize the receiver's ingress link in arrival order.
                let rx_start = self.now.max(self.ingress_free[to.0 as usize]);
                let rx_done = rx_start + self.net.ingress_transmit(size);
                self.ingress_free[to.0 as usize] = rx_done;
                self.push(
                    rx_done + self.net.per_message_overhead,
                    EventKind::Deliver {
                        to,
                        from,
                        msg,
                        traces,
                    },
                );
            }
            EventKind::Deliver {
                to,
                from,
                msg,
                traces,
            } => {
                if !self.up[to.0 as usize] {
                    self.metrics.incr(names::DROPPED_TO_DOWN_NODE, 1);
                    let at = self.now;
                    for t in traces {
                        self.tracer.annot(
                            t,
                            "net.drop",
                            Some(to),
                            at,
                            vec![("reason", "node_down".into())],
                        );
                    }
                    return true;
                }
                self.delivering_traces = traces;
                self.with_actor(to, EventClass::Deliver, |actor, ctx| {
                    actor.on_message(ctx, from, msg)
                });
                self.delivering_traces.clear();
            }
            EventKind::Timer { node, tag } => {
                if self.up[node.0 as usize] {
                    self.with_actor(node, EventClass::Timer, |actor, ctx| {
                        actor.on_timer(ctx, tag)
                    });
                }
            }
            EventKind::Start { node } => {
                if self.up[node.0 as usize] {
                    self.with_actor(node, EventClass::Start, |actor, ctx| actor.on_start(ctx));
                }
            }
            EventKind::Control(f) => {
                if self.profiler.enabled() {
                    let start = crate::profile::now_ticks();
                    f(self);
                    let ticks = crate::profile::now_ticks().saturating_sub(start);
                    self.profiler.record_control(ticks);
                } else {
                    f(self);
                }
            }
        }
        true
    }

    /// Runs events until the queue is empty or `limit` events have been
    /// processed. Returns the number of events processed.
    pub fn run_until_idle_limited(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }

    /// Runs events until the queue is empty.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Runs events with timestamps up to and including `deadline`; the clock
    /// is advanced to `deadline` afterwards even if the queue drains early.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(key) = self.queue.peek_min() {
            if key.at_us > deadline.0 {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of simulated time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    fn with_actor(
        &mut self,
        node: NodeId,
        class: EventClass,
        f: impl FnOnce(&mut dyn Actor, &mut Ctx<'_>),
    ) {
        if let Some(mut actor) = self.actors[node.0 as usize].take() {
            let start = self.profiler.enabled().then(crate::profile::now_ticks);
            let mut ctx = Ctx { sim: self, node };
            f(actor.as_mut(), &mut ctx);
            if let Some(start) = start {
                let ticks = crate::profile::now_ticks().saturating_sub(start);
                self.profiler
                    .record_dispatch(node, actor.kind(), class, ticks);
            }
            // A handler may have installed a replacement actor; keep it.
            if self.actors[node.0 as usize].is_none() {
                self.actors[node.0 as usize] = Some(actor);
            }
        }
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        let idx = self.events.insert(kind);
        self.queue.push(EventKey {
            at_us: at.0,
            seq,
            idx,
        });
        if self.profiler.queue_stats_enabled() {
            self.profiler.observe_queue_push(self.queue.len());
        }
    }

    /// Switches this simulator onto the reference binary-heap queue,
    /// carrying over any pending events. Ordering is unchanged — the
    /// reference queue exists so tests can prove exactly that.
    pub fn use_reference_queue(&mut self) {
        let mut reference = EventQueue::reference();
        while let Some(key) = self.queue.pop() {
            reference.push(key);
        }
        self.queue = reference;
    }

    /// Number of live per-link FIFO clamp entries (see `link_order`).
    /// Exposed so tests can assert the map stays bounded on long runs.
    pub fn link_order_entries(&self) -> usize {
        self.link_order.len()
    }

    /// Computes the delivery time of a `size`-byte message from `from` to
    /// `to` sent now, updating link occupancy, and enqueues the delivery.
    /// Messages across a partitioned region pair are dropped at send time.
    fn transmit(&mut self, from: NodeId, to: NodeId, size: u64, msg: Message) {
        self.transmit_traced(from, to, size, msg, Vec::new());
    }

    /// [`Sim::transmit`] with trace contexts riding the envelope (one per
    /// batched write). Drops caused by partitions or injected faults are
    /// annotated onto every carried trace, so a waterfall shows *why* a hop
    /// is missing or late even when its write shared a frame with others.
    fn transmit_traced(
        &mut self,
        from: NodeId,
        to: NodeId,
        size: u64,
        msg: Message,
        traces: Vec<TraceCtx>,
    ) {
        let prox = self.topo.proximity(from, to);
        if prox == Proximity::CrossRegion {
            let ra = self.topo.placement(from).region;
            let rb = self.topo.placement(to).region;
            if self.partitions.contains(&normalize(ra, rb)) {
                self.metrics.incr(names::DROPPED_PARTITIONED, 1);
                let at = self.now;
                for t in traces {
                    self.tracer.annot(
                        t,
                        "net.drop",
                        Some(from),
                        at,
                        vec![("reason", "partitioned".into())],
                    );
                }
                return;
            }
            if self.partitions_oneway.contains(&(ra.0, rb.0)) {
                self.metrics.incr(names::DROPPED_PARTITIONED, 1);
                let at = self.now;
                for t in traces {
                    self.tracer.annot(
                        t,
                        "net.drop",
                        Some(from),
                        at,
                        vec![("reason", "partitioned_oneway".into())],
                    );
                }
                return;
            }
        }
        if prox == Proximity::SameNode {
            self.metrics.incr_sym(self.sym_messages_sent, 1);
            self.metrics.incr_sym(self.sym_bytes_sent, size);
            if self.profiler.enabled() {
                self.profiler.record_bytes_out(from, size);
                self.profiler.record_bytes_in(to, size);
            }
            self.push(
                self.now + self.net.per_message_overhead,
                EventKind::Deliver {
                    to,
                    from,
                    msg,
                    traces,
                },
            );
        } else {
            // The chaos fault plane acts on every link that crosses the
            // network; loopback traffic is exempt so a node can always talk
            // to itself.
            if self.link_faults.drop_prob > 0.0 && self.rng.gen_bool(self.link_faults.drop_prob) {
                self.metrics.incr(names::DROPPED_CHAOS, 1);
                let at = self.now;
                for t in traces {
                    self.tracer.annot(
                        t,
                        "net.drop",
                        Some(from),
                        at,
                        vec![("reason", "chaos".into())],
                    );
                }
                return;
            }
            let chaos_delay = if self.link_faults.delay_prob > 0.0
                && self.link_faults.max_extra_delay > SimDuration::ZERO
                && self.rng.gen_bool(self.link_faults.delay_prob)
            {
                self.metrics.incr(names::DELAYED_CHAOS, 1);
                SimDuration::from_micros(
                    self.rng
                        .gen_range(0..=self.link_faults.max_extra_delay.as_micros()),
                )
            } else {
                SimDuration::ZERO
            };
            let start = self.now.max(self.egress_free[from.0 as usize]);
            let egress_done = start + self.net.egress_transmit(size);
            self.egress_free[from.0 as usize] = egress_done;
            let jitter = if self.net.max_jitter.as_micros() == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_micros(self.rng.gen_range(0..=self.net.max_jitter.as_micros()))
            };
            let mut first_byte = start + self.net.propagation(prox) + jitter + chaos_delay;
            let fifo = self
                .link_order
                .entry((from.0, to.0))
                .or_insert(SimTime::ZERO);
            first_byte = first_byte.max(*fifo);
            *fifo = first_byte;
            self.metrics.incr_sym(self.sym_messages_sent, 1);
            self.metrics.incr_sym(self.sym_bytes_sent, size);
            if self.profiler.enabled() {
                self.profiler.record_bytes_out(from, size);
            }
            // Ingress serialization is applied when the first byte arrives
            // (see `EventKind::Arrive`), not here: link occupancy at the
            // receiver must follow arrival order, not send order.
            self.push(
                first_byte,
                EventKind::Arrive {
                    to,
                    from,
                    size,
                    msg,
                    traces,
                },
            );
        }
    }
}

fn normalize(a: RegionId, b: RegionId) -> (u16, u16) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// Handler-side view of the simulator: clock, RNG, metrics, and scheduling.
pub struct Ctx<'a> {
    sim: &'a mut Sim,
    node: NodeId,
}

impl Ctx<'_> {
    /// The node's local clock reading. Equal to true simulated time unless
    /// the node has been given a skew via [`Sim::set_clock_skew`], in which
    /// case timestamps this actor originates (and latency computed against
    /// foreign stamps) are off by that skew — exactly the failure class a
    /// drifting NTP client inflicts in production.
    pub fn now(&self) -> SimTime {
        self.sim.local_now(self.node)
    }

    /// The node this actor runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The fleet topology.
    pub fn topology(&self) -> &Topology {
        &self.sim.topo
    }

    /// Sends a `size`-byte message to `to` through the network model.
    pub fn send(&mut self, to: NodeId, size: u64, msg: Message) {
        let from = self.node;
        self.sim.transmit(from, to, size, msg);
    }

    /// Sends with a trace context riding the delivery envelope: engine-level
    /// drops (partition, chaos, down node) are annotated onto the trace.
    pub fn send_traced(&mut self, to: NodeId, size: u64, msg: Message, trace: Option<TraceCtx>) {
        let from = self.node;
        self.sim
            .transmit_traced(from, to, size, msg, trace.into_iter().collect());
    }

    /// Sends one frame carrying several traced writes: every context in
    /// `traces` rides the envelope, so an engine-level drop of the frame is
    /// annotated onto each write's trace (a batch is all-or-nothing on the
    /// wire — either every write arrives or none does).
    pub fn send_traced_batch(
        &mut self,
        to: NodeId,
        size: u64,
        msg: Message,
        traces: Vec<TraceCtx>,
    ) {
        let from = self.node;
        self.sim.transmit_traced(from, to, size, msg, traces);
    }

    /// Convenience wrapper boxing `value` as the message payload.
    pub fn send_value<T: Any>(&mut self, to: NodeId, size: u64, value: T) {
        self.send(to, size, Box::new(value));
    }

    /// Sends one logical frame to every receiver in `tos` without cloning
    /// the payload: `value` is wrapped in an [`Arc`] once, and each
    /// receiver's delivery envelope carries a refcount clone of it.
    /// Receivers downcast the delivered message to `Arc<T>`.
    ///
    /// The *network* is still charged honestly per receiver — each send
    /// pays its own egress serialization at the sender, ingress occupancy
    /// at the receiver, propagation, and jitter, and each is individually
    /// subject to partitions and chaos faults (with `traces` annotated per
    /// receiver on a drop). What the sharing removes is the *simulator*
    /// cost of a wide fan-out: one payload allocation per frame instead of
    /// one deep clone per watcher.
    pub fn multicast_traced<T: Any>(
        &mut self,
        tos: &[NodeId],
        size: u64,
        value: T,
        traces: &[TraceCtx],
    ) {
        let from = self.node;
        let shared = Arc::new(value);
        self.sim.metrics.incr(names::MULTICAST_FRAMES, 1);
        self.sim
            .metrics
            .incr(names::MULTICAST_FANOUT_SENDS, tos.len() as u64);
        for &to in tos {
            self.sim.transmit_traced(
                from,
                to,
                size,
                Box::new(Arc::clone(&shared)),
                traces.to_vec(),
            );
        }
    }

    /// The first trace context on the envelope of the message currently
    /// being delivered, if the sender attached any via [`Ctx::send_traced`]
    /// or [`Ctx::send_traced_batch`].
    pub fn incoming_trace(&self) -> Option<TraceCtx> {
        self.sim.delivering_traces.first().copied()
    }

    /// The trace collector.
    pub fn tracer(&mut self) -> &mut Tracer {
        &mut self.sim.tracer
    }

    /// Records a deduplicated hop span at this node, now, under `parent`.
    /// Returns `None` (recording nothing) if this (trace, name, node) hop
    /// was already taken — i.e. the triggering message was a duplicate.
    pub fn trace_hop(
        &mut self,
        parent: TraceCtx,
        name: &'static str,
        attrs: Vec<(&'static str, String)>,
    ) -> Option<TraceCtx> {
        let node = self.node;
        let at = self.sim.now;
        self.sim.tracer.hop(parent, name, Some(node), at, attrs)
    }

    /// Records an annotation at this node, now, under `ctx`'s span.
    pub fn trace_annot(
        &mut self,
        ctx: TraceCtx,
        name: &'static str,
        attrs: Vec<(&'static str, String)>,
    ) {
        let node = self.node;
        let at = self.sim.now;
        self.sim.tracer.annot(ctx, name, Some(node), at, attrs);
    }

    /// Schedules [`Actor::on_timer`] on this node after `after`, with `tag`
    /// passed through. Timers are not cancellable; actors that need
    /// cancellation should carry a generation counter in their state and
    /// ignore stale tags.
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) {
        let at = self.sim.now + after;
        let node = self.node;
        self.sim.push(at, EventKind::Timer { node, tag });
    }

    /// The simulation RNG (deterministic per seed).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.sim.rng
    }

    /// Metric recording.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.sim.metrics
    }

    /// Classifies the network distance from this node to `other`.
    pub fn proximity(&self, other: NodeId) -> Proximity {
        self.sim.topo.proximity(self.node, other)
    }

    /// Publishes a counter delta into the ODS fleet plane, attributed to
    /// this node at true simulation time. One branch when the plane is off.
    pub fn ods_counter(&mut self, tier: &str, name: &str, delta: f64) {
        let node = self.node;
        let at = self.sim.now;
        self.sim.ods.emit_counter(node, tier, name, at, delta);
    }

    /// Publishes a latency-style sample into the ODS fleet plane.
    pub fn ods_sample(&mut self, tier: &str, name: &str, value: f64) {
        let node = self.node;
        let at = self.sim.now;
        self.sim.ods.emit_sample(node, tier, name, at, value);
    }

    /// Publishes a point-in-time gauge reading into the ODS fleet plane.
    pub fn ods_gauge(&mut self, tier: &str, name: &str, value: f64) {
        let node = self.node;
        let at = self.sim.now;
        self.sim.ods.emit_gauge(node, tier, name, at, value);
    }

    /// Rolls the ODS plane up at the current instant (used by
    /// [`OdsScraper`](crate::ods::OdsScraper)).
    pub fn ods_scrape(&mut self) {
        let at = self.sim.now;
        self.sim.ods.scrape(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        got: Vec<(NodeId, u64)>,
        timers: Vec<u64>,
        recovered: bool,
    }

    impl Actor for Counter {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
            let v = *msg.downcast::<u64>().unwrap();
            self.got.push((from, v));
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
            self.timers.push(tag);
        }
        fn on_recover(&mut self, _ctx: &mut Ctx<'_>) {
            self.recovered = true;
        }
    }

    fn two_node_sim() -> Sim {
        let topo = Topology::symmetric(1, 1, 2);
        let mut sim = Sim::new(topo, NetConfig::default(), 7);
        sim.add_actor(NodeId(0), Box::new(Counter::default()));
        sim.add_actor(NodeId(1), Box::new(Counter::default()));
        sim
    }

    #[test]
    fn message_delivery_in_order() {
        let mut sim = two_node_sim();
        sim.post(SimTime::ZERO, NodeId(1), NodeId(0), Box::new(1u64));
        sim.post(SimTime(10), NodeId(1), NodeId(0), Box::new(2u64));
        sim.run_until_idle();
        let a: &Counter = sim.actor(NodeId(0)).unwrap();
        assert_eq!(a.got, vec![(NodeId(1), 1), (NodeId(1), 2)]);
    }

    #[test]
    fn crash_drops_messages_and_recover_redelivers_nothing() {
        let mut sim = two_node_sim();
        sim.crash(NodeId(0));
        sim.post(SimTime::ZERO, NodeId(1), NodeId(0), Box::new(1u64));
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter("simnet.dropped_to_down_node"), 1);
        sim.recover(NodeId(0));
        let a: &Counter = sim.actor(NodeId(0)).unwrap();
        assert!(a.recovered);
        assert!(a.got.is_empty());
    }

    #[test]
    fn partition_drops_cross_region_traffic() {
        let topo = Topology::symmetric(2, 1, 1);
        let mut sim = Sim::new(topo, NetConfig::default(), 7);
        sim.add_actor(NodeId(0), Box::new(Counter::default()));
        sim.add_actor(NodeId(1), Box::new(Counter::default()));
        sim.partition(RegionId(0), RegionId(1));
        // A send through the network model must be initiated by an actor;
        // drive it via a control event that sends from node 0's context.
        sim.schedule(SimTime::ZERO, |s| {
            s.transmit(NodeId(0), NodeId(1), 8, Box::new(9u64));
        });
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter("simnet.dropped_partitioned"), 1);
        sim.heal(RegionId(0), RegionId(1));
        sim.schedule(sim.now(), |s| {
            s.transmit(NodeId(0), NodeId(1), 8, Box::new(9u64));
        });
        sim.run_until_idle();
        let b: &Counter = sim.actor(NodeId(1)).unwrap();
        assert_eq!(b.got.len(), 1);
    }

    #[test]
    fn oneway_partition_drops_only_one_direction() {
        let topo = Topology::symmetric(2, 1, 1);
        let mut sim = Sim::new(topo, NetConfig::default(), 7);
        sim.add_actor(NodeId(0), Box::new(Counter::default()));
        sim.add_actor(NodeId(1), Box::new(Counter::default()));
        sim.partition_oneway(RegionId(0), RegionId(1));
        assert!(sim.has_partitions());
        sim.schedule(SimTime::ZERO, |s| {
            s.transmit(NodeId(0), NodeId(1), 8, Box::new(1u64));
            s.transmit(NodeId(1), NodeId(0), 8, Box::new(2u64));
        });
        sim.run_until_idle();
        // 0 -> 1 is cut; 1 -> 0 still flows.
        assert_eq!(sim.metrics().counter("simnet.dropped_partitioned"), 1);
        let fwd: &Counter = sim.actor(NodeId(1)).unwrap();
        assert!(fwd.got.is_empty());
        let back: &Counter = sim.actor(NodeId(0)).unwrap();
        assert_eq!(back.got, vec![(NodeId(1), 2)]);
        sim.heal_oneway(RegionId(0), RegionId(1));
        assert!(!sim.has_partitions());
        sim.schedule(sim.now(), |s| {
            s.transmit(NodeId(0), NodeId(1), 8, Box::new(3u64));
        });
        sim.run_until_idle();
        let fwd: &Counter = sim.actor(NodeId(1)).unwrap();
        assert_eq!(fwd.got.len(), 1);
    }

    #[test]
    fn dropped_batch_frame_annotates_every_carried_trace() {
        use crate::trace::RecordKind;
        let topo = Topology::symmetric(2, 1, 1);
        let mut sim = Sim::new(topo, NetConfig::default(), 7);
        sim.add_actor(NodeId(0), Box::new(Counter::default()));
        sim.add_actor(NodeId(1), Box::new(Counter::default()));
        let a = sim
            .tracer_mut()
            .start("a", "root", None, SimTime(0), vec![]);
        let b = sim
            .tracer_mut()
            .start("b", "root", None, SimTime(0), vec![]);
        sim.partition(RegionId(0), RegionId(1));
        sim.schedule(SimTime::ZERO, move |s| {
            s.transmit_traced(NodeId(0), NodeId(1), 8, Box::new(9u64), vec![a, b]);
        });
        sim.run_until_idle();
        // One frame, two writes: the drop shows up on both waterfalls.
        for root in [a, b] {
            let drops = sim
                .tracer()
                .trace_records(root.trace)
                .into_iter()
                .filter(|r| r.kind == RecordKind::Annot && r.name == "net.drop")
                .count();
            assert_eq!(drops, 1, "trace {:?} missing its drop annot", root.trace);
        }
    }

    #[test]
    fn stall_defers_without_dropping_and_preserves_order() {
        let mut sim = two_node_sim();
        sim.stall(NodeId(0), SimTime(50_000));
        sim.post(SimTime(100), NodeId(1), NodeId(0), Box::new(1u64));
        sim.post(SimTime(200), NodeId(1), NodeId(0), Box::new(2u64));
        sim.run_until(SimTime(10_000));
        let a: &Counter = sim.actor(NodeId(0)).unwrap();
        assert!(a.got.is_empty(), "stalled node must not process yet");
        assert!(sim.metrics().counter(names::STALL_DEFERRED) >= 2);
        sim.run_until_idle();
        let a: &Counter = sim.actor(NodeId(0)).unwrap();
        assert_eq!(a.got, vec![(NodeId(1), 1), (NodeId(1), 2)]);
        assert_eq!(sim.metrics().counter(names::DROPPED_TO_DOWN_NODE), 0);
        assert!(sim.now() >= SimTime(50_000), "backlog drained at stall end");
    }

    #[test]
    fn stall_defers_timers_unlike_crash() {
        let topo = Topology::symmetric(1, 1, 1);
        let mut sim = Sim::new(topo, NetConfig::default(), 7);
        sim.schedule(SimTime(1_000), |s| {
            s.stall(NodeId(0), SimTime(30_000));
        });
        struct T;
        impl Actor for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), 1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Message) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                let now = ctx.now();
                ctx.metrics().sample("fired_at", now.as_secs_f64());
            }
        }
        sim.add_actor(NodeId(0), Box::new(T));
        sim.run_until_idle();
        // The 5 ms timer fired, but only once the 30 ms stall ended.
        assert_eq!(sim.metrics().samples("fired_at"), &[0.03]);
    }

    #[test]
    fn clock_skew_shifts_local_reads_only() {
        let mut sim = two_node_sim();
        sim.set_clock_skew(NodeId(0), 2_000_000);
        sim.set_clock_skew(NodeId(1), -10_000_000);
        sim.run_until(SimTime(1_000_000));
        assert_eq!(sim.local_now(NodeId(0)), SimTime(3_000_000));
        // Negative skew saturates at the epoch instead of underflowing.
        assert_eq!(sim.local_now(NodeId(1)), SimTime::ZERO);
        assert_eq!(sim.now(), SimTime(1_000_000), "true time unaffected");
        sim.clear_clock_skew(NodeId(0));
        assert_eq!(sim.local_now(NodeId(0)), sim.now());
    }

    #[test]
    fn timers_fire_in_order() {
        let topo = Topology::symmetric(1, 1, 1);
        let mut sim = Sim::new(topo, NetConfig::default(), 7);

        struct T;
        impl Actor for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), 2);
                ctx.set_timer(SimDuration::from_millis(1), 1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Message) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
                ctx.metrics().sample("fired", tag as f64);
            }
        }
        sim.add_actor(NodeId(0), Box::new(T));
        sim.run_until_idle();
        assert_eq!(sim.metrics().samples("fired"), &[1.0, 2.0]);
    }

    #[test]
    fn run_until_advances_clock_past_empty_queue() {
        let mut sim = two_node_sim();
        sim.run_until(SimTime(1_000_000));
        assert_eq!(sim.now(), SimTime(1_000_000));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let topo = Topology::symmetric(2, 2, 4);
            let mut sim = Sim::new(topo, NetConfig::default(), seed);
            for n in 0..16u32 {
                sim.add_actor(NodeId(n), Box::new(Counter::default()));
            }
            struct Pinger;
            impl Actor for Pinger {
                fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                    for n in 0..16u32 {
                        ctx.send_value(NodeId(n), 100, n as u64);
                    }
                }
                fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Message) {}
            }
            sim.add_actor(NodeId(0), Box::new(Pinger));
            sim.run_until_idle();
            (sim.now(), sim.events_processed())
        };
        assert_eq!(run(3), run(3));
        // A different seed changes jitter and hence the final clock.
        assert_ne!(run(3).0, run(4).0);
    }

    #[test]
    fn egress_serialization_delays_bulk_fanout() {
        // With a 1 MB/s egress link, sending 1 MB to each of 4 peers must
        // take at least 4 seconds of egress occupancy for the last delivery.
        let topo = Topology::symmetric(1, 1, 5);
        let net = NetConfig {
            egress_bytes_per_sec: 1_000_000,
            ingress_bytes_per_sec: u64::MAX,
            max_jitter: SimDuration::ZERO,
            ..NetConfig::default()
        };
        let mut sim = Sim::new(topo, net, 1);
        for n in 0..5u32 {
            sim.add_actor(NodeId(n), Box::new(Counter::default()));
        }
        struct Bulk;
        impl Actor for Bulk {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for n in 1..5u32 {
                    ctx.send_value(NodeId(n), 1_000_000, 0u64);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Message) {}
        }
        sim.add_actor(NodeId(0), Box::new(Bulk));
        sim.run_until_idle();
        assert!(sim.now().as_secs_f64() >= 4.0, "now = {}", sim.now());
    }

    /// The per-link FIFO clamp map must not grow with simulated time: a
    /// 10-minute run where every node slowly rotates through fresh peers
    /// (a new peer every simulated minute) would otherwise accumulate one
    /// entry per (from, to) pair ever used — all 16 x 15 = 240 here,
    /// unbounded on bigger fleets. The opportunistic prune in `step` keeps
    /// only links whose clamp is still in the future, so the map tracks
    /// the recently active set instead.
    #[test]
    fn link_order_stays_bounded_over_ten_minutes() {
        struct Rotator {
            n: u32,
            tick: u64,
        }
        impl Actor for Rotator {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(200), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                let me = ctx.node().0;
                // One message every 200 ms; a fresh peer every 60 s.
                let peer = (me + 1 + ((self.tick / 300) % (self.n as u64 - 1)) as u32) % self.n;
                ctx.send_value(NodeId(peer), 256, self.tick);
                self.tick += 1;
                ctx.set_timer(SimDuration::from_millis(200), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Message) {}
        }
        let topo = Topology::symmetric(2, 2, 4);
        let n = topo.num_nodes() as u32;
        let mut sim = Sim::new(topo, NetConfig::default(), 3);
        for i in 0..n {
            sim.add_actor(NodeId(i), Box::new(Rotator { n, tick: 0 }));
        }
        sim.run_until(SimTime(600_000_000));
        assert!(
            sim.events_processed() > 2 * 65_536,
            "run too short to exercise the prune cadence ({} events)",
            sim.events_processed()
        );
        let entries = sim.link_order_entries();
        assert!(
            entries > 0 && entries < 100,
            "link_order must stay near the active link set, got {entries} \
             (unpruned would reach {})",
            n * (n - 1)
        );
    }
}
