//! Measurement collection for simulation runs.
//!
//! Actors record named samples and counters through [`crate::sim::Ctx`];
//! experiments read them back as [`Summary`] statistics after the run.

use std::collections::BTreeMap;

/// A collection of named counters and sample series.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<f64>>,
}

impl Metrics {
    /// Creates an empty metrics store.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero if absent.
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Appends a sample to the series `name`.
    pub fn sample(&mut self, name: &str, value: f64) {
        self.series.entry(name.to_string()).or_default().push(value);
    }

    /// Returns the value of counter `name`, or zero if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Returns the raw samples of series `name`.
    pub fn samples(&self, name: &str) -> &[f64] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Summarizes the series `name`. Returns `None` if it has no samples.
    pub fn summary(&self, name: &str) -> Option<Summary> {
        let s = self.samples(name);
        if s.is_empty() {
            None
        } else {
            Some(Summary::of(s))
        }
    }

    /// Iterates over all counter names and values.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all series names.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Merges another metrics store into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.series {
            self.series.entry(k.clone()).or_default().extend(v);
        }
    }
}

/// Order statistics over a sample series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "summary of empty series");
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }
}

/// Returns the `p`-th percentile (0-100) of an already-sorted slice using
/// nearest-rank interpolation.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Returns the `p`-th percentile of an unsorted slice.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    percentile_sorted(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.p50, 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 50.0), 20.0);
        assert_eq!(percentile(&v, 100.0), 30.0);
        assert_eq!(percentile(&v, 25.0), 15.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.incr("c", 1);
        a.sample("s", 1.0);
        let mut b = Metrics::new();
        b.incr("c", 2);
        b.sample("s", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.samples("s"), &[1.0, 3.0]);
    }

    #[test]
    fn empty_series_has_no_summary() {
        let m = Metrics::new();
        assert!(m.summary("nope").is_none());
    }
}
