//! Measurement collection for simulation runs.
//!
//! Actors record named samples and counters through [`crate::sim::Ctx`];
//! experiments read them back as [`Summary`] statistics after the run.
//!
//! Every sample is recorded twice: into the raw per-series `Vec<f64>`
//! (kept for experiments that want the exact sequence, e.g. staleness over
//! time) and into a log-bucketed [`Histogram`] keyed by the same name. The
//! histograms are what reporting reads: they merge deterministically, keep
//! exact counts, and answer p50/p90/p99/p999 in one bucket scan, which the
//! raw series cannot do without a full sort per query.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::intern::{Sym, SymbolTable};

/// Well-known metric names recorded by the simulator core. Centralised so
/// recording and reporting sites cannot typo apart.
pub mod names {
    /// Messages whose destination node was down at delivery time.
    pub const DROPPED_TO_DOWN_NODE: &str = "simnet.dropped_to_down_node";
    /// Messages dropped at send time by a region partition.
    pub const DROPPED_PARTITIONED: &str = "simnet.dropped_partitioned";
    /// Messages dropped by injected link faults.
    pub const DROPPED_CHAOS: &str = "simnet.dropped_chaos";
    /// Messages delayed by injected link faults.
    pub const DELAYED_CHAOS: &str = "simnet.delayed_chaos";
    /// Local events (deliveries, timers, starts) deferred by a node stall.
    pub const STALL_DEFERRED: &str = "simnet.stall_deferred";
    /// Clock-skew faults injected by a chaos plan.
    pub const CHAOS_CLOCK_SKEWS: &str = "chaos.clock_skews";
    /// Process-stall faults injected by a chaos plan.
    pub const CHAOS_STALLS: &str = "chaos.stalls";
    /// Node crashes injected by a chaos plan.
    pub const CHAOS_CRASHES: &str = "chaos.crashes";
    /// Symmetric region partitions injected by a chaos plan.
    pub const CHAOS_PARTITIONS: &str = "chaos.partitions";
    /// One-way region cuts injected by a chaos plan.
    pub const CHAOS_ONEWAY_PARTITIONS: &str = "chaos.oneway_partitions";
    /// Link drop/delay windows injected by a chaos plan.
    pub const CHAOS_DEGRADES: &str = "chaos.degrades";
    /// Total messages accepted by the network model.
    pub const MESSAGES_SENT: &str = "simnet.messages_sent";
    /// Total bytes accepted by the network model.
    pub const BYTES_SENT: &str = "simnet.bytes_sent";
    /// Logical frames sent through [`multicast`](crate::Ctx::multicast_traced):
    /// the payload is built (and allocated) once per frame.
    pub const MULTICAST_FRAMES: &str = "simnet.multicast_frames";
    /// Per-receiver sends fanned out by multicast frames. The ratio
    /// `fanout_sends / frames` is the achieved sharing factor.
    pub const MULTICAST_FANOUT_SENDS: &str = "simnet.multicast_fanout_sends";
}

/// A collection of named counters, sample series, and labeled gauges.
///
/// Storage is keyed by interned [`Sym`] ids into dense `Vec` side tables:
/// the recording paths ([`Metrics::incr`], [`Metrics::sample`]) are
/// allocation-free in the steady state (one FxHash lookup of the borrowed
/// `&str`, then an indexed slot), which matters because the simulator's
/// hot actors record several metrics per delivered event. Name-ordered
/// iteration — what the old `BTreeMap` layout gave for free — is
/// reconstructed at export/report time only.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    syms: SymbolTable,
    /// `Sym`-indexed counter slots. `None` = name interned by another
    /// plane (series, gauge) but never incremented.
    counters: Vec<Option<u64>>,
    /// `Sym`-indexed raw sample series (empty = never sampled).
    series: Vec<Vec<f64>>,
    /// `Sym`-indexed histograms, populated alongside `series`.
    hists: Vec<Option<Histogram>>,
    /// `Sym`-indexed labeled gauges: (sorted label set, value) entries in
    /// first-set order; export sorts label sets lexicographically.
    gauges: Vec<GaugeEntries>,
    /// `Sym`-indexed optional `# HELP` text.
    helps: Vec<Option<String>>,
}

/// One metric's labeled gauge entries: (sorted label set, value) pairs.
type GaugeEntries = Vec<(Vec<(String, String)>, f64)>;

/// Grows `v` with defaults so index `i` exists, and returns its slot.
#[inline]
fn slot<T: Default>(v: &mut Vec<T>, i: usize) -> &mut T {
    if v.len() <= i {
        v.resize_with(i + 1, T::default);
    }
    &mut v[i]
}

/// Whether a stored (owned) sorted label set equals a probe (borrowed)
/// sorted label set, without allocating.
fn labels_eq(stored: &[(String, String)], probe: &[(&str, &str)]) -> bool {
    stored.len() == probe.len()
        && stored
            .iter()
            .zip(probe)
            .all(|((sk, sv), &(pk, pv))| sk == pk && sv == pv)
}

impl Metrics {
    /// Creates an empty metrics store.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero if absent.
    /// Allocation-free once `name` has been seen.
    #[inline]
    pub fn incr(&mut self, name: &str, delta: u64) {
        let s = self.syms.intern(name);
        self.incr_sym(s, delta);
    }

    /// Interns `name` and returns its symbol for use with
    /// [`incr_sym`](Metrics::incr_sym). Callers on a per-event path can
    /// resolve the symbol once and skip the hash lookup on every hit.
    pub fn counter_sym(&mut self, name: &str) -> Sym {
        self.syms.intern(name)
    }

    /// Increments a counter by pre-resolved symbol: a bounds check and an
    /// add, no hashing.
    #[inline]
    pub fn incr_sym(&mut self, s: Sym, delta: u64) {
        *slot(&mut self.counters, s.idx()).get_or_insert(0) += delta;
    }

    /// Appends a sample to the series `name` and records it into the
    /// matching histogram. Histogram buckets live on a nonnegative
    /// integer-microsecond domain; negative samples are clamped to zero
    /// there but kept verbatim in the raw series. Allocation-free in the
    /// steady state (series growth is amortized).
    #[inline]
    pub fn sample(&mut self, name: &str, value: f64) {
        let s = self.syms.intern(name);
        self.sample_sym(s, value);
    }

    /// Interns `name` and returns its symbol for use with
    /// [`sample_sym`](Metrics::sample_sym). Same contract as
    /// [`counter_sym`](Metrics::counter_sym): resolve once off the hot
    /// path, skip the name hash on every hit.
    pub fn series_sym(&mut self, name: &str) -> Sym {
        self.syms.intern(name)
    }

    /// [`Metrics::sample`] by pre-resolved symbol: no name hashing.
    #[inline]
    pub fn sample_sym(&mut self, s: Sym, value: f64) {
        slot(&mut self.series, s.idx()).push(value);
        slot(&mut self.hists, s.idx())
            .get_or_insert_with(Histogram::new)
            .record_secs(value);
    }

    /// Records `n` weighted copies of `value` (seconds) into the histogram
    /// plane of series `name`, without appending to the raw series. This is
    /// the aggregation primitive for cohort actors that stand in for many
    /// simulated clients: a million-device population records a handful of
    /// weighted quantile points per event instead of a million raw samples
    /// (which would defeat the aggregation). Quantiles of such a series
    /// come from [`Metrics::histogram`]; its raw series stays empty.
    #[inline]
    pub fn sample_n(&mut self, name: &str, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        let s = self.syms.intern(name);
        slot(&mut self.hists, s.idx())
            .get_or_insert_with(Histogram::new)
            .record_secs_n(value, n);
    }

    /// Returns the value of counter `name`, or zero if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.syms
            .get(name)
            .and_then(|s| self.counters.get(s.idx()).copied().flatten())
            .unwrap_or(0)
    }

    /// Sets the labeled gauge `name{labels}` to `value`. Labels are sorted
    /// by key so the same set in any order addresses the same sample.
    /// Label strings are cloned only the first time a label set is seen;
    /// re-sets of an existing set are clone-free.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let s = self.syms.intern(name);
        let mut probe: Vec<(&str, &str)> = labels.to_vec();
        probe.sort();
        let g = slot(&mut self.gauges, s.idx());
        if let Some(entry) = g.iter_mut().find(|(k, _)| labels_eq(k, &probe)) {
            entry.1 = value;
        } else {
            g.push((
                probe
                    .iter()
                    .map(|&(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                value,
            ));
        }
    }

    /// Reads back a labeled gauge, if set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let s = self.syms.get(name)?;
        let mut probe: Vec<(&str, &str)> = labels.to_vec();
        probe.sort();
        self.gauges
            .get(s.idx())?
            .iter()
            .find(|(k, _)| labels_eq(k, &probe))
            .map(|&(_, v)| v)
    }

    /// Registers `# HELP` text for `name`, emitted by
    /// [`Metrics::export_prometheus`] ahead of the `# TYPE` line.
    pub fn set_help(&mut self, name: &str, help: &str) {
        let s = self.syms.intern(name);
        *slot(&mut self.helps, s.idx()) = Some(help.to_string());
    }

    /// Returns the raw samples of series `name`.
    pub fn samples(&self, name: &str) -> &[f64] {
        self.syms
            .get(name)
            .and_then(|s| self.series.get(s.idx()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Returns the histogram of series `name`, if any samples were taken.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.syms
            .get(name)
            .and_then(|s| self.hists.get(s.idx()))
            .and_then(Option::as_ref)
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.syms
            .sorted_by_name()
            .into_iter()
            .filter_map(|(s, name)| {
                self.hists
                    .get(s.idx())
                    .and_then(Option::as_ref)
                    .map(|h| (name, h))
            })
    }

    /// Summarizes the series `name`. Returns `None` if it has no samples.
    pub fn summary(&self, name: &str) -> Option<Summary> {
        let s = self.samples(name);
        if s.is_empty() {
            None
        } else {
            Some(Summary::of(s))
        }
    }

    /// Iterates over all counter names and values, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.syms
            .sorted_by_name()
            .into_iter()
            .filter_map(|(s, name)| {
                self.counters
                    .get(s.idx())
                    .copied()
                    .flatten()
                    .map(|v| (name, v))
            })
    }

    /// Iterates over all series names, in name order.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.syms
            .sorted_by_name()
            .into_iter()
            .filter(|&(s, _)| self.series.get(s.idx()).is_some_and(|v| !v.is_empty()))
            .map(|(_, name)| name)
    }

    /// Merges another metrics store into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in other.counters() {
            self.incr(name, v);
        }
        for (s, name) in other.syms.sorted_by_name() {
            if let Some(vals) = other.series.get(s.idx()).filter(|v| !v.is_empty()) {
                let mine = self.syms.intern(name);
                slot(&mut self.series, mine.idx()).extend(vals);
            }
            if let Some(h) = other.hists.get(s.idx()).and_then(Option::as_ref) {
                let mine = self.syms.intern(name);
                slot(&mut self.hists, mine.idx())
                    .get_or_insert_with(Histogram::new)
                    .merge(h);
            }
            if let Some(g) = other.gauges.get(s.idx()).filter(|g| !g.is_empty()) {
                for (labels, v) in g {
                    let borrowed: Vec<(&str, &str)> = labels
                        .iter()
                        .map(|(k, lv)| (k.as_str(), lv.as_str()))
                        .collect();
                    self.set_gauge(name, &borrowed, *v);
                }
            }
            if let Some(h) = other.helps.get(s.idx()).and_then(Option::as_ref) {
                let mine = self.syms.intern(name);
                let mine_slot = slot(&mut self.helps, mine.idx());
                if mine_slot.is_none() {
                    *mine_slot = Some(h.clone());
                }
            }
        }
    }

    /// Renders the whole store in the Prometheus text exposition format.
    ///
    /// Counters export as plain `counter` samples; every sampled series
    /// exports as a `histogram` with cumulative `_bucket` lines (nonempty
    /// buckets only), `_sum`/`_count`, and p50/p90/p99/p999 quantile
    /// gauges. All values are printed from integer microsecond state with
    /// fixed six-decimal seconds, so the output is byte-deterministic for a
    /// deterministic run.
    pub fn export_prometheus(&self) -> String {
        let mut out = String::new();
        let by_name = self.syms.sorted_by_name();
        for (name, v) in self.counters() {
            let n = sanitize_metric_name(name);
            self.write_help(&mut out, name, &n);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for &(s, name) in &by_name {
            let Some(g) = self.gauges.get(s.idx()).filter(|g| !g.is_empty()) else {
                continue;
            };
            let n = sanitize_metric_name(name);
            self.write_help(&mut out, name, &n);
            let _ = writeln!(out, "# TYPE {n} gauge");
            // Reproduce the old BTreeMap ordering: label sets sorted
            // lexicographically as (key, value) sequences.
            let mut entries: Vec<&(Vec<(String, String)>, f64)> = g.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            for (labels, v) in entries {
                if labels.is_empty() {
                    let _ = writeln!(out, "{n} {v}");
                } else {
                    let rendered: Vec<String> = labels
                        .iter()
                        .map(|(k, lv)| {
                            format!("{}=\"{}\"", sanitize_metric_name(k), escape_label_value(lv))
                        })
                        .collect();
                    let _ = writeln!(out, "{n}{{{}}} {v}", rendered.join(","));
                }
            }
        }
        for (name, h) in self.histograms() {
            let n = sanitize_metric_name(name);
            self.write_help(&mut out, name, &n);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for (le_us, count) in h.buckets() {
                cum += count;
                let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", fmt_us(le_us));
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{n}_sum {}", fmt_us(h.sum_us()));
            let _ = writeln!(out, "{n}_count {}", h.count());
            for (q, label) in [
                (0.50, "0.5"),
                (0.90, "0.9"),
                (0.99, "0.99"),
                (0.999, "0.999"),
            ] {
                let _ = writeln!(out, "{n}{{quantile=\"{label}\"}} {}", fmt_us(h.quantile(q)));
            }
        }
        out
    }
}

impl Metrics {
    fn write_help(&self, out: &mut String, raw: &str, sanitized: &str) {
        let help = self
            .syms
            .get(raw)
            .and_then(|s| self.helps.get(s.idx()))
            .and_then(Option::as_ref);
        if let Some(help) = help {
            let _ = writeln!(out, "# HELP {sanitized} {}", escape_help_text(help));
        }
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline become `\\`, `\"`, and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_label_value`] (used by tests to prove the escaping
/// round-trips; a scraper would apply the same rules).
pub fn unescape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Escapes `# HELP` text: backslash and newline only (quotes are legal
/// there per the exposition format).
fn escape_help_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map everything else
/// (dots, dashes) to underscores.
fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Formats integer microseconds as fixed-point seconds (six decimals).
fn fmt_us(us: u64) -> String {
    format!("{}.{:06}", us / 1_000_000, us % 1_000_000)
}

/// Number of linear sub-buckets per power-of-two octave. 32 sub-buckets
/// bound the relative quantile error at 1/32 ≈ 3%.
const SUBBUCKETS: u32 = 32;
/// Values below this are bucketed exactly (one bucket per microsecond).
const LINEAR_MAX: u64 = 64;

/// A mergeable log-bucketed latency histogram over integer microseconds.
///
/// HDR-style layout: values below [`LINEAR_MAX`] get exact unit buckets;
/// above, each power-of-two octave is split into [`SUBBUCKETS`] linear
/// sub-buckets, so relative error stays bounded across the full `u64`
/// range. Buckets are a sparse `BTreeMap`, so merging two histograms is a
/// per-bucket sum — associative, commutative, and independent of sample
/// arrival order, which is what makes multi-run aggregation deterministic.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

fn bucket_index(us: u64) -> u32 {
    if us < LINEAR_MAX {
        us as u32
    } else {
        let msb = 63 - us.leading_zeros();
        // Shift so the top 6 bits survive: mantissa ∈ [32, 64).
        let mantissa = (us >> (msb - 5)) as u32;
        LINEAR_MAX as u32 + (msb - 6) * SUBBUCKETS + (mantissa - SUBBUCKETS)
    }
}

/// Upper bound (inclusive) of the bucket, used as its representative value.
fn bucket_high(index: u32) -> u64 {
    if index < LINEAR_MAX as u32 {
        index as u64
    } else {
        let rel = index - LINEAR_MAX as u32;
        let octave = rel / SUBBUCKETS + 6;
        let pos = (rel % SUBBUCKETS + SUBBUCKETS) as u64;
        let width = 1u64 << (octave - 5);
        (pos << (octave - 5)) + width - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value in microseconds.
    pub fn record(&mut self, us: u64) {
        *self.buckets.entry(bucket_index(us)).or_insert(0) += 1;
        if self.count == 0 {
            self.min_us = us;
            self.max_us = us;
        } else {
            self.min_us = self.min_us.min(us);
            self.max_us = self.max_us.max(us);
        }
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }

    /// Records `n` identical values in microseconds with one bucket update.
    /// Weighted recording is what lets an aggregated population actor feed
    /// a histogram as if each of its constituent clients had sampled
    /// individually, at O(1) cost per quantile point instead of O(clients).
    pub fn record_n(&mut self, us: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(bucket_index(us)).or_insert(0) += n;
        if self.count == 0 {
            self.min_us = us;
            self.max_us = us;
        } else {
            self.min_us = self.min_us.min(us);
            self.max_us = self.max_us.max(us);
        }
        self.count += n;
        self.sum_us = self.sum_us.saturating_add(us.saturating_mul(n));
    }

    /// Records a value given in seconds (rounded to microseconds; negative
    /// values clamp to zero).
    pub fn record_secs(&mut self, secs: f64) {
        let us = (secs.max(0.0) * 1e6).round() as u64;
        self.record(us);
    }

    /// [`Histogram::record_n`] with the value given in seconds.
    pub fn record_secs_n(&mut self, secs: f64, n: u64) {
        let us = (secs.max(0.0) * 1e6).round() as u64;
        self.record_n(us, n);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values in microseconds (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Exact minimum in microseconds (zero when empty).
    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// Exact maximum in microseconds (zero when empty).
    pub fn max_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_us
        }
    }

    /// Mean in microseconds (zero when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (0..=1) in microseconds, from a bucket scan. The
    /// representative value is the bucket's upper bound, clamped into the
    /// exact observed [min, max]. Returns zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&idx, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_high(idx).clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }

    /// Convenience: quantile in seconds.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1e6
    }

    /// Nonempty buckets as (upper-bound-µs, count), ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&i, &c)| (bucket_high(i), c))
    }

    /// Merges `other` into this histogram (per-bucket sum; order
    /// independent).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        if self.count == 0 {
            self.min_us = other.min_us;
            self.max_us = other.max_us;
        } else {
            self.min_us = self.min_us.min(other.min_us);
            self.max_us = self.max_us.max(other.max_us);
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

/// Order statistics over a sample series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "summary of empty series");
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            p50: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            p999: percentile_sorted(&sorted, 99.9),
        }
    }
}

/// Returns the `p`-th percentile (0-100) of an already-sorted slice using
/// nearest-rank interpolation.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Returns the `p`-th percentile of an unsorted slice.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    percentile_sorted(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.p50, 2.5);
        assert!(s.p90 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.p999);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 50.0), 20.0);
        assert_eq!(percentile(&v, 100.0), 30.0);
        assert_eq!(percentile(&v, 25.0), 15.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.incr("c", 1);
        a.sample("s", 1.0);
        let mut b = Metrics::new();
        b.incr("c", 2);
        b.sample("s", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.samples("s"), &[1.0, 3.0]);
        assert_eq!(a.histogram("s").unwrap().count(), 2);
    }

    #[test]
    fn empty_series_has_no_summary() {
        let m = Metrics::new();
        assert!(m.summary("nope").is_none());
    }

    #[test]
    fn bucket_index_is_monotone_and_invertible_enough() {
        let mut prev_idx = 0;
        let mut prev_high = 0;
        for us in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            4096,
            1_000_000,
            u64::MAX / 2,
        ] {
            let idx = bucket_index(us);
            let high = bucket_high(idx);
            assert!(high >= us, "bucket high {high} must bound {us}");
            assert!(idx >= prev_idx, "indices monotone: {us}");
            assert!(high >= prev_high);
            prev_idx = idx;
            prev_high = high;
            // Relative error bound: high <= us * (1 + 1/SUBBUCKETS).
            if us >= LINEAR_MAX {
                assert!(high as f64 <= us as f64 * (1.0 + 1.0 / SUBBUCKETS as f64) + 1.0);
            } else {
                assert_eq!(high, us, "linear range is exact");
            }
        }
    }

    #[test]
    fn histogram_quantiles_track_exact_percentiles() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000); // 1ms .. 1s
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min_us(), 1000);
        assert_eq!(h.max_us(), 1_000_000);
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50={p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99={p99}");
        assert!(h.quantile(0.999) <= h.max_us());
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let samples: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 1_000_003).collect();
        // One histogram fed everything, versus two merged in either order.
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                a.record(s);
            } else {
                b.record(s);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for h in [&ab, &ba] {
            assert_eq!(h.count(), whole.count());
            assert_eq!(h.sum_us(), whole.sum_us());
            assert_eq!(h.min_us(), whole.min_us());
            assert_eq!(h.max_us(), whole.max_us());
            for q in [0.5, 0.9, 0.99, 0.999] {
                assert_eq!(h.quantile(q), whole.quantile(q), "q={q}");
            }
        }
        // And the exported text is byte-identical.
        let mut ma = Metrics::new();
        let mut mb = Metrics::new();
        for (i, &s) in samples.iter().enumerate() {
            let secs = s as f64 / 1e6;
            if i % 2 == 0 {
                ma.sample("lat", secs);
            } else {
                mb.sample("lat", secs);
            }
        }
        let mut m1 = ma.clone();
        m1.merge(&mb);
        let mut m2 = mb.clone();
        m2.merge(&ma);
        assert_eq!(m1.export_prometheus(), m2.export_prometheus());
    }

    #[test]
    fn prometheus_help_and_labeled_gauges() {
        let mut m = Metrics::new();
        m.set_help("ods.up", "Whether the tier's scrape target\nis \\up.");
        m.set_gauge("ods.up", &[("tier", "proxy")], 1.0);
        m.set_gauge("ods.up", &[("tier", "laser")], 0.0);
        let text = m.export_prometheus();
        // HELP precedes TYPE; newline/backslash in the help text escaped.
        let help_at = text.find("# HELP ods_up").unwrap();
        let type_at = text.find("# TYPE ods_up gauge").unwrap();
        assert!(help_at < type_at);
        assert!(text.contains("# HELP ods_up Whether the tier's scrape target\\nis \\\\up."));
        assert!(text.contains("ods_up{tier=\"laser\"} 0"));
        assert!(text.contains("ods_up{tier=\"proxy\"} 1"));
    }

    #[test]
    fn label_value_escaping_round_trips() {
        // The satellite case: a value containing `"`, `\n`, and `\\`.
        let nasty = "cluster \"a\"\nwith \\ backslash";
        let escaped = escape_label_value(nasty);
        assert!(!escaped.contains('\n'), "escaped value must be one line");
        assert_eq!(escaped, "cluster \\\"a\\\"\\nwith \\\\ backslash");
        assert_eq!(unescape_label_value(&escaped), nasty);

        // And through the full exporter: the emitted line parses back to
        // the original value.
        let mut m = Metrics::new();
        m.set_gauge("weird", &[("where", nasty)], 7.0);
        let text = m.export_prometheus();
        let line = text
            .lines()
            .find(|l| l.starts_with("weird{"))
            .expect("gauge line");
        let start = line.find("where=\"").unwrap() + 7;
        let end = line.rfind('"').unwrap();
        assert_eq!(unescape_label_value(&line[start..end]), nasty);
    }

    #[test]
    fn prometheus_export_shape() {
        let mut m = Metrics::new();
        m.incr("zeus.commits", 7);
        m.sample("zeus.propagation_s", 0.25);
        m.sample("zeus.propagation_s", 0.75);
        let text = m.export_prometheus();
        assert!(text.contains("# TYPE zeus_commits counter"));
        assert!(text.contains("zeus_commits 7"));
        assert!(text.contains("# TYPE zeus_propagation_s histogram"));
        assert!(text.contains("zeus_propagation_s_count 2"));
        assert!(text.contains("zeus_propagation_s_sum 1.000000"));
        assert!(text.contains("zeus_propagation_s_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("quantile=\"0.999\""));
    }
}
