//! # simnet — deterministic discrete-event fleet simulator
//!
//! This crate is the substrate standing in for Facebook's production fleet
//! in the reproduction of *"Holistic Configuration Management at Facebook"*
//! (SOSP 2015). The paper's distribution experiments run over hundreds of
//! thousands of servers spread across regions and clusters (§3.4); here the
//! same protocols run over a simulated topology with an explicit network
//! model, so propagation-latency and fan-out results are reproducible on a
//! laptop.
//!
//! The building blocks:
//!
//! * [`topology::Topology`] — region → cluster → server hierarchy.
//! * [`net::NetConfig`] — propagation delay per proximity class, per-node
//!   egress/ingress bandwidth, jitter.
//! * [`sim::Sim`] / [`sim::Actor`] — the event loop and the process model.
//! * [`stats::Metrics`] — measurement collection.
//!
//! # Examples
//!
//! ```
//! use simnet::prelude::*;
//!
//! struct Sink;
//! impl Actor for Sink {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, _msg: Message) {
//!         let t = ctx.now().as_secs_f64();
//!         ctx.metrics().sample("arrival_s", t);
//!     }
//! }
//!
//! let topo = Topology::symmetric(2, 2, 10);
//! let mut sim = Sim::new(topo, NetConfig::datacenter(), 1);
//! for node in sim.topology().nodes().collect::<Vec<_>>() {
//!     sim.add_actor(node, Box::new(Sink));
//! }
//! sim.post(SimTime::ZERO, NodeId(0), NodeId(39), Box::new(()));
//! sim.run_until_idle();
//! assert_eq!(sim.metrics().samples("arrival_s").len(), 1);
//! ```

pub mod chaos;
pub mod intern;
pub mod net;
pub mod ods;
pub mod profile;
pub mod queue;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::chaos::{ChaosConfig, ChaosPlan, ChaosReport, Invariant};
    pub use crate::net::{LinkFaults, NetConfig};
    pub use crate::ods::{tiers, Ods, OdsScraper, SeriesKind, SloAlert, SloPolicy, WindowStats};
    pub use crate::profile::{EventClass, HotActor, Profiler};
    pub use crate::sim::{Actor, Ctx, Message, Sim};
    pub use crate::stats::{Histogram, Metrics, Summary};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{ClusterId, NodeId, Proximity, RegionId, Topology, TopologyBuilder};
    pub use crate::trace::{SpanId, SpanRecord, TraceCtx, TraceId, Tracer};
}

pub use net::{LinkFaults, NetConfig};
pub use sim::{Actor, Ctx, Message, Sim};
pub use stats::{Histogram, Metrics, Summary};
pub use time::{SimDuration, SimTime};
pub use topology::{ClusterId, NodeId, Proximity, RegionId, Topology, TopologyBuilder};
pub use trace::{SpanId, SpanRecord, TraceCtx, TraceId, Tracer};
