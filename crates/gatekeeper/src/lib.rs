//! # gatekeeper — feature gating and A/B experiments
//!
//! Reproduction of Gatekeeper (§4 of *Holistic Configuration Management at
//! Facebook*, SOSP 2015): the tool that "helps mitigate the risk [of
//! frequent software releases] by managing code rollouts through online
//! config changes".
//!
//! * [`restraint`] — statically implemented predicates ("restraints"),
//!   dynamically composed through configuration, negation built in.
//! * [`project`] — the DNF gating logic (Figure 5), stored as a JSON
//!   config that Configerator distributes.
//! * [`runtime`] — `gk_check(project, user)` with deterministic per-user
//!   sampling and SQL-style cost-based reordering of restraint evaluation.
//! * [`experiment`] — A/B parameter experiments with deterministic group
//!   assignment and winner analysis.
//! * Integrates [`laser`] for data-backed restraints (`laser()`, §4).
//!
//! # Examples
//!
//! ```
//! use gatekeeper::prelude::*;
//!
//! // "Initially Gatekeeper may only enable the product feature to the
//! // engineers developing the feature. Then ... 1% → 10% → 100%" (§4).
//! let mut rt = Runtime::new(laser::Laser::new(64));
//! rt.update_project(Project::new(
//!     "ProjectX",
//!     vec![
//!         Rule::new(vec![RestraintSpec::of(RestraintKind::Employee)], 1.0),
//!         Rule::new(vec![RestraintSpec::of(RestraintKind::Always)], 0.01),
//!     ],
//! ));
//!
//! let engineer = UserContext::with_id(7).employee(true);
//! assert!(rt.check("ProjectX", &engineer));
//!
//! // Expanding the rollout is just a config update.
//! rt.update_project(Project::fraction_launch("ProjectX", 1.0));
//! assert!(rt.check("ProjectX", &UserContext::with_id(123456)));
//! ```

pub mod context;
pub mod experiment;
pub mod project;
pub mod restraint;
pub mod runtime;

/// Commonly used types.
pub mod prelude {
    pub use crate::context::{user_sample, UserContext};
    pub use crate::experiment::{Experiment, ExperimentResults, Group, ParamValue};
    pub use crate::project::{Project, Rule};
    pub use crate::restraint::{RestraintKind, RestraintSpec};
    pub use crate::runtime::{Runtime, RuntimeStats};
}

pub use prelude::*;
