//! Gatekeeper projects: the DNF gating logic stored as a config.
//!
//! "A Gatekeeper project's control logic is actually stored as a config
//! that can be changed live without a code upgrade" (§4). A project is a
//! series of if-then-else rules (Figure 5): each rule is a conjunction of
//! restraints plus a pass probability; the first rule whose restraints all
//! hold decides the outcome by sampling. Together with per-restraint
//! negation this has "the full expressive power of DNF".

use serde::{Deserialize, Serialize};

use crate::restraint::RestraintSpec;

/// One `if`-arm of the gating logic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Conjunction of restraints; all must pass for the rule to fire.
    pub restraints: Vec<RestraintSpec>,
    /// Probability in `[0, 1]` that a user matching the restraints passes
    /// the gate (the `rand(user_id) < pass_prob` of Figure 5).
    pub pass_prob: f64,
}

impl Rule {
    /// A rule with the given restraints and pass probability (clamped to
    /// `[0, 1]`).
    pub fn new(restraints: Vec<RestraintSpec>, pass_prob: f64) -> Rule {
        Rule {
            restraints,
            pass_prob: pass_prob.clamp(0.0, 1.0),
        }
    }
}

/// A Gatekeeper project: named gating logic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Project {
    /// Project name (e.g. `"ProjectX"`).
    pub name: String,
    /// Rules evaluated in order; the first whose restraints all pass
    /// decides by sampling. No match → gate fails.
    pub rules: Vec<Rule>,
}

impl Project {
    /// Creates a project.
    pub fn new(name: &str, rules: Vec<Rule>) -> Project {
        Project {
            name: name.to_string(),
            rules,
        }
    }

    /// A project that simply launches to a fraction of all users.
    pub fn fraction_launch(name: &str, fraction: f64) -> Project {
        Project::new(
            name,
            vec![Rule::new(
                vec![RestraintSpec::of(crate::restraint::RestraintKind::Always)],
                fraction,
            )],
        )
    }

    /// Serializes the project as the JSON config stored in Configerator.
    pub fn to_config_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("project serializes")
    }

    /// Parses a project from its JSON config.
    pub fn from_config_json(json: &str) -> Result<Project, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restraint::RestraintKind;

    #[test]
    fn json_round_trip() {
        let p = Project::new(
            "ProjectX",
            vec![
                Rule::new(
                    vec![
                        RestraintSpec::of(RestraintKind::Employee),
                        RestraintSpec::of(RestraintKind::Country(vec!["US".into()])),
                    ],
                    0.1,
                ),
                Rule::new(vec![RestraintSpec::not(RestraintKind::NewUser)], 0.01),
            ],
        );
        let json = p.to_config_json();
        let back = Project::from_config_json(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(Project::from_config_json("{").is_err());
        assert!(Project::from_config_json("{\"name\":\"x\"}").is_err());
    }

    #[test]
    fn pass_prob_clamped() {
        let r = Rule::new(vec![], 1.7);
        assert_eq!(r.pass_prob, 1.0);
        let r = Rule::new(vec![], -0.3);
        assert_eq!(r.pass_prob, 0.0);
    }

    #[test]
    fn fraction_launch_shape() {
        let p = Project::fraction_launch("L", 0.25);
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].pass_prob, 0.25);
    }
}
