//! A/B experiments over config parameters.
//!
//! "Gatekeeper ... can also run A/B testing experiments to find the best
//! config parameters" (§2.1), e.g. tuning "the echo-canceling parameters
//! for VoIP on Facebook Messenger ... for different mobile devices" (§2).
//! An [`Experiment`] deterministically assigns each user to a parameter
//! group; [`ExperimentResults`] accumulates an outcome metric per group and
//! picks a winner with a two-sample comparison.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::context::user_sample;

/// A typed experiment parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Boolean parameter.
    Bool(bool),
    /// Integer parameter.
    Int(i64),
    /// Floating-point parameter.
    Float(f64),
    /// String parameter.
    Str(String),
}

impl ParamValue {
    /// The float content, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Int(v) => Some(*v as f64),
            ParamValue::Float(v) => Some(*v),
            _ => None,
        }
    }
}

/// One experiment group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// Group name (e.g. `"aggressive_echo"`).
    pub name: String,
    /// Fraction of the population assigned to this group.
    pub fraction: f64,
    /// Parameter overrides this group receives.
    pub params: BTreeMap<String, ParamValue>,
}

/// A live experiment: deterministic assignment of users to groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Experiment name (the sampling salt).
    pub name: String,
    /// Groups; total fraction must be ≤ 1. The remainder is the control
    /// population, which receives no overrides.
    pub groups: Vec<Group>,
    /// Default parameter values for users in no group (control).
    pub defaults: BTreeMap<String, ParamValue>,
}

impl Experiment {
    /// Creates an experiment.
    ///
    /// # Panics
    ///
    /// Panics if group fractions are negative or sum to more than 1.
    pub fn new(
        name: &str,
        groups: Vec<Group>,
        defaults: BTreeMap<String, ParamValue>,
    ) -> Experiment {
        let total: f64 = groups.iter().map(|g| g.fraction).sum();
        assert!(
            groups.iter().all(|g| g.fraction >= 0.0) && total <= 1.0 + 1e-9,
            "group fractions must be nonnegative and sum to at most 1 (got {total})"
        );
        Experiment {
            name: name.to_string(),
            groups,
            defaults,
        }
    }

    /// The group index `user_id` falls into, or `None` for control.
    /// Assignment is deterministic and stable for the experiment's
    /// lifetime.
    pub fn assign(&self, user_id: u64) -> Option<usize> {
        let s = user_sample(&format!("exp:{}", self.name), user_id);
        let mut acc = 0.0;
        for (i, g) in self.groups.iter().enumerate() {
            acc += g.fraction;
            if s < acc {
                return Some(i);
            }
        }
        None
    }

    /// The value of `param` for `user_id`: the assigned group's override,
    /// else the default.
    pub fn param(&self, user_id: u64, param: &str) -> Option<&ParamValue> {
        match self.assign(user_id) {
            Some(i) => self.groups[i]
                .params
                .get(param)
                .or_else(|| self.defaults.get(param)),
            None => self.defaults.get(param),
        }
    }

    /// Serializes as the JSON config stored in Configerator.
    pub fn to_config_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("experiment serializes")
    }

    /// Parses from JSON config.
    pub fn from_config_json(json: &str) -> Result<Experiment, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Per-group statistics of an outcome metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupStats {
    /// Sample count.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample variance (unbiased).
    pub var: f64,
}

/// Accumulates an outcome metric per experiment group (including control
/// at index `groups.len()`).
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    samples: Vec<Vec<f64>>,
}

impl ExperimentResults {
    /// Creates a collector for an experiment with `num_groups` groups (a
    /// control slot is added automatically).
    pub fn new(num_groups: usize) -> ExperimentResults {
        ExperimentResults {
            samples: vec![Vec::new(); num_groups + 1],
        }
    }

    /// Records an outcome for the user's assignment (`None` = control).
    pub fn record(&mut self, assignment: Option<usize>, outcome: f64) {
        let idx = assignment.unwrap_or(self.samples.len() - 1);
        self.samples[idx].push(outcome);
    }

    /// Statistics for a group (`None` = control).
    pub fn stats(&self, group: Option<usize>) -> Option<GroupStats> {
        let idx = group.unwrap_or(self.samples.len() - 1);
        let s = self.samples.get(idx)?;
        if s.is_empty() {
            return None;
        }
        let n = s.len();
        let mean = s.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Some(GroupStats { n, mean, var })
    }

    /// The group with the highest mean outcome, with its z-score against
    /// the control group. Returns `None` until every group has samples.
    pub fn winner(&self) -> Option<(usize, f64)> {
        let control = self.stats(None)?;
        let mut best: Option<(usize, GroupStats)> = None;
        for g in 0..self.samples.len() - 1 {
            let st = self.stats(Some(g))?;
            if best.map(|(_, b)| st.mean > b.mean).unwrap_or(true) {
                best = Some((g, st));
            }
        }
        let (g, st) = best?;
        let se = (st.var / st.n as f64 + control.var / control.n as f64).sqrt();
        let z = if se > 0.0 {
            (st.mean - control.mean) / se
        } else {
            0.0
        };
        Some((g, z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment() -> Experiment {
        let g = |name: &str, fraction: f64, echo: f64| Group {
            name: name.into(),
            fraction,
            params: BTreeMap::from([("VOIP_ECHO".to_string(), ParamValue::Float(echo))]),
        };
        Experiment::new(
            "echo",
            vec![g("low", 0.2, 0.1), g("high", 0.2, 0.9)],
            BTreeMap::from([("VOIP_ECHO".to_string(), ParamValue::Float(0.5))]),
        )
    }

    #[test]
    fn assignment_is_deterministic_and_fractional() {
        let e = experiment();
        let n = 50_000u64;
        let mut counts = [0usize; 3];
        for u in 0..n {
            match e.assign(u) {
                Some(i) => counts[i] += 1,
                None => counts[2] += 1,
            }
            assert_eq!(e.assign(u), e.assign(u));
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.2).abs() < 0.01);
        assert!((frac(counts[1]) - 0.2).abs() < 0.01);
        assert!((frac(counts[2]) - 0.6).abs() < 0.01);
    }

    #[test]
    fn params_resolve_group_then_default() {
        let e = experiment();
        // Find one user per assignment.
        let mut seen = [false; 3];
        for u in 0..10_000u64 {
            let a = e.assign(u);
            let v = e.param(u, "VOIP_ECHO").unwrap().as_f64().unwrap();
            match a {
                Some(0) => {
                    assert_eq!(v, 0.1);
                    seen[0] = true;
                }
                Some(1) => {
                    assert_eq!(v, 0.9);
                    seen[1] = true;
                }
                None => {
                    assert_eq!(v, 0.5);
                    seen[2] = true;
                }
                _ => unreachable!(),
            }
        }
        assert!(seen.iter().all(|s| *s));
        assert!(e.param(1, "MISSING").is_none());
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_fractions_panic() {
        let g = |f: f64| Group {
            name: "g".into(),
            fraction: f,
            params: BTreeMap::new(),
        };
        let _ = Experiment::new("x", vec![g(0.7), g(0.7)], BTreeMap::new());
    }

    #[test]
    fn results_pick_the_better_group() {
        let e = experiment();
        let mut res = ExperimentResults::new(e.groups.len());
        // Synthetic outcome: high echo parameter genuinely helps.
        for u in 0..20_000u64 {
            let a = e.assign(u);
            let v = e.param(u, "VOIP_ECHO").unwrap().as_f64().unwrap();
            let noise = (crate::context::mix64(u) % 1000) as f64 / 1000.0 - 0.5;
            res.record(a, v * 2.0 + noise);
        }
        let (winner, z) = res.winner().unwrap();
        assert_eq!(e.groups[winner].name, "high");
        assert!(z > 5.0, "z = {z}");
    }

    #[test]
    fn json_round_trip() {
        let e = experiment();
        let back = Experiment::from_config_json(&e.to_config_json()).unwrap();
        assert_eq!(e, back);
    }
}
