//! The user context a gate check evaluates against.

use std::collections::HashMap;

/// Everything Gatekeeper knows about the user (and device) behind a
/// `gk_check(project, user)` call. Restraints "check various conditions of
/// a user, e.g., country/region, locale, mobile app, device, new user, and
/// number of friends" (§4).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UserContext {
    /// Stable user id — the sampling key.
    pub user_id: u64,
    /// Whether the user is a Facebook employee.
    pub employee: bool,
    /// ISO country code, e.g. `"US"`.
    pub country: String,
    /// Locale, e.g. `"en_US"`.
    pub locale: String,
    /// Mobile app in use, if any (e.g. `"messenger"`).
    pub mobile_app: Option<String>,
    /// Device model, if known (e.g. `"Pixel 6"`).
    pub device: Option<String>,
    /// App version as (major, minor), if known.
    pub app_version: Option<(u32, u32)>,
    /// Whether the account was created recently.
    pub new_user: bool,
    /// Friend count.
    pub friend_count: u32,
    /// Account age in days.
    pub account_age_days: u32,
    /// Free-form extension attributes.
    pub attrs: HashMap<String, String>,
}

impl UserContext {
    /// Creates a minimal context with just a user id.
    pub fn with_id(user_id: u64) -> UserContext {
        UserContext {
            user_id,
            ..UserContext::default()
        }
    }

    /// Builder-style setter for `employee`.
    pub fn employee(mut self, yes: bool) -> UserContext {
        self.employee = yes;
        self
    }

    /// Builder-style setter for `country`.
    pub fn country(mut self, c: &str) -> UserContext {
        self.country = c.to_string();
        self
    }

    /// Builder-style setter for `device`.
    pub fn device(mut self, d: &str) -> UserContext {
        self.device = Some(d.to_string());
        self
    }

    /// Builder-style setter for `mobile_app`.
    pub fn mobile_app(mut self, a: &str) -> UserContext {
        self.mobile_app = Some(a.to_string());
        self
    }

    /// Builder-style setter for an extension attribute.
    pub fn attr(mut self, k: &str, v: &str) -> UserContext {
        self.attrs.insert(k.to_string(), v.to_string());
        self
    }
}

/// A 64-bit mix hash used for deterministic per-user sampling
/// (SplitMix64-style finalizer). Stable across runs and platforms.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Hashes a string to 64 bits (FNV-1a), for salting by project name.
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The paper's `rand($user_id)` (Figure 5): a deterministic uniform sample
/// in `[0, 1)` keyed by `(project, user)`. Stickiness per user is what
/// makes a staged rollout (1% → 10% → 100%) monotone: every user passing
/// at 1% still passes at 10%.
pub fn user_sample(project: &str, user_id: u64) -> f64 {
    let h = mix64(hash_str(project) ^ mix64(user_id));
    // Use the top 53 bits for a uniform double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_deterministic_and_project_salted() {
        assert_eq!(user_sample("P", 42), user_sample("P", 42));
        assert_ne!(user_sample("P", 42), user_sample("Q", 42));
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let n = 100_000;
        let mean: f64 = (0..n).map(|u| user_sample("proj", u)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
        let below_10pct = (0..n).filter(|&u| user_sample("proj", u) < 0.1).count();
        let frac = below_10pct as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn rollout_is_monotone_per_user() {
        // Every user passing at 1% must also pass at 10% and 100%.
        for u in 0..10_000u64 {
            let s = user_sample("launch", u);
            if s < 0.01 {
                assert!(s < 0.10);
                assert!(s < 1.0);
            }
        }
    }

    #[test]
    fn builder_methods() {
        let ctx = UserContext::with_id(7)
            .employee(true)
            .country("US")
            .device("Pixel")
            .mobile_app("messenger")
            .attr("tier", "beta");
        assert!(ctx.employee);
        assert_eq!(ctx.country, "US");
        assert_eq!(ctx.attrs["tier"], "beta");
    }
}
