//! Restraints: the predicates gating logic is composed from.
//!
//! "Internally, a restraint is statically implemented in PHP or C++.
//! Currently, hundreds of restraints have been implemented, which are used
//! to compose tens of thousands of Gatekeeper projects" (§4). Here each
//! restraint kind is a variant of [`RestraintSpec`] — statically
//! implemented in Rust, dynamically composed through configuration. "The
//! negation operator is built inside each restraint", so every spec carries
//! a `negate` flag.
//!
//! Each kind declares a static `base_cost` (in [`laser::cost`]-compatible
//! units); the runtime refines selectivity estimates from execution
//! statistics and uses both for cost-based reordering.

use serde::{Deserialize, Serialize};

use crate::context::UserContext;
use laser::LaserBackend;

/// A configured restraint: a predicate kind plus the negation flag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RestraintSpec {
    /// The predicate.
    pub kind: RestraintKind,
    /// Whether the result is negated.
    #[serde(default)]
    pub negate: bool,
}

impl RestraintSpec {
    /// Wraps a kind without negation.
    pub fn of(kind: RestraintKind) -> RestraintSpec {
        RestraintSpec {
            kind,
            negate: false,
        }
    }

    /// Wraps a kind with negation.
    pub fn not(kind: RestraintKind) -> RestraintSpec {
        RestraintSpec { kind, negate: true }
    }

    /// Evaluates the restraint. `laser` serves the data-backed kinds —
    /// the in-process store, or values resolved through the distributed
    /// Laser client (any [`LaserBackend`]).
    pub fn eval(&self, ctx: &UserContext, laser: &mut dyn LaserBackend) -> bool {
        let v = self.kind.eval(ctx, laser);
        v ^ self.negate
    }

    /// Static cost estimate in cost units.
    pub fn base_cost(&self) -> u64 {
        self.kind.base_cost()
    }

    /// A short stable label for stats and display.
    pub fn label(&self) -> String {
        let base = self.kind.label();
        if self.negate {
            format!("not {base}")
        } else {
            base
        }
    }
}

/// The statically implemented predicate kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RestraintKind {
    /// User is a Facebook employee.
    Employee,
    /// User's country is in the list.
    Country(Vec<String>),
    /// User's locale is in the list.
    Locale(Vec<String>),
    /// User is on one of these mobile apps.
    MobileApp(Vec<String>),
    /// User's device model is in the list.
    DeviceModel(Vec<String>),
    /// App version is at least (major, minor).
    MinAppVersion(u32, u32),
    /// Account was created recently.
    NewUser,
    /// Friend count is at least this.
    MinFriends(u32),
    /// Friend count is at most this.
    MaxFriends(u32),
    /// Account age in days is at least this.
    MinAccountAgeDays(u32),
    /// User id is in the explicit list (the `ID()` restraint used during
    /// early development, §4).
    IdList(Vec<u64>),
    /// `user_id % modulus == remainder` (deterministic cohorting).
    IdMod {
        /// The modulus.
        modulus: u64,
        /// The required remainder.
        remainder: u64,
    },
    /// Extension attribute equals a value.
    AttrEquals(String, String),
    /// The `laser()` restraint: passes if
    /// `laser.get(dataset, "$project-$user_id") > threshold` (§4).
    Laser {
        /// Laser dataset name.
        dataset: String,
        /// Key prefix (the Gatekeeper project name by convention).
        project: String,
        /// Pass threshold.
        threshold: f64,
    },
    /// Always passes (useful as a rule that gates purely on sampling).
    Always,
}

impl RestraintKind {
    /// Evaluates the predicate.
    pub fn eval(&self, ctx: &UserContext, laser: &mut dyn LaserBackend) -> bool {
        match self {
            RestraintKind::Employee => ctx.employee,
            RestraintKind::Country(list) => list.contains(&ctx.country),
            RestraintKind::Locale(list) => list.contains(&ctx.locale),
            RestraintKind::MobileApp(list) => ctx
                .mobile_app
                .as_ref()
                .is_some_and(|a| list.iter().any(|x| x == a)),
            RestraintKind::DeviceModel(list) => ctx
                .device
                .as_ref()
                .is_some_and(|d| list.iter().any(|x| x == d)),
            RestraintKind::MinAppVersion(maj, min) => {
                ctx.app_version.is_some_and(|(a, b)| (a, b) >= (*maj, *min))
            }
            RestraintKind::NewUser => ctx.new_user,
            RestraintKind::MinFriends(n) => ctx.friend_count >= *n,
            RestraintKind::MaxFriends(n) => ctx.friend_count <= *n,
            RestraintKind::MinAccountAgeDays(n) => ctx.account_age_days >= *n,
            RestraintKind::IdList(ids) => ids.contains(&ctx.user_id),
            RestraintKind::IdMod { modulus, remainder } => {
                *modulus != 0 && ctx.user_id % modulus == *remainder
            }
            RestraintKind::AttrEquals(k, v) => ctx.attrs.get(k).is_some_and(|x| x == v),
            RestraintKind::Laser {
                dataset,
                project,
                threshold,
            } => laser
                .get_project_user(dataset, project, ctx.user_id)
                .is_some_and(|v| v > *threshold),
            RestraintKind::Always => true,
        }
    }

    /// Static cost estimate. In-memory field checks are cheap; list scans
    /// scale with length; Laser pays a store read (the "computationally
    /// too expensive to execute realtime" data path of §4 is priced in).
    pub fn base_cost(&self) -> u64 {
        match self {
            RestraintKind::Employee
            | RestraintKind::NewUser
            | RestraintKind::MinFriends(_)
            | RestraintKind::MaxFriends(_)
            | RestraintKind::MinAccountAgeDays(_)
            | RestraintKind::MinAppVersion(..)
            | RestraintKind::IdMod { .. }
            | RestraintKind::Always => 1,
            RestraintKind::Country(l)
            | RestraintKind::Locale(l)
            | RestraintKind::MobileApp(l)
            | RestraintKind::DeviceModel(l) => 1 + l.len() as u64 / 64,
            RestraintKind::AttrEquals(..) => 2,
            RestraintKind::IdList(ids) => 1 + ids.len() as u64 / 64,
            RestraintKind::Laser { .. } => laser::cost::FLASH_READ * 4,
        }
    }

    /// Short stable label.
    pub fn label(&self) -> String {
        match self {
            RestraintKind::Employee => "employee".into(),
            RestraintKind::Country(_) => "country".into(),
            RestraintKind::Locale(_) => "locale".into(),
            RestraintKind::MobileApp(_) => "mobile_app".into(),
            RestraintKind::DeviceModel(_) => "device".into(),
            RestraintKind::MinAppVersion(a, b) => format!("app_version>={a}.{b}"),
            RestraintKind::NewUser => "new_user".into(),
            RestraintKind::MinFriends(n) => format!("friends>={n}"),
            RestraintKind::MaxFriends(n) => format!("friends<={n}"),
            RestraintKind::MinAccountAgeDays(n) => format!("age_days>={n}"),
            RestraintKind::IdList(_) => "id_list".into(),
            RestraintKind::IdMod { modulus, remainder } => {
                format!("id%{modulus}=={remainder}")
            }
            RestraintKind::AttrEquals(k, _) => format!("attr:{k}"),
            RestraintKind::Laser { dataset, .. } => format!("laser:{dataset}"),
            RestraintKind::Always => "always".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser::Laser;

    fn laser() -> Laser {
        Laser::new(16)
    }

    fn ctx() -> UserContext {
        UserContext::with_id(42)
            .employee(true)
            .country("US")
            .device("Pixel 6")
            .mobile_app("messenger")
    }

    #[test]
    fn field_restraints() {
        let mut l = laser();
        let c = ctx();
        assert!(RestraintSpec::of(RestraintKind::Employee).eval(&c, &mut l));
        assert!(!RestraintSpec::not(RestraintKind::Employee).eval(&c, &mut l));
        assert!(
            RestraintSpec::of(RestraintKind::Country(vec!["BR".into(), "US".into()]))
                .eval(&c, &mut l)
        );
        assert!(!RestraintSpec::of(RestraintKind::Country(vec!["BR".into()])).eval(&c, &mut l));
        assert!(
            RestraintSpec::of(RestraintKind::DeviceModel(vec!["Pixel 6".into()])).eval(&c, &mut l)
        );
        assert!(
            RestraintSpec::of(RestraintKind::MobileApp(vec!["messenger".into()])).eval(&c, &mut l)
        );
    }

    #[test]
    fn numeric_restraints() {
        let mut l = laser();
        let mut c = ctx();
        c.friend_count = 100;
        c.account_age_days = 30;
        c.app_version = Some((12, 4));
        assert!(RestraintSpec::of(RestraintKind::MinFriends(100)).eval(&c, &mut l));
        assert!(!RestraintSpec::of(RestraintKind::MinFriends(101)).eval(&c, &mut l));
        assert!(RestraintSpec::of(RestraintKind::MaxFriends(100)).eval(&c, &mut l));
        assert!(RestraintSpec::of(RestraintKind::MinAccountAgeDays(30)).eval(&c, &mut l));
        assert!(RestraintSpec::of(RestraintKind::MinAppVersion(12, 4)).eval(&c, &mut l));
        assert!(RestraintSpec::of(RestraintKind::MinAppVersion(11, 9)).eval(&c, &mut l));
        assert!(!RestraintSpec::of(RestraintKind::MinAppVersion(12, 5)).eval(&c, &mut l));
    }

    #[test]
    fn id_restraints() {
        let mut l = laser();
        let c = ctx();
        assert!(RestraintSpec::of(RestraintKind::IdList(vec![41, 42])).eval(&c, &mut l));
        assert!(!RestraintSpec::of(RestraintKind::IdList(vec![7])).eval(&c, &mut l));
        assert!(RestraintSpec::of(RestraintKind::IdMod {
            modulus: 10,
            remainder: 2
        })
        .eval(&c, &mut l));
        // Zero modulus never passes (and never divides by zero).
        assert!(!RestraintSpec::of(RestraintKind::IdMod {
            modulus: 0,
            remainder: 0
        })
        .eval(&c, &mut l));
    }

    #[test]
    fn laser_restraint_threshold() {
        let mut l = laser();
        l.load_dataset("trending", vec![("ProjX-42".into(), 0.8)]);
        let c = ctx();
        let pass = RestraintKind::Laser {
            dataset: "trending".into(),
            project: "ProjX".into(),
            threshold: 0.5,
        };
        let fail_thresh = RestraintKind::Laser {
            dataset: "trending".into(),
            project: "ProjX".into(),
            threshold: 0.9,
        };
        assert!(RestraintSpec::of(pass).eval(&c, &mut l));
        assert!(!RestraintSpec::of(fail_thresh).eval(&c, &mut l));
        // Missing key fails.
        let other_user = UserContext::with_id(7);
        let kind = RestraintKind::Laser {
            dataset: "trending".into(),
            project: "ProjX".into(),
            threshold: 0.5,
        };
        assert!(!RestraintSpec::of(kind).eval(&other_user, &mut l));
    }

    #[test]
    fn costs_order_sensibly() {
        let cheap = RestraintKind::Employee.base_cost();
        let list = RestraintKind::IdList((0..1000).collect()).base_cost();
        let data = RestraintKind::Laser {
            dataset: "d".into(),
            project: "p".into(),
            threshold: 0.0,
        }
        .base_cost();
        assert!(cheap < list);
        assert!(list < data);
    }

    #[test]
    fn specs_round_trip_through_json() {
        let spec = RestraintSpec::not(RestraintKind::Country(vec!["US".into()]));
        let json = serde_json::to_string(&spec).unwrap();
        let back: RestraintSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
