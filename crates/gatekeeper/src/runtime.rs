//! The Gatekeeper runtime: live projects, check evaluation, and the
//! cost-based boolean-tree optimizer.
//!
//! "The Gatekeeper runtime reads the config and builds a boolean tree to
//! represent the gating logic. Similar to how an SQL engine performs
//! cost-based optimization, the Gatekeeper runtime can leverage execution
//! statistics (e.g., the execution time of a restraint and its probability
//! of returning true) to guide efficient evaluation of the boolean tree"
//! (§4).
//!
//! Within a rule (a conjunction), restraints are reordered by ascending
//! `cost / P(false)` — the classic optimal ordering for short-circuit AND:
//! cheap, likely-to-fail predicates run first. Statistics are collected per
//! restraint and the ordering is refreshed periodically; the optimizer can
//! be disabled for the ablation benchmark.

use std::collections::HashMap;

use laser::{Laser, LaserBackend};

use crate::context::{user_sample, UserContext};
use crate::project::Project;

/// Execution statistics for one restraint position.
#[derive(Debug, Clone, Copy, Default)]
pub struct RestraintStats {
    /// Times evaluated.
    pub evals: u64,
    /// Times it returned true.
    pub trues: u64,
    /// Total cost units spent on it.
    pub cost_units: u64,
}

impl RestraintStats {
    /// Smoothed estimate of `P(true)` (Laplace +1/+2).
    pub fn p_true(&self) -> f64 {
        (self.trues as f64 + 1.0) / (self.evals as f64 + 2.0)
    }
}

#[derive(Debug, Clone)]
struct CompiledRule {
    /// Evaluation order as indices into the rule's restraint list.
    order: Vec<usize>,
    stats: Vec<RestraintStats>,
}

#[derive(Debug, Clone)]
struct CompiledProject {
    project: Project,
    rules: Vec<CompiledRule>,
    checks: u64,
    passes: u64,
}

/// Aggregate runtime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Total `check` calls.
    pub checks: u64,
    /// Total restraint evaluations.
    pub restraint_evals: u64,
    /// Total cost units spent evaluating restraints.
    pub cost_units: u64,
}

/// The Gatekeeper runtime embedded in every frontend server (HHVM
/// extension in the paper; a library here).
///
/// Generic over the [`LaserBackend`] serving `laser()` restraints: the
/// default is the in-process [`Laser`] store; frontends on the distributed
/// Laser tier plug in a `laser::ResolvedBackend` fed by the client router.
pub struct Runtime<B: LaserBackend = Laser> {
    projects: HashMap<String, CompiledProject>,
    laser: B,
    optimize: bool,
    reoptimize_every: u64,
    stats: RuntimeStats,
}

impl<B: LaserBackend> Runtime<B> {
    /// Creates a runtime over the given Laser backend.
    pub fn new(laser: B) -> Runtime<B> {
        Runtime {
            projects: HashMap::new(),
            laser,
            optimize: true,
            reoptimize_every: 4096,
            stats: RuntimeStats::default(),
        }
    }

    /// Enables or disables cost-based reordering (ablation hook). When
    /// disabled, restraints run in declaration order.
    pub fn set_optimize(&mut self, on: bool) {
        self.optimize = on;
        if !on {
            for p in self.projects.values_mut() {
                for (rule, compiled) in p.project.rules.iter().zip(p.rules.iter_mut()) {
                    compiled.order = (0..rule.restraints.len()).collect();
                }
            }
        }
    }

    /// Sets how many checks pass between optimizer refreshes.
    pub fn set_reoptimize_every(&mut self, n: u64) {
        self.reoptimize_every = n.max(1);
    }

    /// Installs or replaces a project (a live config update). Statistics
    /// for the project reset.
    pub fn update_project(&mut self, project: Project) {
        let rules = project
            .rules
            .iter()
            .map(|r| CompiledRule {
                order: (0..r.restraints.len()).collect(),
                stats: vec![RestraintStats::default(); r.restraints.len()],
            })
            .collect();
        self.projects.insert(
            project.name.clone(),
            CompiledProject {
                project,
                rules,
                checks: 0,
                passes: 0,
            },
        );
    }

    /// Installs a project from its JSON config (as delivered by
    /// Configerator).
    pub fn update_project_json(&mut self, json: &str) -> Result<(), String> {
        let p = Project::from_config_json(json)?;
        self.update_project(p);
        Ok(())
    }

    /// Removes a project. Subsequent checks return false.
    pub fn remove_project(&mut self, name: &str) {
        self.projects.remove(name);
    }

    /// Returns whether `name` is installed.
    pub fn has_project(&self, name: &str) -> bool {
        self.projects.contains_key(name)
    }

    /// Mutable access to the embedded Laser backend (for pipelines and for
    /// frontends depositing client-resolved values).
    pub fn laser_mut(&mut self) -> &mut B {
        &mut self.laser
    }

    /// Aggregate counters.
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// `(checks, passes)` for one project.
    pub fn project_counters(&self, name: &str) -> Option<(u64, u64)> {
        self.projects.get(name).map(|p| (p.checks, p.passes))
    }

    /// The paper's `gk_check(project, user)` (Figure 4): evaluates the
    /// project's gating logic for the user. Unknown projects fail closed.
    pub fn check(&mut self, project: &str, ctx: &UserContext) -> bool {
        self.stats.checks += 1;
        let Some(compiled) = self.projects.get_mut(project) else {
            return false;
        };
        compiled.checks += 1;
        let mut outcome = false;
        'rules: for (rule, crule) in compiled.project.rules.iter().zip(compiled.rules.iter_mut()) {
            let mut all = true;
            for &idx in &crule.order {
                let spec = &rule.restraints[idx];
                let cost = spec.base_cost();
                let v = spec.eval(ctx, &mut self.laser);
                let st = &mut crule.stats[idx];
                st.evals += 1;
                st.cost_units += cost;
                if v {
                    st.trues += 1;
                }
                self.stats.restraint_evals += 1;
                self.stats.cost_units += cost;
                if !v {
                    all = false;
                    break;
                }
            }
            if all {
                // "Cast the die to decide pass or fail" (Figure 5) —
                // deterministic per (project, user).
                outcome = user_sample(project, ctx.user_id) < rule.pass_prob;
                break 'rules;
            }
        }
        if outcome {
            compiled.passes += 1;
        }
        if self.optimize && compiled.checks % self.reoptimize_every == 0 {
            Self::reoptimize(compiled);
        }
        outcome
    }

    /// Reorders every rule's restraints by ascending `cost / P(false)`.
    fn reoptimize(compiled: &mut CompiledProject) {
        for (rule, crule) in compiled.project.rules.iter().zip(compiled.rules.iter_mut()) {
            let mut scored: Vec<(usize, f64)> = (0..rule.restraints.len())
                .map(|i| {
                    let st = &crule.stats[i];
                    let cost = if st.evals > 0 {
                        st.cost_units as f64 / st.evals as f64
                    } else {
                        rule.restraints[i].base_cost() as f64
                    };
                    let p_false = 1.0 - st.p_true();
                    let score = if p_false <= f64::EPSILON {
                        f64::INFINITY
                    } else {
                        cost / p_false
                    };
                    (i, score)
                })
                .collect();
            scored.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            crule.order = scored.into_iter().map(|(i, _)| i).collect();
        }
    }

    /// Forces an immediate optimizer pass over every project.
    pub fn optimize_now(&mut self) {
        if self.optimize {
            for p in self.projects.values_mut() {
                Self::reoptimize(p);
            }
        }
    }

    /// The current evaluation order of a rule (for tests/inspection).
    pub fn rule_order(&self, project: &str, rule: usize) -> Option<Vec<usize>> {
        self.projects
            .get(project)
            .and_then(|p| p.rules.get(rule))
            .map(|r| r.order.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::Rule;
    use crate::restraint::{RestraintKind, RestraintSpec};

    fn runtime() -> Runtime {
        Runtime::new(Laser::new(64))
    }

    fn employee_project(prob: f64) -> Project {
        Project::new(
            "P",
            vec![Rule::new(
                vec![RestraintSpec::of(RestraintKind::Employee)],
                prob,
            )],
        )
    }

    #[test]
    fn unknown_project_fails_closed() {
        let mut rt = runtime();
        assert!(!rt.check("ghost", &UserContext::with_id(1)));
    }

    #[test]
    fn restraints_gate_then_sampling_decides() {
        let mut rt = runtime();
        rt.update_project(employee_project(1.0));
        let emp = UserContext::with_id(1).employee(true);
        let civ = UserContext::with_id(1).employee(false);
        assert!(rt.check("P", &emp));
        assert!(!rt.check("P", &civ));
        // prob 0 never passes even when restraints match.
        rt.update_project(employee_project(0.0));
        assert!(!rt.check("P", &emp));
    }

    #[test]
    fn sampling_fraction_is_approximately_respected() {
        let mut rt = runtime();
        rt.update_project(Project::fraction_launch("L", 0.1));
        let n = 20_000;
        let passes = (0..n)
            .filter(|&u| rt.check("L", &UserContext::with_id(u)))
            .count();
        let frac = passes as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn rollout_expansion_is_monotone() {
        // Expanding 1% → 10% keeps every previously-passing user passing
        // (stickiness of the deterministic die).
        let mut rt = runtime();
        rt.update_project(Project::fraction_launch("L", 0.01));
        let at_1: Vec<u64> = (0..50_000)
            .filter(|&u| rt.check("L", &UserContext::with_id(u)))
            .collect();
        rt.update_project(Project::fraction_launch("L", 0.10));
        for &u in &at_1 {
            assert!(rt.check("L", &UserContext::with_id(u)));
        }
    }

    #[test]
    fn first_matching_rule_wins() {
        // Employees gated at 100%, everyone else at 0%.
        let p = Project::new(
            "P",
            vec![
                Rule::new(vec![RestraintSpec::of(RestraintKind::Employee)], 1.0),
                Rule::new(vec![RestraintSpec::of(RestraintKind::Always)], 0.0),
            ],
        );
        let mut rt = runtime();
        rt.update_project(p);
        assert!(rt.check("P", &UserContext::with_id(5).employee(true)));
        assert!(!rt.check("P", &UserContext::with_id(5)));
    }

    #[test]
    fn live_update_changes_behavior() {
        let mut rt = runtime();
        rt.update_project(Project::fraction_launch("L", 0.0));
        let u = UserContext::with_id(3);
        assert!(!rt.check("L", &u));
        rt.update_project_json(&Project::fraction_launch("L", 1.0).to_config_json())
            .unwrap();
        assert!(rt.check("L", &u));
        rt.remove_project("L");
        assert!(!rt.check("L", &u));
    }

    #[test]
    fn optimizer_moves_cheap_selective_restraint_first() {
        // Rule: [expensive laser (always true), cheap employee (mostly
        // false)] — the optimizer must flip the order.
        let mut laser = Laser::new(1024);
        let entries: Vec<(String, f64)> = (0..1000u64).map(|u| (format!("P-{u}"), 1.0)).collect();
        laser.load_dataset("d", entries);
        let mut rt = Runtime::new(laser);
        rt.set_reoptimize_every(200);
        rt.update_project(Project::new(
            "P",
            vec![Rule::new(
                vec![
                    RestraintSpec::of(RestraintKind::Laser {
                        dataset: "d".into(),
                        project: "P".into(),
                        threshold: 0.5,
                    }),
                    RestraintSpec::of(RestraintKind::Employee),
                ],
                1.0,
            )],
        ));
        assert_eq!(rt.rule_order("P", 0).unwrap(), vec![0, 1]);
        for u in 0..1000u64 {
            // 1 in 50 users is an employee.
            let ctx = UserContext::with_id(u).employee(u % 50 == 0);
            rt.check("P", &ctx);
        }
        assert_eq!(
            rt.rule_order("P", 0).unwrap(),
            vec![1, 0],
            "cheap+selective employee check must now run first"
        );
    }

    #[test]
    fn optimizer_reduces_cost() {
        let build = || {
            let mut laser = Laser::new(4096);
            let entries: Vec<(String, f64)> =
                (0..2000u64).map(|u| (format!("P-{u}"), 1.0)).collect();
            laser.load_dataset("d", entries);
            let mut rt = Runtime::new(laser);
            rt.update_project(Project::new(
                "P",
                vec![Rule::new(
                    vec![
                        RestraintSpec::of(RestraintKind::Laser {
                            dataset: "d".into(),
                            project: "P".into(),
                            threshold: 0.5,
                        }),
                        RestraintSpec::of(RestraintKind::Employee),
                    ],
                    1.0,
                )],
            ));
            rt
        };
        let run = |mut rt: Runtime| {
            for u in 0..2000u64 {
                let ctx = UserContext::with_id(u).employee(u % 100 == 0);
                rt.check("P", &ctx);
            }
            rt.stats().cost_units
        };
        let mut unopt = build();
        unopt.set_optimize(false);
        let cost_unopt = run(unopt);
        let mut opt = build();
        opt.set_reoptimize_every(128);
        let cost_opt = run(opt);
        assert!(
            cost_opt * 2 < cost_unopt,
            "optimized {cost_opt} vs unoptimized {cost_unopt}"
        );
    }

    #[test]
    fn counters_track_checks_and_passes() {
        let mut rt = runtime();
        rt.update_project(employee_project(1.0));
        for u in 0..10 {
            rt.check("P", &UserContext::with_id(u).employee(u % 2 == 0));
        }
        let (checks, passes) = rt.project_counters("P").unwrap();
        assert_eq!(checks, 10);
        assert_eq!(passes, 5);
        assert_eq!(rt.stats().checks, 10);
    }
}
