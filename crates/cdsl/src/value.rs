//! Runtime values and canonical JSON emission.
//!
//! Compiled configs are JSON files (§3.1 of the paper). The emitter here is
//! canonical: struct fields appear in schema order, dict keys in sorted
//! order, with deterministic number formatting — so identical config values
//! always serialize to byte-identical JSON and hash to the same blob id in
//! gitstore.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::ast::FuncDef;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(Arc<str>),
    /// List.
    List(Arc<Vec<Value>>),
    /// String-keyed map (JSON-compatible).
    Dict(Arc<BTreeMap<String, Value>>),
    /// An instance of a schema struct; fields in schema order.
    Struct(Arc<StructValue>),
    /// A user-defined function (closure over its defining module).
    Func(Arc<FuncValue>),
    /// A built-in function.
    Builtin(&'static str),
    /// An enum variant (`JobKind.SERVICE`).
    Enum(Arc<EnumValue>),
}

/// An instantiated schema struct.
#[derive(Debug, Clone, PartialEq)]
pub struct StructValue {
    /// The schema type name.
    pub type_name: String,
    /// Fields in schema declaration order.
    pub fields: Vec<(String, Value)>,
}

impl StructValue {
    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// A user function plus the captured module scope id.
#[derive(Debug)]
pub struct FuncValue {
    /// The definition.
    pub def: Arc<FuncDef>,
    /// Index of the module scope the function closes over.
    pub module: usize,
}

/// An enum variant value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumValue {
    /// Enum type name.
    pub enum_name: String,
    /// Variant name.
    pub variant: String,
    /// Numeric value.
    pub number: i64,
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// Builds a dict value.
    pub fn dict(map: BTreeMap<String, Value>) -> Value {
        Value::Dict(Arc::new(map))
    }

    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Dict(_) => "dict",
            Value::Struct(_) => "struct",
            Value::Func(_) => "function",
            Value::Builtin(_) => "builtin",
            Value::Enum(_) => "enum",
        }
    }

    /// Truthiness, Python-style: empty containers, zero, empty strings and
    /// null are falsy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.is_empty(),
            Value::Dict(d) => !d.is_empty(),
            Value::Struct(_) | Value::Func(_) | Value::Builtin(_) | Value::Enum(_) => true,
        }
    }

    /// Serializes the value to canonical JSON.
    ///
    /// Structs serialize as objects in schema field order; dicts in sorted
    /// key order; enum variants as their variant name strings (readable in
    /// the compiled config, like Thrift's JSON protocol in string mode).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Serializes as pretty-printed JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => write_f64(out, *v),
            Value::Str(s) => write_json_string(out, s),
            Value::Enum(e) => write_json_string(out, &e.variant),
            Value::List(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Dict(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
            Value::Struct(s) => {
                out.push('{');
                for (i, (k, v)) in s.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
            Value::Func(_) | Value::Builtin(_) => out.push_str("null"),
        }
    }

    fn write_json_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::List(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    v.write_json_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Value::Dict(map) if !map.is_empty() => {
                let entries: Vec<(&String, &Value)> = map.iter().collect();
                write_object_pretty(out, depth, &entries);
            }
            Value::Struct(s) if !s.fields.is_empty() => {
                let entries: Vec<(&String, &Value)> =
                    s.fields.iter().map(|(k, v)| (k, v)).collect();
                write_object_pretty(out, depth, &entries);
            }
            other => other.write_json(out),
        }
    }
}

fn write_object_pretty(out: &mut String, depth: usize, entries: &[(&String, &Value)]) {
    out.push_str("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        indent(out, depth + 1);
        write_json_string(out, k);
        out.push_str(": ");
        v.write_json_pretty(out, depth + 1);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    indent(out, depth);
    out.push('}');
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats distinguishable from ints.
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // JSON has no NaN/Inf; emit null as serde_json does by default.
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            (Value::Dict(a), Value::Dict(b)) => a == b,
            (Value::Struct(a), Value::Struct(b)) => a == b,
            (Value::Enum(a), Value::Enum(b)) => a == b,
            (Value::Builtin(a), Value::Builtin(b)) => a == b,
            (Value::Func(a), Value::Func(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Renders strings bare and everything else as compact JSON (used in error
/// messages and the Sitevars UI).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Func(v) => write!(f, "<function {}>", v.def.name),
            Value::Builtin(n) => write!(f, "<builtin {n}>"),
            other => f.write_str(&other.to_json()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> Value {
        Value::str(v)
    }

    #[test]
    fn scalar_json() {
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::Int(-3).to_json(), "-3");
        assert_eq!(Value::Float(2.5).to_json(), "2.5");
        assert_eq!(Value::Float(2.0).to_json(), "2.0");
        assert_eq!(s("hi").to_json(), "\"hi\"");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(s("a\"b\\c\nd").to_json(), r#""a\"b\\c\nd""#);
        assert_eq!(s("\u{1}").to_json(), "\"\\u0001\"");
    }

    #[test]
    fn dict_keys_sorted() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), Value::Int(2));
        m.insert("a".to_string(), Value::Int(1));
        assert_eq!(Value::dict(m).to_json(), r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn struct_fields_keep_schema_order() {
        let sv = Value::Struct(Arc::new(StructValue {
            type_name: "Job".into(),
            fields: vec![
                ("zeta".into(), Value::Int(1)),
                ("alpha".into(), Value::Int(2)),
            ],
        }));
        assert_eq!(sv.to_json(), r#"{"zeta":1,"alpha":2}"#);
    }

    #[test]
    fn enum_serializes_as_variant_name() {
        let e = Value::Enum(Arc::new(EnumValue {
            enum_name: "JobKind".into(),
            variant: "SERVICE".into(),
            number: 1,
        }));
        assert_eq!(e.to_json(), "\"SERVICE\"");
    }

    #[test]
    fn pretty_round_trips_compact_semantics() {
        let mut m = BTreeMap::new();
        m.insert(
            "x".to_string(),
            Value::list(vec![Value::Int(1), Value::Int(2)]),
        );
        m.insert("y".to_string(), Value::dict(BTreeMap::new()));
        let v = Value::dict(m);
        let pretty = v.to_json_pretty();
        assert!(pretty.contains("\n"));
        // Identical content modulo whitespace.
        let strip = |s: &str| s.replace([' ', '\n'], "");
        assert_eq!(strip(&pretty), strip(&v.to_json()));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!s("").truthy());
        assert!(!Value::list(vec![]).truthy());
        assert!(Value::Int(1).truthy());
        assert!(s("x").truthy());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn struct_get() {
        let sv = StructValue {
            type_name: "T".into(),
            fields: vec![("a".into(), Value::Int(1))],
        };
        assert_eq!(sv.get("a"), Some(&Value::Int(1)));
        assert_eq!(sv.get("b"), None);
    }
}
