//! Static verification of CDSL sources — without executing them.
//!
//! The compiler (and the validators it runs) only reports problems on the
//! paths it actually executes. This module analyzes a commit's sources
//! *statically*, in the spirit of the config-verification literature
//! (Rehearsal's determinacy/totality checking, Tortoise's repair
//! suggestions):
//!
//! 1. **Schema type checking** of struct literals against the Thrift-style
//!    [`SchemaSet`] — unknown fields, missing required fields, element
//!    types of collections, enum membership — on *every* literal in the
//!    import closure, including ones the interpreter would never reach.
//! 2. **Validator totality/determinacy**: a `.cvalidator` whose
//!    `validate()` can fall through (or `return`) without evaluating a
//!    single `require`/`fail` silently passes bad configs; names that are
//!    bound by no reachable scope, or by more than one import
//!    (import-order-sensitive), are flagged.
//! 3. **Reachability**: `export_if_last` arms under constant-false
//!    conditions are dead; imports contributing no used binding are noise.
//! 4. **Bounded symbolic evaluation** over a small abstract-value lattice
//!    ([`Abs`]): constant-foldable violations such as out-of-range ports
//!    or empty required lists are caught before any canary sees them.
//!
//! The verifier is deliberately *under*-approximate: it only folds an
//! operation when the interpreter provably produces the same value, and it
//! only reports an [`Severity::Error`] when execution (of the flagged
//! code) would provably misbehave. A commit that compiles and validates
//! cleanly is never rejected.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::ast::{BinOp, Expr, ExprKind, FuncDef, Module, Stmt, StmtKind, UnOp};
use crate::cache::{content_key, ContentKey, ParseCache};
use crate::compile::validator_path;
use crate::interp::{Loader, BUILTINS};
use crate::parser;
use crate::schema::{parse_schema, SchemaSet, Type, TypeDef};
use crate::value::Value;

/// How bad a finding is. Only errors reject a commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably wrong; never rejects.
    Warning,
    /// Provably misbehaves if the flagged code runs; rejects the commit.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Check families (stable slugs used in reports and metrics).
pub mod check {
    /// Struct-literal / export payload schema type checking.
    pub const SCHEMA_TYPE: &str = "schema-type";
    /// Validator totality (every path reaches a verdict).
    pub const TOTALITY: &str = "validator-totality";
    /// Unbound or import-order-sensitive names.
    pub const DETERMINACY: &str = "determinacy";
    /// Dead `export_if_last` arms, unused imports, missing sources.
    pub const REACHABILITY: &str = "reachability";
    /// Constant-folded value violations (ports, required lists).
    pub const CONST_FOLD: &str = "const-fold";
}

/// One verifier finding, anchored to a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Finding {
    /// Source path the finding is in.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Check family slug (see [`check`]).
    pub check: &'static str,
    /// Severity; only [`Severity::Error`] rejects.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: [{}] {}",
            self.severity, self.path, self.line, self.check, self.message
        )
    }
}

/// The structured result of verifying a commit: sorted, deduplicated
/// findings plus Tortoise-style repair hints. Rendering is
/// byte-deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// All findings, sorted by (path, line, check, severity, message).
    pub findings: Vec<Finding>,
    /// Repair hints ("minimal fix: …"), sorted and deduplicated.
    pub hints: Vec<String>,
}

impl VerifyReport {
    /// Builds a report from an unordered finding set.
    pub fn from_findings(findings: BTreeSet<Finding>, hints: BTreeSet<String>) -> VerifyReport {
        VerifyReport {
            findings: findings.into_iter().collect(),
            hints: hints.into_iter().collect(),
        }
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// True if any finding rejects the commit.
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let warnings = self.findings.len() - self.error_count();
        writeln!(
            f,
            "verify: {} error(s), {} warning(s)",
            self.error_count(),
            warnings
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        for hint in &self.hints {
            writeln!(f, "  hint: {hint}")?;
        }
        Ok(())
    }
}

/// A Tortoise-style minimal-fix suggestion for one finding, when the check
/// family admits an obvious one.
pub fn repair_hint(f: &Finding) -> Option<String> {
    let at = format!("{}:{}", f.path, f.line);
    if f.check == check::SCHEMA_TYPE && f.message.contains("has no field") {
        Some(format!(
            "{at}: minimal fix: remove or rename the unknown field"
        ))
    } else if f.check == check::SCHEMA_TYPE && f.message.contains("missing required field") {
        Some(format!("{at}: minimal fix: add the missing field"))
    } else if f.check == check::SCHEMA_TYPE && f.message.contains("has no variant") {
        Some(format!(
            "{at}: minimal fix: use one of the enum's declared variants"
        ))
    } else if f.check == check::CONST_FOLD && f.message.contains("port") {
        Some(format!("{at}: minimal fix: choose a port in 1..=65535"))
    } else if f.check == check::CONST_FOLD && f.message.contains("required list") {
        Some(format!(
            "{at}: minimal fix: populate the list or make the field optional"
        ))
    } else if f.check == check::TOTALITY {
        Some(format!(
            "{at}: minimal fix: evaluate a require(...)/fail(...) on every path of validate()"
        ))
    } else if f.check == check::DETERMINACY && f.message.contains("not defined") {
        let name = f
            .message
            .split('\'')
            .nth(1)
            .unwrap_or("the name")
            .to_string();
        Some(format!(
            "{at}: minimal fix: define or import '{name}' (or restore the removed binding)"
        ))
    } else if f.check == check::REACHABILITY && f.message.contains("unreachable") {
        Some(format!(
            "{at}: minimal fix: remove the dead arm or make its condition non-constant"
        ))
    } else {
        None
    }
}

/// Abstract value lattice for bounded symbolic evaluation. `Known` means
/// the interpreter provably computes exactly that value; anything
/// uncertain collapses to `Unknown` (never to a wrong `Known`).
#[derive(Debug, Clone, PartialEq)]
pub enum Abs {
    /// Provably this exact value.
    Known(Value),
    /// A schema struct literal whose field values are themselves abstract.
    Struct {
        /// Schema type name.
        name: String,
        /// Provided fields in written order.
        fields: Vec<(String, Abs)>,
    },
    /// Top: no static knowledge.
    Unknown,
}

impl Abs {
    fn join(self, other: Abs) -> Abs {
        if self == other {
            self
        } else {
            Abs::Unknown
        }
    }
}

/// A struct literal found anywhere in a module, with constant-foldable
/// field values pre-evaluated (context-free: no environment).
#[derive(Debug, Clone)]
struct StructLit {
    name: String,
    line: u32,
    fields: Vec<(String, Option<Value>)>,
}

/// Context-free facts about one module, extracted once per content key.
#[derive(Debug)]
struct ModuleFacts {
    module: Arc<Module>,
    /// Names bound at module top level (assignments, defs, loop vars).
    bindings: BTreeSet<String>,
    /// `import` statements: (path, line).
    imports: Vec<(String, u32)>,
    /// `schema` statements: (path, line).
    schemas: Vec<(String, u32)>,
    /// Names referenced but not bound by the module's own scope
    /// (deduplicated by name; first referencing line kept).
    free_refs: Vec<(String, u32)>,
    /// Every struct literal in the module (all branches, all functions).
    struct_lits: Vec<StructLit>,
}

/// Content-addressed cache of [`ModuleFacts`], shareable across plans so
/// a hot shared module is analyzed once, not once per commit.
#[derive(Debug, Default)]
pub struct FactsCache {
    inner: Mutex<HashMap<ContentKey, Arc<ModuleFacts>>>,
}

impl FactsCache {
    /// An empty cache.
    pub fn new() -> FactsCache {
        FactsCache::default()
    }

    fn get_or_build(
        &self,
        src: &str,
        path: &str,
        parse_cache: Option<&ParseCache>,
    ) -> Option<Arc<ModuleFacts>> {
        let key = content_key(src);
        if let Some(f) = self.inner.lock().unwrap().get(&key) {
            return Some(f.clone());
        }
        let module = match parse_cache {
            Some(c) => c.module(src, path).ok()?,
            None => Arc::new(parser::parse(src, path).ok()?),
        };
        let facts = Arc::new(extract_facts(module));
        self.inner.lock().unwrap().insert(key, facts.clone());
        Some(facts)
    }
}

fn extract_facts(module: Arc<Module>) -> ModuleFacts {
    let mut bindings = BTreeSet::new();
    collect_bindings(&module.stmts, &mut bindings);
    let mut imports = Vec::new();
    let mut schemas = Vec::new();
    for stmt in &module.stmts {
        match &stmt.kind {
            StmtKind::Import(p) => imports.push((p.clone(), stmt.line)),
            StmtKind::Schema(p) => schemas.push((p.clone(), stmt.line)),
            _ => {}
        }
    }
    let mut refs: Vec<(String, u32)> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    {
        let bound = |n: &str| bindings.contains(n);
        collect_free_refs_stmts(&module.stmts, &bound, &mut refs, &mut seen, false);
    }
    for stmt in &module.stmts {
        if let StmtKind::Def(def) = &stmt.kind {
            let mut locals: BTreeSet<String> = def.params.iter().map(|p| p.name.clone()).collect();
            collect_bindings(&def.body, &mut locals);
            let bound = |n: &str| locals.contains(n) || bindings.contains(n);
            collect_free_refs_stmts(&def.body, &bound, &mut refs, &mut seen, true);
        }
    }
    let mut struct_lits = Vec::new();
    collect_struct_lits_stmts(&module.stmts, &mut struct_lits);
    ModuleFacts {
        module,
        bindings,
        imports,
        schemas,
        free_refs: refs,
        struct_lits,
    }
}

fn collect_bindings(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Assign { name, .. } => {
                out.insert(name.clone());
            }
            StmtKind::Def(def) => {
                out.insert(def.name.clone());
            }
            StmtKind::If {
                then, otherwise, ..
            } => {
                collect_bindings(then, out);
                collect_bindings(otherwise, out);
            }
            StmtKind::For { var, body, .. } => {
                out.insert(var.clone());
                collect_bindings(body, out);
            }
            _ => {}
        }
    }
}

fn collect_free_refs_stmts(
    stmts: &[Stmt],
    bound: &dyn Fn(&str) -> bool,
    out: &mut Vec<(String, u32)>,
    seen: &mut BTreeSet<String>,
    skip_defs: bool,
) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Assign { value, .. } => collect_free_refs_expr(value, bound, out, seen),
            StmtKind::Expr(e) => collect_free_refs_expr(e, bound, out, seen),
            StmtKind::Return(Some(e)) => collect_free_refs_expr(e, bound, out, seen),
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                collect_free_refs_expr(cond, bound, out, seen);
                collect_free_refs_stmts(then, bound, out, seen, skip_defs);
                collect_free_refs_stmts(otherwise, bound, out, seen, skip_defs);
            }
            StmtKind::For { iter, body, .. } => {
                collect_free_refs_expr(iter, bound, out, seen);
                collect_free_refs_stmts(body, bound, out, seen, skip_defs);
            }
            StmtKind::Def(def) if !skip_defs => {
                // Parameter defaults evaluate in module scope.
                for p in &def.params {
                    if let Some(d) = &p.default {
                        collect_free_refs_expr(d, bound, out, seen);
                    }
                }
            }
            _ => {}
        }
    }
}

fn collect_free_refs_expr(
    e: &Expr,
    bound: &dyn Fn(&str) -> bool,
    out: &mut Vec<(String, u32)>,
    seen: &mut BTreeSet<String>,
) {
    match &e.kind {
        ExprKind::Name(n) if !bound(n) && seen.insert(n.clone()) => {
            out.push((n.clone(), e.line));
        }
        ExprKind::List(items) => {
            for i in items {
                collect_free_refs_expr(i, bound, out, seen);
            }
        }
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                collect_free_refs_expr(k, bound, out, seen);
                collect_free_refs_expr(v, bound, out, seen);
            }
        }
        ExprKind::Struct { fields, .. } => {
            for (_, v) in fields {
                collect_free_refs_expr(v, bound, out, seen);
            }
        }
        ExprKind::Bin(_, l, r) => {
            collect_free_refs_expr(l, bound, out, seen);
            collect_free_refs_expr(r, bound, out, seen);
        }
        ExprKind::Un(_, v) => collect_free_refs_expr(v, bound, out, seen),
        ExprKind::Call {
            callee,
            args,
            kwargs,
        } => {
            collect_free_refs_expr(callee, bound, out, seen);
            for a in args {
                collect_free_refs_expr(a, bound, out, seen);
            }
            for (_, a) in kwargs {
                collect_free_refs_expr(a, bound, out, seen);
            }
        }
        ExprKind::Index(b, i) => {
            collect_free_refs_expr(b, bound, out, seen);
            collect_free_refs_expr(i, bound, out, seen);
        }
        ExprKind::Attr(b, _) => collect_free_refs_expr(b, bound, out, seen),
        ExprKind::Cond {
            then,
            cond,
            otherwise,
        } => {
            collect_free_refs_expr(then, bound, out, seen);
            collect_free_refs_expr(cond, bound, out, seen);
            collect_free_refs_expr(otherwise, bound, out, seen);
        }
        _ => {}
    }
}

fn collect_struct_lits_stmts(stmts: &[Stmt], out: &mut Vec<StructLit>) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Assign { value, .. } => collect_struct_lits_expr(value, out),
            StmtKind::Expr(e) => collect_struct_lits_expr(e, out),
            StmtKind::Return(Some(e)) => collect_struct_lits_expr(e, out),
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                collect_struct_lits_expr(cond, out);
                collect_struct_lits_stmts(then, out);
                collect_struct_lits_stmts(otherwise, out);
            }
            StmtKind::For { iter, body, .. } => {
                collect_struct_lits_expr(iter, out);
                collect_struct_lits_stmts(body, out);
            }
            StmtKind::Def(def) => {
                for p in &def.params {
                    if let Some(d) = &p.default {
                        collect_struct_lits_expr(d, out);
                    }
                }
                collect_struct_lits_stmts(&def.body, out);
            }
            _ => {}
        }
    }
}

fn collect_struct_lits_expr(e: &Expr, out: &mut Vec<StructLit>) {
    let mut recurse = |sub: &Expr| collect_struct_lits_expr(sub, out);
    match &e.kind {
        ExprKind::Struct { name, fields } => {
            let lit = StructLit {
                name: name.clone(),
                line: e.line,
                fields: fields
                    .iter()
                    .map(|(f, v)| (f.clone(), const_eval(v)))
                    .collect(),
            };
            out.push(lit);
            for (_, v) in fields {
                collect_struct_lits_expr(v, out);
            }
        }
        ExprKind::List(items) => items.iter().for_each(recurse),
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                collect_struct_lits_expr(k, out);
                collect_struct_lits_expr(v, out);
            }
        }
        ExprKind::Bin(_, l, r) => {
            collect_struct_lits_expr(l, out);
            collect_struct_lits_expr(r, out);
        }
        ExprKind::Un(_, v) => recurse(v),
        ExprKind::Call {
            callee,
            args,
            kwargs,
        } => {
            collect_struct_lits_expr(callee, out);
            args.iter().for_each(|a| collect_struct_lits_expr(a, out));
            kwargs
                .iter()
                .for_each(|(_, a)| collect_struct_lits_expr(a, out));
        }
        ExprKind::Index(b, i) => {
            collect_struct_lits_expr(b, out);
            collect_struct_lits_expr(i, out);
        }
        ExprKind::Attr(b, _) => recurse(b),
        ExprKind::Cond {
            then,
            cond,
            otherwise,
        } => {
            collect_struct_lits_expr(then, out);
            collect_struct_lits_expr(cond, out);
            collect_struct_lits_expr(otherwise, out);
        }
        _ => {}
    }
}

/// Evaluates a literal-only expression to the exact value the interpreter
/// would produce, or `None` if anything is uncertain (names, calls,
/// runtime errors).
fn const_eval(e: &Expr) -> Option<Value> {
    match &e.kind {
        ExprKind::Null => Some(Value::Null),
        ExprKind::Bool(b) => Some(Value::Bool(*b)),
        ExprKind::Int(i) => Some(Value::Int(*i)),
        ExprKind::Float(f) => Some(Value::Float(*f)),
        ExprKind::Str(s) => Some(Value::str(s.clone())),
        ExprKind::List(items) => {
            let vals: Option<Vec<Value>> = items.iter().map(const_eval).collect();
            vals.map(Value::list)
        }
        ExprKind::Dict(pairs) => {
            let mut map = BTreeMap::new();
            for (k, v) in pairs {
                match (const_eval(k), const_eval(v)) {
                    (Some(Value::Str(ks)), Some(vv)) => {
                        map.insert(ks.to_string(), vv);
                    }
                    _ => return None,
                }
            }
            Some(Value::dict(map))
        }
        ExprKind::Un(op, v) => {
            let v = const_eval(v)?;
            fold_un(*op, &v)
        }
        ExprKind::Bin(op, l, r) => {
            let l = const_eval(l)?;
            if matches!(op, BinOp::And) {
                return if l.truthy() { const_eval(r) } else { Some(l) };
            }
            if matches!(op, BinOp::Or) {
                return if l.truthy() { Some(l) } else { const_eval(r) };
            }
            let r = const_eval(r)?;
            fold_bin(*op, &l, &r)
        }
        ExprKind::Cond {
            then,
            cond,
            otherwise,
        } => {
            let c = const_eval(cond)?;
            if c.truthy() {
                const_eval(then)
            } else {
                const_eval(otherwise)
            }
        }
        _ => None,
    }
}

/// Folds a unary op exactly as the interpreter would, or `None`.
fn fold_un(op: UnOp, v: &Value) -> Option<Value> {
    match (op, v) {
        (UnOp::Neg, Value::Int(i)) => i.checked_neg().map(Value::Int),
        (UnOp::Neg, Value::Float(f)) => Some(Value::Float(-f)),
        (UnOp::Not, v) => Some(Value::Bool(!v.truthy())),
        _ => None,
    }
}

/// Folds a binary op exactly as the interpreter would — `None` whenever
/// the interpreter would error or the fold is not implemented. Never
/// produces a value the interpreter would not.
fn fold_bin(op: BinOp, l: &Value, r: &Value) -> Option<Value> {
    let num = |v: &Value| -> Option<f64> {
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    };
    match op {
        BinOp::Add => match (l, r) {
            (Value::Int(a), Value::Int(b)) => a.checked_add(*b).map(Value::Int),
            (Value::Str(a), Value::Str(b)) => Some(Value::str(format!("{a}{b}"))),
            (Value::List(a), Value::List(b)) => {
                let mut out = a.to_vec();
                out.extend(b.iter().cloned());
                Some(Value::list(out))
            }
            _ => match (num(l), num(r)) {
                (Some(a), Some(b)) => Some(Value::Float(a + b)),
                _ => None,
            },
        },
        BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            match (l, r, op) {
                (Value::Int(a), Value::Int(b), BinOp::Sub) => {
                    return a.checked_sub(*b).map(Value::Int)
                }
                (Value::Int(a), Value::Int(b), BinOp::Mul) => {
                    return a.checked_mul(*b).map(Value::Int)
                }
                (Value::Int(a), Value::Int(b), BinOp::Mod) => {
                    return if *b == 0 {
                        None
                    } else {
                        Some(Value::Int(a.rem_euclid(*b)))
                    };
                }
                _ => {}
            }
            match (num(l), num(r)) {
                (Some(a), Some(b)) => match op {
                    BinOp::Sub => Some(Value::Float(a - b)),
                    BinOp::Mul => Some(Value::Float(a * b)),
                    BinOp::Div => (b != 0.0).then(|| Value::Float(a / b)),
                    BinOp::Mod => (b != 0.0).then(|| Value::Float(a.rem_euclid(b))),
                    _ => unreachable!("handled above"),
                },
                _ => None,
            }
        }
        BinOp::Eq => Some(Value::Bool(l == r)),
        BinOp::Ne => Some(Value::Bool(l != r)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = match (l, r) {
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                _ => match (num(l), num(r)) {
                    (Some(a), Some(b)) => a.partial_cmp(&b)?,
                    _ => return None,
                },
            };
            let b = match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Some(Value::Bool(b))
        }
        BinOp::In => match (l, r) {
            (v, Value::List(items)) => Some(Value::Bool(items.contains(v))),
            (Value::Str(k), Value::Dict(d)) => Some(Value::Bool(d.contains_key(&**k))),
            (Value::Str(n), Value::Str(h)) => Some(Value::Bool(h.contains(&**n))),
            _ => None,
        },
        BinOp::And | BinOp::Or => None,
    }
}

/// Totality flow summary of a statement list.
struct Flow {
    /// All fall-through paths evaluated a verdict.
    covered: bool,
    /// Some path falls through the end of the list.
    falls: bool,
    /// Some path `return`s before evaluating any verdict.
    bad_return: bool,
}

fn expr_has_verdict(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Call {
            callee,
            args,
            kwargs,
        } => {
            if matches!(&callee.kind, ExprKind::Name(n) if n == "require" || n == "fail") {
                return true;
            }
            expr_has_verdict(callee)
                || args.iter().any(expr_has_verdict)
                || kwargs.iter().any(|(_, a)| expr_has_verdict(a))
        }
        ExprKind::List(items) => items.iter().any(expr_has_verdict),
        ExprKind::Dict(pairs) => pairs
            .iter()
            .any(|(k, v)| expr_has_verdict(k) || expr_has_verdict(v)),
        ExprKind::Struct { fields, .. } => fields.iter().any(|(_, v)| expr_has_verdict(v)),
        ExprKind::Bin(_, l, r) => expr_has_verdict(l) || expr_has_verdict(r),
        ExprKind::Un(_, v) => expr_has_verdict(v),
        ExprKind::Index(b, i) => expr_has_verdict(b) || expr_has_verdict(i),
        ExprKind::Attr(b, _) => expr_has_verdict(b),
        ExprKind::Cond {
            then,
            cond,
            otherwise,
        } => expr_has_verdict(then) || expr_has_verdict(cond) || expr_has_verdict(otherwise),
        _ => false,
    }
}

fn verdict_flow(stmts: &[Stmt], covered_in: bool) -> Flow {
    let mut covered = covered_in;
    let mut bad = false;
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Expr(e) | StmtKind::Assign { value: e, .. } if expr_has_verdict(e) => {
                covered = true;
            }
            StmtKind::Return(v) => {
                if let Some(e) = v {
                    if expr_has_verdict(e) {
                        covered = true;
                    }
                }
                return Flow {
                    covered,
                    falls: false,
                    bad_return: bad || !covered,
                };
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                if expr_has_verdict(cond) {
                    covered = true;
                }
                let t = verdict_flow(then, covered);
                let e = verdict_flow(otherwise, covered);
                bad |= t.bad_return || e.bad_return;
                covered = match (t.falls, e.falls) {
                    (true, true) => t.covered && e.covered,
                    (true, false) => t.covered,
                    (false, true) => e.covered,
                    (false, false) => {
                        return Flow {
                            covered: true,
                            falls: false,
                            bad_return: bad,
                        }
                    }
                };
            }
            StmtKind::For { iter, body, .. } => {
                if expr_has_verdict(iter) {
                    covered = true;
                }
                // The loop may run zero times: verdicts inside never count
                // toward coverage, but a verdict-less return inside is bad.
                let b = verdict_flow(body, covered);
                bad |= b.bad_return;
            }
            _ => {}
        }
    }
    Flow {
        covered,
        falls: true,
        bad_return: bad,
    }
}

/// True if `validate()` provably evaluates a `require`/`fail` on every
/// path that can complete (fall through or return).
fn validator_is_total(def: &FuncDef) -> bool {
    let flow = verdict_flow(&def.body, false);
    !flow.bad_return && (!flow.falls || flow.covered)
}

/// The static verifier. Analyzes entries (and their import closures)
/// through a [`Loader`] — typically the same overlay view the compiler
/// uses — and produces a [`VerifyReport`].
pub struct Verifier<'l> {
    loader: &'l dyn Loader,
    parse_cache: Option<&'l ParseCache>,
    shared_facts: Option<&'l FactsCache>,
    local_facts: FactsCache,
    /// Per-session memo: module path → context-dependent findings.
    module_findings: Mutex<HashMap<String, Arc<Vec<Finding>>>>,
    /// Per-session memo: validator path → findings.
    validator_findings: Mutex<HashMap<String, Arc<Vec<Finding>>>>,
    /// Per-session path → facts memo. The content-addressed
    /// [`FactsCache`] already dedups *analysis* across plans, but every
    /// lookup through it pays a source load + content hash; within one
    /// plan a path's source cannot change, so the first resolution is
    /// cached by name (including misses — unparseable or absent files).
    facts_by_path: Mutex<HashMap<String, Option<Arc<ModuleFacts>>>>,
    /// Per-session memo of assembled schema sets, keyed by the sorted
    /// schema-path list of an entry's import closure. Entries sharing a
    /// schema (the common fan-in shape) load and assemble it once.
    #[allow(clippy::type_complexity)]
    schema_sets: Mutex<HashMap<String, Arc<(SchemaSet, BTreeSet<String>)>>>,
}

impl<'l> Verifier<'l> {
    /// A verifier over `loader` with no shared caches.
    pub fn new(loader: &'l dyn Loader) -> Verifier<'l> {
        Verifier {
            loader,
            parse_cache: None,
            shared_facts: None,
            local_facts: FactsCache::new(),
            module_findings: Mutex::new(HashMap::new()),
            validator_findings: Mutex::new(HashMap::new()),
            facts_by_path: Mutex::new(HashMap::new()),
            schema_sets: Mutex::new(HashMap::new()),
        }
    }

    /// Shares parsed ASTs with the compiler's [`ParseCache`].
    pub fn with_parse_cache(mut self, cache: &'l ParseCache) -> Verifier<'l> {
        self.parse_cache = Some(cache);
        self
    }

    /// Shares extracted module facts across verifier instances (plans).
    pub fn with_facts_cache(mut self, facts: &'l FactsCache) -> Verifier<'l> {
        self.shared_facts = Some(facts);
        self
    }

    fn facts_for(&self, path: &str) -> Option<Arc<ModuleFacts>> {
        if let Some(memo) = self.facts_by_path.lock().unwrap().get(path) {
            return memo.clone();
        }
        let facts = self.loader.load(path).and_then(|src| {
            self.shared_facts.unwrap_or(&self.local_facts).get_or_build(
                &src,
                path,
                self.parse_cache,
            )
        });
        self.facts_by_path
            .lock()
            .unwrap()
            .insert(path.to_string(), facts.clone());
        facts
    }

    /// Verifies a set of entry configs, returning the merged report.
    pub fn verify(&self, entries: &[String]) -> VerifyReport {
        let mut findings: BTreeSet<Finding> = BTreeSet::new();
        for entry in entries {
            self.verify_entry(entry, &mut findings);
        }
        let hints = findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .filter_map(repair_hint)
            .collect();
        VerifyReport::from_findings(findings, hints)
    }

    fn verify_entry(&self, entry: &str, findings: &mut BTreeSet<Finding>) {
        // Walk the import closure breadth-first. Unparseable or missing
        // modules are skipped silently: the compiler reports those itself.
        let Some(entry_facts) = self.facts_for(entry) else {
            return;
        };
        let mut closure: BTreeMap<String, Arc<ModuleFacts>> = BTreeMap::new();
        closure.insert(entry.to_string(), entry_facts.clone());
        let mut queue: Vec<String> = entry_facts.imports.iter().map(|(p, _)| p.clone()).collect();
        while let Some(path) = queue.pop() {
            if closure.contains_key(&path) {
                continue;
            }
            if let Some(f) = self.facts_for(&path) {
                queue.extend(f.imports.iter().map(|(p, _)| p.clone()));
                closure.insert(path, f);
            }
        }

        // Gather the schema set visible anywhere in the closure (schema
        // statements register globally in the interpreter). Assembly is
        // memoized on the sorted path list: fan-in corpora share a
        // handful of schemas across hundreds of entries.
        let mut schema_paths: BTreeSet<String> = BTreeSet::new();
        for facts in closure.values() {
            for (spath, _) in &facts.schemas {
                schema_paths.insert(spath.clone());
            }
        }
        let set_key: String = schema_paths
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join("\n");
        let memo = self.schema_sets.lock().unwrap().get(&set_key).cloned();
        let assembled = match memo {
            Some(a) => a,
            None => {
                let mut schemas = SchemaSet::new();
                let mut type_names: BTreeSet<String> = BTreeSet::new();
                for spath in &schema_paths {
                    let Some(src) = self.loader.load(spath) else {
                        continue;
                    };
                    let defs = match self.parse_cache {
                        Some(c) => c.schema(&src, spath).ok(),
                        None => parse_schema(&src, spath).ok().map(Arc::new),
                    };
                    if let Some(defs) = defs {
                        type_names.extend(defs.iter().map(|d| d.name().to_string()));
                        let _ = schemas.load_defs(&defs[..], spath);
                    }
                }
                let a = Arc::new((schemas, type_names));
                self.schema_sets.lock().unwrap().insert(set_key, a.clone());
                a
            }
        };
        let (schemas, type_names) = (&assembled.0, &assembled.1);

        // Per-module context checks (memoized per path for the session).
        for (path, facts) in &closure {
            let memo = self.module_findings.lock().unwrap().get(path).cloned();
            let module_findings = match memo {
                Some(f) => f,
                None => {
                    let f = Arc::new(self.check_module(path, facts, &closure, schemas, type_names));
                    self.module_findings
                        .lock()
                        .unwrap()
                        .insert(path.clone(), f.clone());
                    f
                }
            };
            findings.extend(module_findings.iter().cloned());
        }

        // Entry-level symbolic walk: exports, dead arms, env-aware lits.
        let mut walker = EntryWalker {
            schemas,
            path: entry,
            findings,
        };
        let mut env: BTreeMap<String, Abs> = BTreeMap::new();
        walker.walk_stmts(&entry_facts.module.stmts, &mut env);

        // Validator checks for every schema in the closure.
        for spath in &schema_paths {
            let vpath = validator_path(spath);
            let memo = self.validator_findings.lock().unwrap().get(&vpath).cloned();
            let vfindings = match memo {
                Some(f) => f,
                None => {
                    let f = Arc::new(self.check_validator(&vpath, type_names));
                    self.validator_findings
                        .lock()
                        .unwrap()
                        .insert(vpath.clone(), f.clone());
                    f
                }
            };
            findings.extend(vfindings.iter().cloned());
        }
    }

    /// Context-dependent checks for one module: unbound names,
    /// import-order sensitivity, unused imports, struct literals.
    fn check_module(
        &self,
        path: &str,
        facts: &ModuleFacts,
        closure: &BTreeMap<String, Arc<ModuleFacts>>,
        schemas: &SchemaSet,
        type_names: &BTreeSet<String>,
    ) -> Vec<Finding> {
        let mut out = Vec::new();

        // Transitive import closure of this module, as shared facts. A
        // name is visible if bound here, by any transitively imported
        // module, by a schema type name (enum attribute base), or by a
        // builtin. Free refs are deduplicated and few, so membership is
        // probed per reference against the per-module binding sets rather
        // than materializing one merged set — the merged set made this the
        // hottest allocation in the warm verify pass (a wide shared module
        // re-hashed hundreds of binding names for every rippled entry).
        let mut trans: Vec<&Arc<ModuleFacts>> = Vec::new();
        let mut stack: Vec<&str> = facts.imports.iter().map(|(p, _)| p.as_str()).collect();
        let mut visited: HashSet<&str> = HashSet::new();
        while let Some(ipath) = stack.pop() {
            if !visited.insert(ipath) {
                continue;
            }
            if let Some(ifacts) = closure.get(ipath) {
                trans.push(ifacts);
                stack.extend(ifacts.imports.iter().map(|(p, _)| p.as_str()));
            }
        }

        let mut used_imports: HashSet<&str> = HashSet::new();
        for (name, line) in &facts.free_refs {
            // Direct imports binding this name: used-import tracking plus
            // the import-order determinacy warning on multiple providers.
            let mut providers = 0usize;
            for (ipath, _) in &facts.imports {
                if closure
                    .get(ipath)
                    .is_some_and(|f| f.bindings.contains(name))
                {
                    providers += 1;
                    used_imports.insert(ipath.as_str());
                }
            }
            if providers >= 2 {
                out.push(Finding {
                    path: path.to_string(),
                    line: *line,
                    check: check::DETERMINACY,
                    severity: Severity::Warning,
                    message: format!(
                        "name '{name}' is bound by {providers} imports; its value depends on import order"
                    ),
                });
            }
            let visible = facts.bindings.contains(name)
                || trans.iter().any(|f| f.bindings.contains(name))
                || type_names.contains(name)
                || BUILTINS.contains(&name.as_str());
            if !visible {
                out.push(Finding {
                    path: path.to_string(),
                    line: *line,
                    check: check::DETERMINACY,
                    severity: Severity::Error,
                    message: format!("name '{name}' is not defined in any reachable scope"),
                });
            }
        }

        for (ipath, iline) in &facts.imports {
            if used_imports.contains(ipath.as_str()) {
                continue;
            }
            // An import can still matter for side effects: schema decls or
            // further imports of its own.
            let side_effects = closure
                .get(ipath)
                .map(|f| !f.schemas.is_empty() || !f.imports.is_empty())
                .unwrap_or(true);
            if !side_effects {
                out.push(Finding {
                    path: path.to_string(),
                    line: *iline,
                    check: check::REACHABILITY,
                    severity: Severity::Warning,
                    message: format!("import \"{ipath}\" contributes no used binding"),
                });
            }
        }

        // Missing import sources are definite compile failures for every
        // dependent — the classic dependency break.
        for (ipath, iline) in &facts.imports {
            if !closure.contains_key(ipath.as_str()) && self.loader.load(ipath).is_none() {
                out.push(Finding {
                    path: path.to_string(),
                    line: *iline,
                    check: check::REACHABILITY,
                    severity: Severity::Error,
                    message: format!("import \"{ipath}\": source not found"),
                });
            }
        }

        for lit in &facts.struct_lits {
            let fields: Vec<(String, Abs)> = lit
                .fields
                .iter()
                .map(|(n, v)| (n.clone(), v.clone().map(Abs::Known).unwrap_or(Abs::Unknown)))
                .collect();
            check_struct_lit(schemas, path, &lit.name, lit.line, &fields, &mut out);
        }
        out
    }

    /// Totality/determinacy checks for one `.cvalidator` file (if present).
    fn check_validator(&self, vpath: &str, type_names: &BTreeSet<String>) -> Vec<Finding> {
        let Some(facts) = self.facts_for(vpath) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut validate: Option<&Arc<FuncDef>> = None;
        let mut validate_line = 1;
        for stmt in &facts.module.stmts {
            if let StmtKind::Def(def) = &stmt.kind {
                if def.name == "validate" {
                    validate = Some(def);
                    validate_line = stmt.line;
                }
            }
        }
        match validate {
            None => out.push(Finding {
                path: vpath.to_string(),
                line: 1,
                check: check::TOTALITY,
                severity: Severity::Error,
                message: "validator defines no validate() function".to_string(),
            }),
            Some(def) => {
                if def.params.is_empty() {
                    out.push(Finding {
                        path: vpath.to_string(),
                        line: validate_line,
                        check: check::TOTALITY,
                        severity: Severity::Error,
                        message: "validate() takes no parameters; it can never see the config"
                            .to_string(),
                    });
                } else if !validator_is_total(def) {
                    out.push(Finding {
                        path: vpath.to_string(),
                        line: validate_line,
                        check: check::TOTALITY,
                        severity: Severity::Error,
                        message: "validate() can complete without evaluating any require()/fail() \
                             — a partial validator silently passes bad configs"
                            .to_string(),
                    });
                }
            }
        }
        // Unbound names inside the validator module itself.
        let import_bindings: BTreeSet<String> = facts
            .imports
            .iter()
            .filter_map(|(p, _)| self.facts_for(p))
            .flat_map(|f| f.bindings.iter().cloned().collect::<Vec<_>>())
            .collect();
        let mut visible: HashSet<&str> = facts.bindings.iter().map(String::as_str).collect();
        visible.extend(import_bindings.iter().map(String::as_str));
        visible.extend(type_names.iter().map(String::as_str));
        visible.extend(BUILTINS.iter().copied());
        for (name, line) in &facts.free_refs {
            if !visible.contains(name.as_str()) {
                out.push(Finding {
                    path: vpath.to_string(),
                    line: *line,
                    check: check::DETERMINACY,
                    severity: Severity::Error,
                    message: format!("name '{name}' is not defined in any reachable scope"),
                });
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Checks one struct literal against the schema set, mirroring the
/// interpreter's `build_struct`/`coerce` exactly (Unknown always passes).
fn check_struct_lit(
    schemas: &SchemaSet,
    path: &str,
    name: &str,
    line: u32,
    fields: &[(String, Abs)],
    out: &mut Vec<Finding>,
) {
    let err = |line: u32, check: &'static str, message: String| Finding {
        path: path.to_string(),
        line,
        check,
        severity: Severity::Error,
        message,
    };
    let def = match schemas.get(name) {
        Some(TypeDef::Struct(s)) => s.clone(),
        Some(TypeDef::Enum(_)) => {
            out.push(err(
                line,
                check::SCHEMA_TYPE,
                format!("{name} is an enum, not a struct"),
            ));
            return;
        }
        // Schema sets are gathered per-entry; a literal whose type is not
        // declared anywhere reachable fails at runtime, but only if it
        // executes — stay silent to preserve zero false positives.
        None => return,
    };
    for (fname, _) in fields {
        if !def.fields.iter().any(|f| f.name == *fname) {
            out.push(err(
                line,
                check::SCHEMA_TYPE,
                format!("struct {name} has no field {fname}"),
            ));
        }
    }
    for fdef in &def.fields {
        let provided = fields.iter().find(|(n, _)| *n == fdef.name);
        match provided {
            None => {
                if fdef.default.is_none() && !fdef.optional {
                    out.push(err(
                        line,
                        check::SCHEMA_TYPE,
                        format!("missing required field {} of struct {name}", fdef.name),
                    ));
                }
            }
            Some((_, abs)) => {
                if let Some(msg) = check_abs_type(abs, &fdef.ty, schemas) {
                    out.push(err(
                        line,
                        check::SCHEMA_TYPE,
                        format!("field {name}.{}: {msg}", fdef.name),
                    ));
                }
                // Constant-fold lints: ports and required lists.
                if let Abs::Known(Value::Int(p)) = abs {
                    let is_port = matches!(&fdef.ty, Type::I32 | Type::I64)
                        && (fdef.name == "port" || fdef.name.ends_with("_port"));
                    if is_port && !(1..=65535).contains(p) {
                        out.push(err(
                            line,
                            check::CONST_FOLD,
                            format!("field {name}.{}: port {p} outside 1..=65535", fdef.name),
                        ));
                    }
                }
                if let Abs::Known(Value::List(items)) = abs {
                    if items.is_empty()
                        && matches!(&fdef.ty, Type::List(_))
                        && !fdef.optional
                        && fdef.default.is_none()
                    {
                        out.push(err(
                            line,
                            check::CONST_FOLD,
                            format!("field {name}.{}: required list is empty", fdef.name),
                        ));
                    }
                }
            }
        }
    }
}

/// Type-compat check for an abstract value, mirroring `coerce`. Returns a
/// message when the interpreter would provably reject the value.
fn check_abs_type(abs: &Abs, ty: &Type, schemas: &SchemaSet) -> Option<String> {
    match abs {
        Abs::Unknown => None,
        Abs::Struct { name, .. } => match ty {
            Type::Named(tname) => match schemas.get(tname) {
                Some(TypeDef::Struct(_)) if name == tname => None,
                Some(TypeDef::Struct(_)) => {
                    Some(format!("expected {}, found struct {name}", ty.render()))
                }
                _ => None,
            },
            _ => Some(format!("expected {}, found struct {name}", ty.render())),
        },
        Abs::Known(v) => check_value_type(v, ty, schemas),
    }
}

fn check_value_type(v: &Value, ty: &Type, schemas: &SchemaSet) -> Option<String> {
    let mismatch = || Some(format!("expected {}, found {}", ty.render(), v.type_name()));
    match (ty, v) {
        (Type::Bool, Value::Bool(_)) => None,
        (Type::I32, Value::Int(i)) => {
            if i32::try_from(*i).is_ok() {
                None
            } else {
                Some(format!("{i} out of range for i32"))
            }
        }
        (Type::I64, Value::Int(_)) => None,
        (Type::Double, Value::Int(_) | Value::Float(_)) => None,
        (Type::String, Value::Str(_)) => None,
        (Type::List(inner), Value::List(items)) => items
            .iter()
            .find_map(|item| check_value_type(item, inner, schemas)),
        (Type::Map(inner), Value::Dict(map)) => map
            .values()
            .find_map(|item| check_value_type(item, inner, schemas)),
        (Type::Named(tname), v) => match schemas.get(tname) {
            Some(TypeDef::Enum(e)) => match v {
                Value::Enum(ev) if ev.enum_name == *tname => None,
                Value::Str(s) => {
                    if e.variant(s).is_some() {
                        None
                    } else {
                        Some(format!("enum {tname} has no variant {s}"))
                    }
                }
                _ => mismatch(),
            },
            Some(TypeDef::Struct(_)) => match v {
                Value::Struct(sv) if sv.type_name == *tname => None,
                _ => mismatch(),
            },
            None => None,
        },
        _ => mismatch(),
    }
}

/// Flow-sensitive symbolic walk of an entry module's top-level code:
/// tracks an abstract environment, checks struct literals with
/// environment knowledge, and flags dead `export_if_last` arms.
struct EntryWalker<'a> {
    schemas: &'a SchemaSet,
    path: &'a str,
    findings: &'a mut BTreeSet<Finding>,
}

impl EntryWalker<'_> {
    fn walk_stmts(&mut self, stmts: &[Stmt], env: &mut BTreeMap<String, Abs>) {
        for stmt in stmts {
            match &stmt.kind {
                StmtKind::Assign { name, value } => {
                    let abs = self.eval(value, env);
                    env.insert(name.clone(), abs);
                }
                StmtKind::Expr(e) => {
                    self.eval(e, env);
                }
                StmtKind::If {
                    cond,
                    then,
                    otherwise,
                } => {
                    let c = self.eval(cond, env);
                    match c {
                        Abs::Known(v) => {
                            let (live, dead) = if v.truthy() {
                                (then, otherwise)
                            } else {
                                (otherwise, then)
                            };
                            self.flag_dead_exports(dead);
                            self.walk_stmts(live, env);
                        }
                        _ => {
                            let mut then_env = env.clone();
                            let mut else_env = env.clone();
                            self.walk_stmts(then, &mut then_env);
                            self.walk_stmts(otherwise, &mut else_env);
                            let keys: BTreeSet<String> =
                                then_env.keys().chain(else_env.keys()).cloned().collect();
                            env.clear();
                            for k in keys {
                                let t = then_env.remove(&k).unwrap_or(Abs::Unknown);
                                let e = else_env.remove(&k).unwrap_or(Abs::Unknown);
                                env.insert(k, t.join(e));
                            }
                        }
                    }
                }
                StmtKind::For { var, iter, body } => {
                    self.eval(iter, env);
                    let mut assigned = BTreeSet::new();
                    assigned.insert(var.clone());
                    collect_bindings(body, &mut assigned);
                    let mut scratch = env.clone();
                    for name in &assigned {
                        scratch.insert(name.clone(), Abs::Unknown);
                    }
                    self.walk_stmts(body, &mut scratch);
                    for name in assigned {
                        env.insert(name, Abs::Unknown);
                    }
                }
                // Function bodies are covered by the context-free pass.
                _ => {}
            }
        }
    }

    /// Structurally finds `export_if_last` calls in a dead branch.
    fn flag_dead_exports(&mut self, stmts: &[Stmt]) {
        let mut lines = Vec::new();
        scan_export_lines_stmts(stmts, &mut lines);
        for line in lines {
            self.findings.insert(Finding {
                path: self.path.to_string(),
                line,
                check: check::REACHABILITY,
                severity: Severity::Error,
                message: "export_if_last arm is unreachable (its condition is constant)"
                    .to_string(),
            });
        }
    }

    fn eval(&mut self, e: &Expr, env: &BTreeMap<String, Abs>) -> Abs {
        match &e.kind {
            ExprKind::Null => Abs::Known(Value::Null),
            ExprKind::Bool(b) => Abs::Known(Value::Bool(*b)),
            ExprKind::Int(i) => Abs::Known(Value::Int(*i)),
            ExprKind::Float(f) => Abs::Known(Value::Float(*f)),
            ExprKind::Str(s) => Abs::Known(Value::str(s.clone())),
            ExprKind::Name(n) => env.get(n).cloned().unwrap_or(Abs::Unknown),
            ExprKind::List(items) => {
                let abs: Vec<Abs> = items.iter().map(|i| self.eval(i, env)).collect();
                let known: Option<Vec<Value>> = abs
                    .iter()
                    .map(|a| match a {
                        Abs::Known(v) => Some(v.clone()),
                        _ => None,
                    })
                    .collect();
                known
                    .map(|v| Abs::Known(Value::list(v)))
                    .unwrap_or(Abs::Unknown)
            }
            ExprKind::Dict(pairs) => {
                let mut map = BTreeMap::new();
                for (k, v) in pairs {
                    let k = self.eval(k, env);
                    let v = self.eval(v, env);
                    match (k, v) {
                        (Abs::Known(Value::Str(ks)), Abs::Known(vv)) => {
                            map.insert(ks.to_string(), vv);
                        }
                        _ => return Abs::Unknown,
                    }
                }
                Abs::Known(Value::dict(map))
            }
            ExprKind::Struct { name, fields } => {
                let abs_fields: Vec<(String, Abs)> = fields
                    .iter()
                    .map(|(n, v)| (n.clone(), self.eval(v, env)))
                    .collect();
                let mut found = Vec::new();
                check_struct_lit(
                    self.schemas,
                    self.path,
                    name,
                    e.line,
                    &abs_fields,
                    &mut found,
                );
                self.findings.extend(found);
                Abs::Struct {
                    name: name.clone(),
                    fields: abs_fields,
                }
            }
            ExprKind::Bin(op, l, r) => {
                let l = self.eval(l, env);
                if matches!(op, BinOp::And | BinOp::Or) {
                    let r = self.eval(r, env);
                    return match (op, &l) {
                        (BinOp::And, Abs::Known(v)) => {
                            if v.truthy() {
                                r
                            } else {
                                l
                            }
                        }
                        (BinOp::Or, Abs::Known(v)) => {
                            if v.truthy() {
                                l
                            } else {
                                r
                            }
                        }
                        _ => Abs::Unknown,
                    };
                }
                let r = self.eval(r, env);
                match (l, r) {
                    (Abs::Known(a), Abs::Known(b)) => fold_bin(*op, &a, &b)
                        .map(Abs::Known)
                        .unwrap_or(Abs::Unknown),
                    _ => Abs::Unknown,
                }
            }
            ExprKind::Un(op, v) => match self.eval(v, env) {
                Abs::Known(v) => fold_un(*op, &v).map(Abs::Known).unwrap_or(Abs::Unknown),
                _ => Abs::Unknown,
            },
            ExprKind::Call {
                callee,
                args,
                kwargs,
            } => {
                for a in args {
                    self.eval(a, env);
                }
                for (_, a) in kwargs {
                    self.eval(a, env);
                }
                if !matches!(&callee.kind, ExprKind::Name(_)) {
                    self.eval(callee, env);
                }
                Abs::Unknown
            }
            ExprKind::Index(b, i) => {
                let b = self.eval(b, env);
                let i = self.eval(i, env);
                match (b, i) {
                    (Abs::Known(Value::List(items)), Abs::Known(Value::Int(idx))) => {
                        let len = items.len() as i64;
                        let idx = if idx < 0 { idx + len } else { idx };
                        if idx >= 0 && idx < len {
                            Abs::Known(items[idx as usize].clone())
                        } else {
                            Abs::Unknown
                        }
                    }
                    (Abs::Known(Value::Dict(map)), Abs::Known(Value::Str(k))) => map
                        .get(&*k)
                        .map(|v| Abs::Known(v.clone()))
                        .unwrap_or(Abs::Unknown),
                    _ => Abs::Unknown,
                }
            }
            ExprKind::Attr(base, attr) => {
                let b = self.eval(base, env);
                match b {
                    Abs::Struct { fields, .. } => fields
                        .iter()
                        .find(|(n, _)| n == attr)
                        .map(|(_, v)| v.clone())
                        .unwrap_or(Abs::Unknown),
                    Abs::Known(Value::Struct(sv)) => sv
                        .get(attr)
                        .map(|v| Abs::Known(v.clone()))
                        .unwrap_or(Abs::Unknown),
                    _ => Abs::Unknown,
                }
            }
            ExprKind::Cond {
                then,
                cond,
                otherwise,
            } => match self.eval(cond, env) {
                Abs::Known(c) => {
                    if c.truthy() {
                        self.eval(then, env)
                    } else {
                        self.eval(otherwise, env)
                    }
                }
                _ => {
                    let t = self.eval(then, env);
                    let o = self.eval(otherwise, env);
                    t.join(o)
                }
            },
        }
    }
}

fn scan_export_lines_stmts(stmts: &[Stmt], out: &mut Vec<u32>) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Assign { value, .. } => scan_export_lines_expr(value, out),
            StmtKind::Expr(e) => scan_export_lines_expr(e, out),
            StmtKind::Return(Some(e)) => scan_export_lines_expr(e, out),
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                scan_export_lines_expr(cond, out);
                scan_export_lines_stmts(then, out);
                scan_export_lines_stmts(otherwise, out);
            }
            StmtKind::For { iter, body, .. } => {
                scan_export_lines_expr(iter, out);
                scan_export_lines_stmts(body, out);
            }
            _ => {}
        }
    }
}

fn scan_export_lines_expr(e: &Expr, out: &mut Vec<u32>) {
    match &e.kind {
        ExprKind::Call {
            callee,
            args,
            kwargs,
        } => {
            if matches!(&callee.kind, ExprKind::Name(n) if n == "export_if_last") {
                out.push(e.line);
            }
            scan_export_lines_expr(callee, out);
            args.iter().for_each(|a| scan_export_lines_expr(a, out));
            kwargs
                .iter()
                .for_each(|(_, a)| scan_export_lines_expr(a, out));
        }
        ExprKind::List(items) => items.iter().for_each(|i| scan_export_lines_expr(i, out)),
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                scan_export_lines_expr(k, out);
                scan_export_lines_expr(v, out);
            }
        }
        ExprKind::Struct { fields, .. } => fields
            .iter()
            .for_each(|(_, v)| scan_export_lines_expr(v, out)),
        ExprKind::Bin(_, l, r) => {
            scan_export_lines_expr(l, out);
            scan_export_lines_expr(r, out);
        }
        ExprKind::Un(_, v) => scan_export_lines_expr(v, out),
        ExprKind::Index(b, i) => {
            scan_export_lines_expr(b, out);
            scan_export_lines_expr(i, out);
        }
        ExprKind::Attr(b, _) => scan_export_lines_expr(b, out),
        ExprKind::Cond {
            then,
            cond,
            otherwise,
        } => {
            scan_export_lines_expr(then, out);
            scan_export_lines_expr(cond, out);
            scan_export_lines_expr(otherwise, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn verify_tree(files: &[(&str, &str)], entries: &[&str]) -> VerifyReport {
        let tree: BTreeMap<String, String> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let verifier = Verifier::new(&tree);
        let entries: Vec<String> = entries.iter().map(|e| e.to_string()).collect();
        verifier.verify(&entries)
    }

    const SCHEMA: &str = "struct Job { 1: string name 2: i64 weight = 10 3: i32 port = 8080 }";
    const VALIDATOR: &str = "def validate(cfg):\n    require(cfg.weight >= 0, \"w\")\n";

    fn checks_of(report: &VerifyReport, severity: Severity) -> Vec<&'static str> {
        report
            .findings
            .iter()
            .filter(|f| f.severity == severity)
            .map(|f| f.check)
            .collect()
    }

    #[test]
    fn clean_entry_verifies_clean() {
        let report = verify_tree(
            &[
                ("schemas/job.schema", SCHEMA),
                ("schemas/job.cvalidator", VALIDATOR),
                (
                    "a.cconf",
                    "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"a\" })\n",
                ),
            ],
            &["a.cconf"],
        );
        assert!(!report.has_errors(), "{report}");
        assert_eq!(report.findings.len(), 0);
    }

    #[test]
    fn type_mismatch_in_unreached_branch_is_caught() {
        // The guard calls a function, so the interpreter's concrete run
        // takes only one arm — but the payload type is wrong regardless
        // of which arm runs, and the static scan sees it.
        let report = verify_tree(
            &[
                ("schemas/job.schema", SCHEMA),
                ("schemas/job.cvalidator", VALIDATOR),
                (
                    "m.cinc",
                    "def f(x):\n    return x + 1\n",
                ),
                (
                    "a.cconf",
                    "import \"m.cinc\"\nschema \"schemas/job.schema\"\nif f(1) > 99:\n    export_if_last(Job { name: 7 })\nexport_if_last(Job { name: \"ok\" })\n",
                ),
            ],
            &["a.cconf"],
        );
        assert!(checks_of(&report, Severity::Error).contains(&check::SCHEMA_TYPE));
    }

    #[test]
    fn constant_false_export_arm_is_dead() {
        let report = verify_tree(
            &[
                ("schemas/job.schema", SCHEMA),
                ("schemas/job.cvalidator", VALIDATOR),
                (
                    "a.cconf",
                    "schema \"schemas/job.schema\"\nif 1 > 2:\n    export_if_last(Job { name: \"dead\" })\nexport_if_last(Job { name: \"live\" })\n",
                ),
            ],
            &["a.cconf"],
        );
        let errors = checks_of(&report, Severity::Error);
        assert!(errors.contains(&check::REACHABILITY), "{report}");
    }

    #[test]
    fn partial_validator_is_rejected() {
        let report = verify_tree(
            &[
                ("schemas/job.schema", SCHEMA),
                (
                    "schemas/job.cvalidator",
                    "def validate(cfg):\n    if cfg.weight > 100:\n        fail(\"cap\")\n",
                ),
                (
                    "a.cconf",
                    "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"a\" })\n",
                ),
            ],
            &["a.cconf"],
        );
        assert!(checks_of(&report, Severity::Error).contains(&check::TOTALITY));
    }

    #[test]
    fn unbound_name_yields_determinacy_error_and_repair_hint() {
        let report = verify_tree(
            &[
                ("schemas/job.schema", SCHEMA),
                ("schemas/job.cvalidator", VALIDATOR),
                (
                    "a.cconf",
                    "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"a\", weight: MISSING })\n",
                ),
            ],
            &["a.cconf"],
        );
        assert!(checks_of(&report, Severity::Error).contains(&check::DETERMINACY));
        assert!(
            report.hints.iter().any(|h| h.contains("MISSING")),
            "expected a repair hint naming the unbound binding: {report}"
        );
    }

    #[test]
    fn constant_out_of_range_port_folds_to_an_error() {
        let report = verify_tree(
            &[
                ("schemas/job.schema", SCHEMA),
                ("schemas/job.cvalidator", VALIDATOR),
                (
                    "a.cconf",
                    "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"a\", port: 70000 })\n",
                ),
            ],
            &["a.cconf"],
        );
        assert!(checks_of(&report, Severity::Error).contains(&check::CONST_FOLD));
    }

    #[test]
    fn unused_import_is_a_warning_not_a_rejection() {
        let report = verify_tree(
            &[
                ("schemas/job.schema", SCHEMA),
                ("schemas/job.cvalidator", VALIDATOR),
                ("m.cinc", "M_UNUSED = 1\n"),
                (
                    "a.cconf",
                    "import \"m.cinc\"\nschema \"schemas/job.schema\"\nexport_if_last(Job { name: \"a\" })\n",
                ),
            ],
            &["a.cconf"],
        );
        assert!(!report.has_errors(), "{report}");
        assert!(checks_of(&report, Severity::Warning).contains(&check::REACHABILITY));
    }

    #[test]
    fn findings_are_sorted_and_the_report_renders_stably() {
        let files = [
            ("schemas/job.schema", SCHEMA),
            ("schemas/job.cvalidator", VALIDATOR),
            (
                "b.cconf",
                "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"b\", weight: GONE })\n",
            ),
            (
                "a.cconf",
                "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"a\", port: 99999 })\n",
            ),
        ];
        let r1 = verify_tree(&files, &["b.cconf", "a.cconf"]);
        let r2 = verify_tree(&files, &["b.cconf", "a.cconf"]);
        assert_eq!(format!("{r1}"), format!("{r2}"));
        let paths: Vec<&str> = r1.findings.iter().map(|f| f.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted, "findings must come out path-sorted");
    }

    #[test]
    fn abs_join_keeps_equal_values_and_widens_unequal_ones() {
        let k1 = Abs::Known(Value::Int(1));
        assert!(matches!(
            k1.clone().join(Abs::Known(Value::Int(1))),
            Abs::Known(_)
        ));
        assert!(matches!(k1.join(Abs::Known(Value::Int(2))), Abs::Unknown));
    }
}
