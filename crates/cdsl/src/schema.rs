//! Thrift-style config schemas.
//!
//! The paper defines each config's data schema "in the platform-independent
//! Thrift language" (§3.1, Figure 2). CDSL schema files use a Thrift-like
//! syntax:
//!
//! ```text
//! enum JobKind {
//!   BATCH = 0
//!   SERVICE = 1
//! }
//!
//! struct Job {
//!   1: string name
//!   2: optional i64 memory_mb = 1024
//!   3: list<i64> ports
//!   4: map<string, string> labels
//!   5: JobKind kind = BATCH
//! }
//! ```
//!
//! Struct construction in config programs is checked against the schema:
//! unknown fields and type mismatches are compile errors, defaults are
//! filled in, and missing required fields are rejected — the first line of
//! defense against configuration errors (§3.3).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{CdslError, ErrorKind, Result};
use crate::value::{EnumValue, Value};

/// A field or container type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `bool`
    Bool,
    /// `i32`
    I32,
    /// `i64`
    I64,
    /// `double`
    Double,
    /// `string`
    String,
    /// `list<T>`
    List(Box<Type>),
    /// `map<string, T>` (keys are always strings, as in JSON)
    Map(Box<Type>),
    /// A struct or enum defined elsewhere in the schema set.
    Named(String),
}

impl Type {
    /// Renders the type in schema syntax.
    pub fn render(&self) -> String {
        match self {
            Type::Bool => "bool".into(),
            Type::I32 => "i32".into(),
            Type::I64 => "i64".into(),
            Type::Double => "double".into(),
            Type::String => "string".into(),
            Type::List(t) => format!("list<{}>", t.render()),
            Type::Map(t) => format!("map<string, {}>", t.render()),
            Type::Named(n) => n.clone(),
        }
    }
}

/// A struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Thrift-style field id.
    pub id: u32,
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Whether the field may be omitted (serializes as `null` if absent and
    /// without default).
    pub optional: bool,
    /// Default value, if declared.
    pub default: Option<Value>,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
}

/// An enum definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    /// Type name.
    pub name: String,
    /// Variants in declaration order: (name, number).
    pub variants: Vec<(String, i64)>,
}

impl EnumDef {
    /// Looks up a variant by name.
    pub fn variant(&self, name: &str) -> Option<Value> {
        self.variants
            .iter()
            .find(|(n, _)| n == name)
            .map(|(n, num)| {
                Value::Enum(Arc::new(EnumValue {
                    enum_name: self.name.clone(),
                    variant: n.clone(),
                    number: *num,
                }))
            })
    }
}

/// A named type definition.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeDef {
    /// A struct.
    Struct(StructDef),
    /// An enum.
    Enum(EnumDef),
}

impl TypeDef {
    /// The definition's type name.
    pub fn name(&self) -> &str {
        match self {
            TypeDef::Struct(s) => &s.name,
            TypeDef::Enum(e) => &e.name,
        }
    }
}

/// A set of type definitions accumulated from loaded schema files.
#[derive(Debug, Clone, Default)]
pub struct SchemaSet {
    types: BTreeMap<String, TypeDef>,
    /// Which schema file defined each type (drives validator discovery).
    origins: BTreeMap<String, String>,
}

impl SchemaSet {
    /// Creates an empty set.
    pub fn new() -> SchemaSet {
        SchemaSet::default()
    }

    /// Looks up a type by name.
    pub fn get(&self, name: &str) -> Option<&TypeDef> {
        self.types.get(name)
    }

    /// Looks up a struct definition by name.
    pub fn get_struct(&self, name: &str) -> Option<&StructDef> {
        match self.types.get(name) {
            Some(TypeDef::Struct(s)) => Some(s),
            _ => None,
        }
    }

    /// Looks up an enum definition by name.
    pub fn get_enum(&self, name: &str) -> Option<&EnumDef> {
        match self.types.get(name) {
            Some(TypeDef::Enum(e)) => Some(e),
            _ => None,
        }
    }

    /// Returns the schema file that defined `type_name`.
    pub fn origin(&self, type_name: &str) -> Option<&str> {
        self.origins.get(type_name).map(String::as_str)
    }

    /// Number of defined types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Returns whether no types are defined.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Parses the schema source at `path` and merges its definitions.
    /// Redefining an existing type with different content is an error;
    /// identical redefinition (the same file loaded twice) is a no-op.
    pub fn load(&mut self, src: &str, path: &str) -> Result<()> {
        let defs = parse_schema(src, path)?;
        self.load_defs(&defs, path)
    }

    /// Merges already-parsed definitions (e.g. from a
    /// [`crate::cache::ParseCache`]) under the same redefinition rules as
    /// [`SchemaSet::load`].
    pub fn load_defs(&mut self, defs: &[TypeDef], path: &str) -> Result<()> {
        for def in defs {
            let name = def.name().to_string();
            if let Some(existing) = self.types.get(&name) {
                if existing != def {
                    return Err(CdslError::new(
                        ErrorKind::Schema(format!("conflicting redefinition of type {name}")),
                        path,
                        0,
                    ));
                }
            } else {
                self.origins.insert(name.clone(), path.to_string());
                self.types.insert(name, def.clone());
            }
        }
        Ok(())
    }
}

/// Parses a schema file into its type definitions.
pub fn parse_schema(src: &str, path: &str) -> Result<Vec<TypeDef>> {
    let mut p = SchemaParser {
        toks: schema_lex(src, path)?,
        pos: 0,
        path,
    };
    let mut defs = Vec::new();
    while !p.at_eof() {
        defs.push(p.type_def()?);
    }
    Ok(defs)
}

#[derive(Debug, Clone, PartialEq)]
enum STok {
    Word(String),
    Int(i64),
    Str(String),
    LBrace,
    RBrace,
    Lt,
    Gt,
    Colon,
    Comma,
    Assign,
    Eof,
}

fn schema_lex(src: &str, path: &str) -> Result<Vec<(STok, u32)>> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(CdslError::new(
                        ErrorKind::Schema("unexpected '/'".into()),
                        path,
                        line,
                    ));
                }
            }
            '{' => {
                out.push((STok::LBrace, line));
                chars.next();
            }
            '}' => {
                out.push((STok::RBrace, line));
                chars.next();
            }
            '<' => {
                out.push((STok::Lt, line));
                chars.next();
            }
            '>' => {
                out.push((STok::Gt, line));
                chars.next();
            }
            ':' => {
                out.push((STok::Colon, line));
                chars.next();
            }
            ',' => {
                out.push((STok::Comma, line));
                chars.next();
            }
            ';' => {
                chars.next();
            }
            '=' => {
                out.push((STok::Assign, line));
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(c) if c != '\n' => s.push(c),
                        _ => {
                            return Err(CdslError::new(
                                ErrorKind::Schema("unterminated string".into()),
                                path,
                                line,
                            ))
                        }
                    }
                }
                out.push((STok::Str(s), line));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: i64 = s.parse().map_err(|_| {
                    CdslError::new(ErrorKind::Schema(format!("bad number: {s}")), path, line)
                })?;
                out.push((STok::Int(v), line));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((STok::Word(s), line));
            }
            other => {
                return Err(CdslError::new(
                    ErrorKind::Schema(format!("unexpected character: {other:?}")),
                    path,
                    line,
                ));
            }
        }
    }
    out.push((STok::Eof, line));
    Ok(out)
}

struct SchemaParser<'a> {
    toks: Vec<(STok, u32)>,
    pos: usize,
    path: &'a str,
}

impl SchemaParser<'_> {
    fn cur(&self) -> &STok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn at_eof(&self) -> bool {
        *self.cur() == STok::Eof
    }

    fn bump(&mut self) -> STok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CdslError {
        CdslError::new(ErrorKind::Schema(msg.into()), self.path, self.line())
    }

    fn word(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            STok::Word(s) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect(&mut self, t: STok, what: &str) -> Result<()> {
        if *self.cur() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.cur())))
        }
    }

    fn type_def(&mut self) -> Result<TypeDef> {
        match self.word("'struct' or 'enum'")?.as_str() {
            "struct" => self.struct_def().map(TypeDef::Struct),
            "enum" => self.enum_def().map(TypeDef::Enum),
            other => Err(self.err(format!("expected 'struct' or 'enum', found {other:?}"))),
        }
    }

    fn struct_def(&mut self) -> Result<StructDef> {
        let name = self.word("struct name")?;
        self.expect(STok::LBrace, "'{'")?;
        let mut fields: Vec<Field> = Vec::new();
        while *self.cur() != STok::RBrace {
            let id = match self.bump() {
                STok::Int(v) if v > 0 => v as u32,
                other => return Err(self.err(format!("expected field id, found {other:?}"))),
            };
            self.expect(STok::Colon, "':'")?;
            let mut optional = false;
            if matches!(self.cur(), STok::Word(w) if w == "optional") {
                optional = true;
                self.bump();
            }
            let ty = self.parse_type()?;
            let fname = self.word("field name")?;
            let default = if *self.cur() == STok::Assign {
                self.bump();
                Some(self.default_value(&ty)?)
            } else {
                None
            };
            if fields.iter().any(|f| f.name == fname) {
                return Err(self.err(format!("duplicate field name: {fname}")));
            }
            if fields.iter().any(|f| f.id == id) {
                return Err(self.err(format!("duplicate field id: {id}")));
            }
            fields.push(Field {
                id,
                name: fname,
                ty,
                optional,
                default,
            });
        }
        self.bump(); // `}`
        Ok(StructDef { name, fields })
    }

    fn enum_def(&mut self) -> Result<EnumDef> {
        let name = self.word("enum name")?;
        self.expect(STok::LBrace, "'{'")?;
        let mut variants: Vec<(String, i64)> = Vec::new();
        let mut next = 0i64;
        while *self.cur() != STok::RBrace {
            let vname = self.word("variant name")?;
            let number = if *self.cur() == STok::Assign {
                self.bump();
                match self.bump() {
                    STok::Int(v) => v,
                    other => {
                        return Err(self.err(format!("expected variant number, found {other:?}")))
                    }
                }
            } else {
                next
            };
            next = number + 1;
            if variants.iter().any(|(n, _)| *n == vname) {
                return Err(self.err(format!("duplicate variant: {vname}")));
            }
            variants.push((vname, number));
            if *self.cur() == STok::Comma {
                self.bump();
            }
        }
        self.bump(); // `}`
        if variants.is_empty() {
            return Err(self.err(format!("enum {name} has no variants")));
        }
        Ok(EnumDef { name, variants })
    }

    fn parse_type(&mut self) -> Result<Type> {
        let w = self.word("type")?;
        Ok(match w.as_str() {
            "bool" => Type::Bool,
            "i32" => Type::I32,
            "i64" => Type::I64,
            "double" => Type::Double,
            "string" => Type::String,
            "list" => {
                self.expect(STok::Lt, "'<'")?;
                let inner = self.parse_type()?;
                self.expect(STok::Gt, "'>'")?;
                Type::List(Box::new(inner))
            }
            "map" => {
                self.expect(STok::Lt, "'<'")?;
                let key = self.parse_type()?;
                if key != Type::String {
                    return Err(self.err("map keys must be strings (JSON compatibility)"));
                }
                self.expect(STok::Comma, "','")?;
                let val = self.parse_type()?;
                self.expect(STok::Gt, "'>'")?;
                Type::Map(Box::new(val))
            }
            other => Type::Named(other.to_string()),
        })
    }

    /// Parses a default value literal appropriate to `ty`. Enum defaults are
    /// written as a bare variant name and resolved at construction time.
    fn default_value(&mut self, ty: &Type) -> Result<Value> {
        match self.bump() {
            STok::Int(v) => match ty {
                Type::Double => Ok(Value::Float(v as f64)),
                Type::I32 | Type::I64 => Ok(Value::Int(v)),
                _ => Err(self.err("integer default on non-numeric field")),
            },
            STok::Str(s) => {
                if *ty == Type::String {
                    Ok(Value::str(s))
                } else {
                    Err(self.err("string default on non-string field"))
                }
            }
            STok::Word(w) if w == "true" => Ok(Value::Bool(true)),
            STok::Word(w) if w == "false" => Ok(Value::Bool(false)),
            STok::Word(w) => {
                // Enum variant name; stored as a string placeholder and
                // resolved against the enum when the struct is built.
                if matches!(ty, Type::Named(_)) {
                    Ok(Value::str(w))
                } else {
                    Err(self.err(format!("bad default: {w}")))
                }
            }
            other => Err(self.err(format!("bad default: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JOB: &str = r#"
        # The job schema from Figure 2.
        enum JobKind {
            BATCH = 0
            SERVICE = 1
        }
        struct Job {
            1: string name
            2: optional i64 memory_mb = 1024
            3: list<i64> ports
            4: map<string, string> labels
            5: JobKind kind = BATCH
        }
    "#;

    #[test]
    fn parses_figure2_style_schema() {
        let defs = parse_schema(JOB, "job.schema").unwrap();
        assert_eq!(defs.len(), 2);
        let TypeDef::Enum(e) = &defs[0] else { panic!() };
        assert_eq!(e.variants, vec![("BATCH".into(), 0), ("SERVICE".into(), 1)]);
        let TypeDef::Struct(s) = &defs[1] else {
            panic!()
        };
        assert_eq!(s.fields.len(), 5);
        assert_eq!(s.fields[1].default, Some(Value::Int(1024)));
        assert!(s.fields[1].optional);
        assert_eq!(s.fields[2].ty, Type::List(Box::new(Type::I64)));
        assert_eq!(s.fields[3].ty, Type::Map(Box::new(Type::String)));
        assert_eq!(s.fields[4].ty, Type::Named("JobKind".into()));
    }

    #[test]
    fn enum_auto_numbering() {
        let defs = parse_schema("enum E { A, B, C = 10, D }", "e").unwrap();
        let TypeDef::Enum(e) = &defs[0] else { panic!() };
        assert_eq!(
            e.variants,
            vec![
                ("A".into(), 0),
                ("B".into(), 1),
                ("C".into(), 10),
                ("D".into(), 11)
            ]
        );
    }

    #[test]
    fn duplicate_field_ids_and_names_rejected() {
        assert!(parse_schema("struct S { 1: i64 a 1: i64 b }", "s").is_err());
        assert!(parse_schema("struct S { 1: i64 a 2: i64 a }", "s").is_err());
    }

    #[test]
    fn non_string_map_keys_rejected() {
        assert!(parse_schema("struct S { 1: map<i64, string> m }", "s").is_err());
    }

    #[test]
    fn schema_set_conflicting_redefinition() {
        let mut set = SchemaSet::new();
        set.load("struct S { 1: i64 a }", "one.schema").unwrap();
        // Identical reload is fine.
        set.load("struct S { 1: i64 a }", "two.schema").unwrap();
        // Conflicting reload is not.
        assert!(set
            .load("struct S { 1: string a }", "three.schema")
            .is_err());
        assert_eq!(set.origin("S"), Some("one.schema"));
    }

    #[test]
    fn default_type_checking() {
        assert!(parse_schema("struct S { 1: i64 a = \"x\" }", "s").is_err());
        assert!(parse_schema("struct S { 1: string a = 3 }", "s").is_err());
        let ok = parse_schema("struct S { 1: double d = 3 }", "s").unwrap();
        let TypeDef::Struct(s) = &ok[0] else { panic!() };
        assert_eq!(s.fields[0].default, Some(Value::Float(3.0)));
    }

    #[test]
    fn comments_and_semicolons_tolerated() {
        let src = "// header\nstruct S {\n  1: i64 a;  # trailing\n}\n";
        assert!(parse_schema(src, "s").is_ok());
    }

    #[test]
    fn empty_enum_rejected() {
        assert!(parse_schema("enum E { }", "e").is_err());
    }
}
