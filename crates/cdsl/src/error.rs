//! Error types for the CDSL compiler and runtime.

use std::fmt;

/// Where an error occurred.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Location {
    /// Source path (empty for anonymous sources).
    pub path: String,
    /// 1-based line number (0 when unknown).
    pub line: u32,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "line {}", self.line)
        } else {
            write!(f, "{}:{}", self.path, self.line)
        }
    }
}

/// The category of a CDSL error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Tokenizer rejected the input.
    Lex(String),
    /// Parser rejected the token stream.
    Parse(String),
    /// Schema file was malformed.
    Schema(String),
    /// Struct construction or value usage violated the schema.
    Type(String),
    /// Evaluation failed (undefined name, bad operand, division by zero…).
    Eval(String),
    /// An `import`/`schema` target could not be loaded.
    MissingSource(String),
    /// Import cycle detected.
    ImportCycle(String),
    /// A validator's `require` failed.
    Validation(String),
    /// The entry file exported zero or more than one config.
    Export(String),
    /// Execution exceeded the step or recursion budget.
    Budget(String),
}

/// A CDSL error with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdslError {
    /// What went wrong.
    pub kind: ErrorKind,
    /// Where it went wrong.
    pub location: Location,
}

impl CdslError {
    /// Creates an error at a location.
    pub fn new(kind: ErrorKind, path: &str, line: u32) -> CdslError {
        CdslError {
            kind,
            location: Location {
                path: path.to_string(),
                line,
            },
        }
    }

    /// Creates an error with no useful location.
    pub fn nowhere(kind: ErrorKind) -> CdslError {
        CdslError {
            kind,
            location: Location::default(),
        }
    }

    /// Returns the error message without the location prefix.
    pub fn message(&self) -> &str {
        match &self.kind {
            ErrorKind::Lex(m)
            | ErrorKind::Parse(m)
            | ErrorKind::Schema(m)
            | ErrorKind::Type(m)
            | ErrorKind::Eval(m)
            | ErrorKind::MissingSource(m)
            | ErrorKind::ImportCycle(m)
            | ErrorKind::Validation(m)
            | ErrorKind::Export(m)
            | ErrorKind::Budget(m) => m,
        }
    }

    /// Returns whether this is a validation failure (as opposed to a
    /// programming error in the config source).
    pub fn is_validation(&self) -> bool {
        matches!(self.kind, ErrorKind::Validation(_))
    }
}

impl fmt::Display for CdslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self.kind {
            ErrorKind::Lex(_) => "lex error",
            ErrorKind::Parse(_) => "parse error",
            ErrorKind::Schema(_) => "schema error",
            ErrorKind::Type(_) => "type error",
            ErrorKind::Eval(_) => "eval error",
            ErrorKind::MissingSource(_) => "missing source",
            ErrorKind::ImportCycle(_) => "import cycle",
            ErrorKind::Validation(_) => "validation failed",
            ErrorKind::Export(_) => "export error",
            ErrorKind::Budget(_) => "budget exceeded",
        };
        write!(f, "{}: {} at {}", label, self.message(), self.location)
    }
}

impl std::error::Error for CdslError {}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CdslError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_kind() {
        let e = CdslError::new(ErrorKind::Parse("unexpected token".into()), "a.cconf", 3);
        let s = e.to_string();
        assert!(s.contains("parse error"));
        assert!(s.contains("a.cconf:3"));
        assert!(s.contains("unexpected token"));
    }

    #[test]
    fn validation_detection() {
        assert!(CdslError::nowhere(ErrorKind::Validation("x".into())).is_validation());
        assert!(!CdslError::nowhere(ErrorKind::Eval("x".into())).is_validation());
    }
}
