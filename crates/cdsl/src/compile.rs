//! The Configerator compiler: source → validated canonical JSON.
//!
//! Mirrors the paper's Figure 2 pipeline:
//!
//! 1. execute the entry config program (`.cconf`), which may import reusable
//!    modules (`.cinc`) and Thrift-style schemas;
//! 2. take the value passed to `export_if_last` as the compiled config;
//! 3. run every validator associated with the config's schema type — the
//!    compiler "automatically runs validators to verify invariants defined
//!    for configs" (§1); a failing validator fails the compile;
//! 4. emit canonical pretty JSON plus the dependency list extracted from the
//!    import graph.

use std::collections::BTreeMap;

use crate::cache::ParseCache;
use crate::error::{CdslError, ErrorKind, Result};
use crate::interp::{Interp, Limits, Loader};
use crate::value::Value;

/// Version of the compiler pipeline. Any change to compilation semantics
/// (language, schema handling, validator discovery, JSON emission) must
/// bump this: it is folded into incremental-compilation fingerprints so
/// stored artifacts from an older compiler are never reused.
pub const COMPILER_VERSION: u32 = 2;

/// The result of compiling one config program.
#[derive(Debug, Clone)]
pub struct CompiledConfig {
    /// Entry source path.
    pub path: String,
    /// Canonical pretty-printed JSON.
    pub json: String,
    /// The exported value.
    pub value: Value,
    /// Schema type of the exported value, when it is a struct.
    pub type_name: Option<String>,
    /// Every source path the config depends on (imports, schemas,
    /// validators), sorted. A change to any of these must trigger
    /// recompilation of this config.
    pub deps: Vec<String>,
    /// Validator files that ran (and passed).
    pub validators_run: Vec<String>,
    /// Paths the compiler probed but found absent (the conventional
    /// `<schema>.cvalidator` candidates). *Creating* one of these files
    /// must also trigger recompilation, even though it was never loaded.
    pub probed_absent: Vec<String>,
}

/// The CDSL compiler.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeMap;
/// use cdsl::compile::Compiler;
///
/// let mut files = BTreeMap::new();
/// files.insert(
///     "job.schema".to_string(),
///     "struct Job { 1: string name 2: i64 memory_mb = 1024 }".to_string(),
/// );
/// files.insert(
///     "job.cvalidator".to_string(),
///     "def validate(cfg):\n    require(cfg.memory_mb >= 64, \"too little memory\")\n"
///         .to_string(),
/// );
/// files.insert(
///     "cache_job.cconf".to_string(),
///     "schema \"job.schema\"\nexport_if_last(Job { name: \"cache\" })\n".to_string(),
/// );
///
/// let compiler = Compiler::new(&files);
/// let out = compiler.compile("cache_job.cconf").unwrap();
/// assert_eq!(out.type_name.as_deref(), Some("Job"));
/// assert!(out.json.contains("\"memory_mb\": 1024"));
/// assert_eq!(out.deps, vec!["job.cvalidator", "job.schema"]);
/// ```
pub struct Compiler<'l> {
    loader: &'l dyn Loader,
    cache: Option<&'l ParseCache>,
    limits: Limits,
    extra_validators: BTreeMap<String, Vec<String>>,
}

impl<'l> Compiler<'l> {
    /// Creates a compiler reading sources from `loader`.
    pub fn new(loader: &'l dyn Loader) -> Compiler<'l> {
        Compiler {
            loader,
            cache: None,
            limits: Limits::default(),
            extra_validators: BTreeMap::new(),
        }
    }

    /// Overrides the execution budgets.
    pub fn with_limits(mut self, limits: Limits) -> Compiler<'l> {
        self.limits = limits;
        self
    }

    /// Shares parsed ASTs through `cache`: every source is lexed and
    /// parsed at most once per content, across all entries compiled
    /// against the cache (and across successive compile batches).
    pub fn with_cache(mut self, cache: &'l ParseCache) -> Compiler<'l> {
        self.cache = Some(cache);
        self
    }

    /// Registers an additional validator file for configs of `type_name`,
    /// beyond the `<schema>.cvalidator` convention.
    pub fn register_validator(&mut self, type_name: &str, path: &str) {
        self.extra_validators
            .entry(type_name.to_string())
            .or_default()
            .push(path.to_string());
    }

    /// Compiles the config program at `entry`.
    pub fn compile(&self, entry: &str) -> Result<CompiledConfig> {
        let mut interp = Interp::new(self.loader, self.limits);
        if let Some(cache) = self.cache {
            interp = interp.with_parse_cache(cache);
        }
        interp.run_entry(entry)?;
        let value = interp.exported().cloned().ok_or_else(|| {
            CdslError::new(
                ErrorKind::Export(format!("{entry} exported no config")),
                entry,
                0,
            )
        })?;
        let type_name = match &value {
            Value::Struct(s) => Some(s.type_name.clone()),
            _ => None,
        };
        // Collect validators: the `<schema>.cvalidator` convention plus
        // explicit registrations for the exported type.
        let mut validators: Vec<String> = Vec::new();
        let mut probed_absent: Vec<String> = Vec::new();
        if let Some(tname) = &type_name {
            if let Some(origin) = interp.schemas().origin(tname) {
                let candidate = validator_path(origin);
                if self.loader.load(&candidate).is_some() {
                    validators.push(candidate);
                } else {
                    probed_absent.push(candidate);
                }
            }
            if let Some(extra) = self.extra_validators.get(tname) {
                for p in extra {
                    if !validators.contains(p) {
                        validators.push(p.clone());
                    }
                }
            }
        }
        let mut validators_run = Vec::new();
        for vpath in &validators {
            let module = interp.run_module(vpath)?;
            interp
                .call_global(module, "validate", std::slice::from_ref(&value))
                .map_err(|mut e| {
                    // Attribute validation failures to the validator file.
                    if e.location.path.is_empty() {
                        e.location.path = vpath.clone();
                    }
                    e
                })?;
            validators_run.push(vpath.clone());
        }
        let deps: Vec<String> = interp.deps().iter().cloned().collect();
        Ok(CompiledConfig {
            path: entry.to_string(),
            json: value.to_json_pretty(),
            value,
            type_name,
            deps,
            validators_run,
            probed_absent,
        })
    }
}

/// Maps a schema path to its conventional validator path:
/// `schemas/job.schema` → `schemas/job.cvalidator` (mirroring the paper's
/// `job.thrift` → `job.thrift-cvalidator` pairing).
pub fn validator_path(schema_path: &str) -> String {
    match schema_path.strip_suffix(".schema") {
        Some(stem) => format!("{stem}.cvalidator"),
        None => format!("{schema_path}.cvalidator"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(entries: &[(&str, &str)]) -> BTreeMap<String, String> {
        entries
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    const JOB_SCHEMA: &str = r#"
enum JobKind { BATCH = 0, SERVICE = 1 }
struct Job {
    1: string name
    2: optional i64 memory_mb = 1024
    3: list<i64> ports = 0
    4: JobKind kind = BATCH
}
"#;

    // Note: `ports = 0` above would be a schema bug; use a correct schema.
    const JOB_SCHEMA_OK: &str = r#"
enum JobKind { BATCH = 0, SERVICE = 1 }
struct Job {
    1: string name
    2: optional i64 memory_mb = 1024
    3: optional list<i64> ports
    4: JobKind kind = BATCH
}
"#;

    #[test]
    fn bad_schema_default_is_rejected_at_load() {
        let fs = files(&[
            ("job.schema", JOB_SCHEMA),
            (
                "main.cconf",
                "schema \"job.schema\"\nexport_if_last(Job { name: \"x\" })",
            ),
        ]);
        let e = Compiler::new(&fs).compile("main.cconf").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Schema(_)));
    }

    #[test]
    fn figure2_pipeline_end_to_end() {
        // The scheduler team provides the schema, the reusable module, and
        // the validator; the cache team writes a one-liner (§3.1).
        let fs = files(&[
            ("schemas/job.schema", JOB_SCHEMA_OK),
            (
                "schemas/job.cvalidator",
                r#"
def validate(cfg):
    require(len(cfg.name) > 0, "job name must be nonempty")
    require(cfg.memory_mb >= 64, "memory_mb too small")
"#,
            ),
            (
                "create_job.cinc",
                r#"
schema "schemas/job.schema"
def create_job(name, memory_mb=1024):
    return Job { name: name, memory_mb: memory_mb, kind: JobKind.SERVICE }
"#,
            ),
            (
                "cache_job.cconf",
                "import \"create_job.cinc\"\nexport_if_last(create_job(\"cache\"))",
            ),
        ]);
        let out = Compiler::new(&fs).compile("cache_job.cconf").unwrap();
        assert_eq!(out.type_name.as_deref(), Some("Job"));
        assert_eq!(out.validators_run, vec!["schemas/job.cvalidator"]);
        assert_eq!(
            out.deps,
            vec![
                "create_job.cinc",
                "schemas/job.cvalidator",
                "schemas/job.schema"
            ]
        );
        assert!(out.json.contains("\"name\": \"cache\""));
        assert!(out.json.contains("\"kind\": \"SERVICE\""));
    }

    #[test]
    fn failing_validator_fails_compile() {
        let fs = files(&[
            ("schemas/job.schema", JOB_SCHEMA_OK),
            (
                "schemas/job.cvalidator",
                "def validate(cfg):\n    require(cfg.memory_mb >= 64, \"memory_mb too small\")",
            ),
            (
                "tiny.cconf",
                "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"t\", memory_mb: 1 })",
            ),
        ]);
        let e = Compiler::new(&fs).compile("tiny.cconf").unwrap_err();
        assert!(e.is_validation());
        assert_eq!(e.message(), "memory_mb too small");
    }

    #[test]
    fn no_export_is_an_error() {
        let fs = files(&[("empty.cconf", "x = 1")]);
        let e = Compiler::new(&fs).compile("empty.cconf").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Export(_)));
    }

    #[test]
    fn registered_validator_runs_after_conventional_one() {
        let fs = files(&[
            ("schemas/job.schema", JOB_SCHEMA_OK),
            (
                "security.cvalidator",
                "def validate(cfg):\n    require(cfg.name != \"root\", \"name 'root' is reserved\")",
            ),
            (
                "bad.cconf",
                "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"root\" })",
            ),
        ]);
        let mut c = Compiler::new(&fs);
        c.register_validator("Job", "security.cvalidator");
        let e = c.compile("bad.cconf").unwrap_err();
        assert!(e.is_validation());
        assert!(e.message().contains("reserved"));
    }

    #[test]
    fn non_struct_exports_skip_validators() {
        let fs = files(&[("plain.cconf", "export_if_last({\"k\": 1})")]);
        let out = Compiler::new(&fs).compile("plain.cconf").unwrap();
        assert!(out.validators_run.is_empty());
        assert_eq!(out.type_name, None);
        assert!(out.deps.is_empty());
    }

    #[test]
    fn validator_appears_in_deps() {
        let fs = files(&[
            ("schemas/job.schema", JOB_SCHEMA_OK),
            (
                "schemas/job.cvalidator",
                "def validate(cfg):\n    require(true)",
            ),
            (
                "j.cconf",
                "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"x\" })",
            ),
        ]);
        let out = Compiler::new(&fs).compile("j.cconf").unwrap();
        assert!(out.deps.contains(&"schemas/job.cvalidator".to_string()));
    }

    #[test]
    fn validator_path_convention() {
        assert_eq!(validator_path("a/job.schema"), "a/job.cvalidator");
        assert_eq!(validator_path("weird.thrift"), "weird.thrift.cvalidator");
    }

    #[test]
    fn compile_is_deterministic() {
        let fs = files(&[
            ("schemas/job.schema", JOB_SCHEMA_OK),
            (
                "j.cconf",
                "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"x\", ports: [3, 1] })",
            ),
        ]);
        let a = Compiler::new(&fs).compile("j.cconf").unwrap();
        let b = Compiler::new(&fs).compile("j.cconf").unwrap();
        assert_eq!(a.json, b.json);
    }
}
