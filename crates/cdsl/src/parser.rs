//! Recursive-descent parser for CDSL.
//!
//! Grammar sketch (statements are newline-terminated, blocks are indented):
//!
//! ```text
//! module   := stmt*
//! stmt     := import | schema | def | return | if | for | assign | expr
//! import   := "import" STRING
//! schema   := "schema" STRING
//! def      := "def" IDENT "(" params ")" ":" block
//! if       := "if" expr ":" block ("elif" expr ":" block)* ("else" ":" block)?
//! for      := "for" IDENT "in" expr ":" block
//! assign   := IDENT "=" expr
//! expr     := ternary
//! ternary  := or ("if" or "else" ternary)?
//! or       := and ("or" and)*
//! and      := not ("and" not)*
//! not      := "not" not | cmp
//! cmp      := add (("=="|"!="|"<"|"<="|">"|">="|"in"|"not in") add)?
//! add      := mul (("+"|"-") mul)*
//! mul      := unary (("*"|"/"|"%") unary)*
//! unary    := "-" unary | postfix
//! postfix  := atom (call | index | attr)*
//! atom     := literal | name | struct | list | dict | "(" expr ")"
//! struct   := IDENT "{" (IDENT ":" expr),* "}"
//! ```

use crate::ast::{BinOp, Expr, ExprKind, FuncDef, Module, Param, Stmt, StmtKind, UnOp};
use crate::error::{CdslError, ErrorKind, Result};
use crate::lexer::{lex, Spanned, Tok};

/// Parses `src` (reporting errors against `path`) into a [`Module`].
pub fn parse(src: &str, path: &str) -> Result<Module> {
    let toks = lex(src, path)?;
    let mut p = Parser { toks, pos: 0, path };
    let mut stmts = Vec::new();
    while !p.at(&Tok::Eof) {
        stmts.push(p.stmt()?);
    }
    Ok(Module { stmts })
}

/// Parses a single expression (used by the Sitevars shim and tests).
pub fn parse_expr(src: &str, path: &str) -> Result<Expr> {
    let toks = lex(src, path)?;
    let mut p = Parser { toks, pos: 0, path };
    let e = p.expr()?;
    p.eat_newlines();
    if !p.at(&Tok::Eof) {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

/// Keyword arguments of a call: `(name, value)` pairs in written order.
type KwArgs = Vec<(String, Expr)>;

struct Parser<'a> {
    toks: Vec<Spanned>,
    pos: usize,
    path: &'a str,
}

impl Parser<'_> {
    fn cur(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn at(&self, t: &Tok) -> bool {
        self.cur() == t
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.cur(), Tok::Ident(s) if s == kw)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CdslError {
        CdslError::new(ErrorKind::Parse(msg.into()), self.path, self.line())
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.at(t) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.cur())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.cur().clone() {
            Tok::Ident(s) if !is_keyword(&s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String> {
        match self.cur().clone() {
            Tok::Str(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn eat_newlines(&mut self) {
        while self.at(&Tok::Newline) {
            self.bump();
        }
    }

    fn end_stmt(&mut self) -> Result<()> {
        if self.at(&Tok::Newline) {
            self.bump();
            Ok(())
        } else if self.at(&Tok::Eof) || self.at(&Tok::Dedent) {
            Ok(())
        } else {
            Err(self.err(format!("expected end of statement, found {:?}", self.cur())))
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        self.eat_newlines();
        let line = self.line();
        let kind = if self.at_kw("import") {
            self.bump();
            let path = self.expect_string("import path")?;
            self.end_stmt()?;
            StmtKind::Import(path)
        } else if self.at_kw("schema") {
            self.bump();
            let path = self.expect_string("schema path")?;
            self.end_stmt()?;
            StmtKind::Schema(path)
        } else if self.at_kw("def") {
            self.bump();
            let def = self.func_def()?;
            StmtKind::Def(std::sync::Arc::new(def))
        } else if self.at_kw("return") {
            self.bump();
            let value = if self.at(&Tok::Newline) || self.at(&Tok::Eof) || self.at(&Tok::Dedent) {
                None
            } else {
                Some(self.expr()?)
            };
            self.end_stmt()?;
            StmtKind::Return(value)
        } else if self.at_kw("if") {
            self.bump();
            self.if_stmt()?
        } else if self.at_kw("for") {
            self.bump();
            let var = self.expect_ident("loop variable")?;
            if !self.at_kw("in") {
                return Err(self.err("expected 'in' in for statement"));
            }
            self.bump();
            let iter = self.expr()?;
            self.expect(&Tok::Colon, "':'")?;
            let body = self.block()?;
            StmtKind::For { var, iter, body }
        } else if matches!(self.cur(), Tok::Ident(s) if !is_keyword(s))
            && self.toks.get(self.pos + 1).map(|s| &s.tok) == Some(&Tok::Assign)
        {
            let name = self.expect_ident("name")?;
            self.bump(); // `=`
            let value = self.expr()?;
            self.end_stmt()?;
            StmtKind::Assign { name, value }
        } else {
            let e = self.expr()?;
            self.end_stmt()?;
            StmtKind::Expr(e)
        };
        Ok(Stmt { line, kind })
    }

    fn if_stmt(&mut self) -> Result<StmtKind> {
        let cond = self.expr()?;
        self.expect(&Tok::Colon, "':'")?;
        let then = self.block()?;
        let otherwise = if self.at_kw("elif") {
            let line = self.line();
            self.bump();
            let inner = self.if_stmt()?;
            vec![Stmt { line, kind: inner }]
        } else if self.at_kw("else") {
            self.bump();
            self.expect(&Tok::Colon, "':'")?;
            self.block()?
        } else {
            Vec::new()
        };
        Ok(StmtKind::If {
            cond,
            then,
            otherwise,
        })
    }

    fn func_def(&mut self) -> Result<FuncDef> {
        let name = self.expect_ident("function name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        let mut seen_default = false;
        while !self.at(&Tok::RParen) {
            let pname = self.expect_ident("parameter name")?;
            let default = if self.at(&Tok::Assign) {
                self.bump();
                seen_default = true;
                Some(self.expr()?)
            } else {
                if seen_default {
                    return Err(self.err("parameter without default after one with default"));
                }
                None
            };
            params.push(Param {
                name: pname,
                default,
            });
            if self.at(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        self.expect(&Tok::Colon, "':'")?;
        let body = self.block()?;
        Ok(FuncDef { name, params, body })
    }

    /// Parses an indented block: NEWLINE INDENT stmt+ DEDENT.
    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&Tok::Newline, "newline before block")?;
        self.expect(&Tok::Indent, "indented block")?;
        let mut stmts = Vec::new();
        loop {
            self.eat_newlines();
            if self.at(&Tok::Dedent) {
                self.bump();
                break;
            }
            if self.at(&Tok::Eof) {
                return Err(self.err("unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        if stmts.is_empty() {
            return Err(self.err("empty block"));
        }
        Ok(stmts)
    }

    fn expr(&mut self) -> Result<Expr> {
        let line = self.line();
        let value = self.or_expr()?;
        // Python-style conditional expression: `a if cond else b`.
        if self.at_kw("if") {
            self.bump();
            let cond = self.or_expr()?;
            if !self.at_kw("else") {
                return Err(self.err("expected 'else' in conditional expression"));
            }
            self.bump();
            let otherwise = self.expr()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Cond {
                    then: Box::new(value),
                    cond: Box::new(cond),
                    otherwise: Box::new(otherwise),
                },
            });
        }
        Ok(value)
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at_kw("or") {
            let line = self.line();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = bin(line, BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.at_kw("and") {
            let line = self.line();
            self.bump();
            let rhs = self.not_expr()?;
            lhs = bin(line, BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.at_kw("not") {
            let line = self.line();
            self.bump();
            let e = self.not_expr()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Un(UnOp::Not, Box::new(e)),
            });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let line = self.line();
        let op = match self.cur() {
            Tok::Eq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            Tok::Ident(s) if s == "in" => Some(BinOp::In),
            Tok::Ident(s) if s == "not" => {
                // `a not in b`
                if matches!(
                    self.toks.get(self.pos + 1).map(|s| &s.tok),
                    Some(Tok::Ident(k)) if k == "in"
                ) {
                    self.bump();
                    self.bump();
                    let rhs = self.add_expr()?;
                    let inner = bin(line, BinOp::In, lhs, rhs);
                    return Ok(Expr {
                        line,
                        kind: ExprKind::Un(UnOp::Not, Box::new(inner)),
                    });
                }
                None
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.add_expr()?;
                Ok(bin(line, op, lhs, rhs))
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let line = self.line();
            let op = match self.cur() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = bin(line, op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let line = self.line();
            let op = match self.cur() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = bin(line, op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.at(&Tok::Minus) {
            let line = self.line();
            self.bump();
            let e = self.unary_expr()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Un(UnOp::Neg, Box::new(e)),
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.atom()?;
        loop {
            let line = self.line();
            match self.cur() {
                Tok::LParen => {
                    self.bump();
                    let (args, kwargs) = self.call_args()?;
                    e = Expr {
                        line,
                        kind: ExprKind::Call {
                            callee: Box::new(e),
                            args,
                            kwargs,
                        },
                    };
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket, "']'")?;
                    e = Expr {
                        line,
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    };
                }
                Tok::Dot => {
                    self.bump();
                    let name = self.expect_ident("attribute name")?;
                    e = Expr {
                        line,
                        kind: ExprKind::Attr(Box::new(e), name),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<(Vec<Expr>, KwArgs)> {
        let mut args = Vec::new();
        let mut kwargs: Vec<(String, Expr)> = Vec::new();
        while !self.at(&Tok::RParen) {
            // Lookahead for `name=`.
            let is_kw = matches!(self.cur(), Tok::Ident(s) if !is_keyword(s))
                && self.toks.get(self.pos + 1).map(|s| &s.tok) == Some(&Tok::Assign);
            if is_kw {
                let name = self.expect_ident("keyword argument")?;
                self.bump(); // `=`
                let value = self.expr()?;
                if kwargs.iter().any(|(n, _)| *n == name) {
                    return Err(self.err(format!("duplicate keyword argument: {name}")));
                }
                kwargs.push((name, value));
            } else {
                if !kwargs.is_empty() {
                    return Err(self.err("positional argument after keyword argument"));
                }
                args.push(self.expr()?);
            }
            if self.at(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok((args, kwargs))
    }

    fn atom(&mut self) -> Result<Expr> {
        let line = self.line();
        let kind = match self.cur().clone() {
            Tok::Int(v) => {
                self.bump();
                ExprKind::Int(v)
            }
            Tok::Float(v) => {
                self.bump();
                ExprKind::Float(v)
            }
            Tok::Str(s) => {
                self.bump();
                ExprKind::Str(s)
            }
            Tok::Ident(s) if s == "true" => {
                self.bump();
                ExprKind::Bool(true)
            }
            Tok::Ident(s) if s == "false" => {
                self.bump();
                ExprKind::Bool(false)
            }
            Tok::Ident(s) if s == "null" => {
                self.bump();
                ExprKind::Null
            }
            Tok::Ident(s) if !is_keyword(&s) => {
                self.bump();
                if self.at(&Tok::LBrace) {
                    self.bump();
                    let fields = self.struct_fields()?;
                    ExprKind::Struct { name: s, fields }
                } else {
                    ExprKind::Name(s)
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                return Ok(e);
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                while !self.at(&Tok::RBracket) {
                    items.push(self.expr()?);
                    if self.at(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::RBracket, "']'")?;
                ExprKind::List(items)
            }
            Tok::LBrace => {
                self.bump();
                let mut items = Vec::new();
                while !self.at(&Tok::RBrace) {
                    let k = self.expr()?;
                    self.expect(&Tok::Colon, "':' in dict literal")?;
                    let v = self.expr()?;
                    items.push((k, v));
                    if self.at(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::RBrace, "'}'")?;
                ExprKind::Dict(items)
            }
            other => return Err(self.err(format!("unexpected token: {other:?}"))),
        };
        Ok(Expr { line, kind })
    }

    fn struct_fields(&mut self) -> Result<Vec<(String, Expr)>> {
        let mut fields: Vec<(String, Expr)> = Vec::new();
        while !self.at(&Tok::RBrace) {
            let name = self.expect_ident("field name")?;
            self.expect(&Tok::Colon, "':' in struct literal")?;
            let value = self.expr()?;
            if fields.iter().any(|(n, _)| *n == name) {
                return Err(self.err(format!("duplicate field: {name}")));
            }
            fields.push((name, value));
            if self.at(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(fields)
    }
}

fn bin(line: u32, op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr {
        line,
        kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "import"
            | "schema"
            | "def"
            | "return"
            | "if"
            | "elif"
            | "else"
            | "for"
            | "in"
            | "and"
            | "or"
            | "not"
            | "true"
            | "false"
            | "null"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Module {
        parse(src, "t").unwrap()
    }

    #[test]
    fn assignment_and_expression_statements() {
        let m = p("x = 1 + 2 * 3\nexport_if_last(x)");
        assert_eq!(m.stmts.len(), 2);
        assert!(matches!(&m.stmts[0].kind, StmtKind::Assign { name, .. } if name == "x"));
        assert!(matches!(&m.stmts[1].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn precedence_mul_over_add() {
        let m = p("x = 1 + 2 * 3");
        let StmtKind::Assign { value, .. } = &m.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Bin(BinOp::Add, _, rhs) = &value.kind else {
            panic!("expected +: {value:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn imports_and_schemas() {
        let m = p("import \"shared/ports.cinc\"\nschema \"job.schema\"");
        assert_eq!(
            m.stmts[0].kind,
            StmtKind::Import("shared/ports.cinc".into())
        );
        assert_eq!(m.stmts[1].kind, StmtKind::Schema("job.schema".into()));
    }

    #[test]
    fn function_with_defaults_and_kwargs_call() {
        let m = p("def create_job(name, memory_mb=1024):\n    return name\nj = create_job(name=\"cache\")");
        let StmtKind::Def(def) = &m.stmts[0].kind else {
            panic!()
        };
        assert_eq!(def.params.len(), 2);
        assert!(def.params[0].default.is_none());
        assert!(def.params[1].default.is_some());
        let StmtKind::Assign { value, .. } = &m.stmts[1].kind else {
            panic!()
        };
        let ExprKind::Call { kwargs, .. } = &value.kind else {
            panic!()
        };
        assert_eq!(kwargs[0].0, "name");
    }

    #[test]
    fn non_default_after_default_rejected() {
        assert!(parse("def f(a=1, b):\n    return a\n", "t").is_err());
    }

    #[test]
    fn struct_literal() {
        let m = p("j = Job {\n    name: \"cache\",\n    replicas: 3,\n}");
        let StmtKind::Assign { value, .. } = &m.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Struct { name, fields } = &value.kind else {
            panic!()
        };
        assert_eq!(name, "Job");
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn duplicate_struct_field_rejected() {
        assert!(parse("j = Job { a: 1, a: 2 }", "t").is_err());
    }

    #[test]
    fn if_elif_else_chain() {
        let m = p("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3");
        let StmtKind::If { otherwise, .. } = &m.stmts[0].kind else {
            panic!()
        };
        assert_eq!(otherwise.len(), 1);
        let StmtKind::If { otherwise: o2, .. } = &otherwise[0].kind else {
            panic!("elif should nest as If")
        };
        assert_eq!(o2.len(), 1);
    }

    #[test]
    fn for_loop() {
        let m = p("for x in range(3):\n    y = x");
        assert!(matches!(&m.stmts[0].kind, StmtKind::For { var, .. } if var == "x"));
    }

    #[test]
    fn conditional_expression() {
        let m = p("x = 1 if flag else 2");
        let StmtKind::Assign { value, .. } = &m.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(&value.kind, ExprKind::Cond { .. }));
    }

    #[test]
    fn not_in_operator() {
        let m = p("x = a not in b");
        let StmtKind::Assign { value, .. } = &m.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Un(UnOp::Not, inner) = &value.kind else {
            panic!()
        };
        assert!(matches!(inner.kind, ExprKind::Bin(BinOp::In, _, _)));
    }

    #[test]
    fn dict_and_list_literals() {
        let m = p("x = {\"a\": [1, 2], \"b\": {}}");
        let StmtKind::Assign { value, .. } = &m.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Dict(items) = &value.kind else {
            panic!()
        };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn attribute_and_index_postfix() {
        let m = p("x = cfg.jobs[0].name");
        let StmtKind::Assign { value, .. } = &m.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(&value.kind, ExprKind::Attr(_, name) if name == "name"));
    }

    #[test]
    fn parse_expr_rejects_trailing() {
        assert!(parse_expr("1 + 2", "t").is_ok());
        assert!(parse_expr("1 + 2 extra", "t").is_err());
    }

    #[test]
    fn keyword_as_name_rejected() {
        assert!(parse("def = 1", "t").is_err());
        assert!(parse("x = return", "t").is_err());
    }

    #[test]
    fn positional_after_keyword_rejected() {
        assert!(parse("x = f(a=1, 2)", "t").is_err());
    }

    #[test]
    fn multiline_call_via_parens() {
        let m = p("x = f(\n    1,\n    2,\n)");
        let StmtKind::Assign { value, .. } = &m.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Call { args, .. } = &value.kind else {
            panic!()
        };
        assert_eq!(args.len(), 2);
    }
}
