//! Abstract syntax tree for CDSL config programs.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (short-circuit)
    And,
    /// `or` (short-circuit)
    Or,
    /// `in` (membership)
    In,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `not`
    Not,
}

/// An expression, annotated with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// 1-based source line.
    pub line: u32,
    /// The expression kind.
    pub kind: ExprKind,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Name reference.
    Name(String),
    /// `[a, b, c]`
    List(Vec<Expr>),
    /// `{"k": v, ...}`
    Dict(Vec<(Expr, Expr)>),
    /// `TypeName { field: expr, ... }`
    Struct {
        /// Schema type name.
        name: String,
        /// Field initializers in written order.
        fields: Vec<(String, Expr)>,
    },
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// `f(a, b, key=c)`
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Keyword arguments.
        kwargs: Vec<(String, Expr)>,
    },
    /// `x[i]`
    Index(Box<Expr>, Box<Expr>),
    /// `x.field`
    Attr(Box<Expr>, String),
    /// `a if cond else b`
    Cond {
        /// Value when the condition holds.
        then: Box<Expr>,
        /// The condition.
        cond: Box<Expr>,
        /// Value otherwise.
        otherwise: Box<Expr>,
    },
}

/// A statement, annotated with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// 1-based source line.
    pub line: u32,
    /// The statement kind.
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `name = expr`
    Assign {
        /// Target name.
        name: String,
        /// Value.
        value: Expr,
    },
    /// A bare expression evaluated for effect (e.g. `export_if_last(x)`).
    Expr(Expr),
    /// `import "path"` — brings the module's top-level bindings into scope
    /// (the paper's `import_python`).
    Import(String),
    /// `schema "path"` — loads type definitions (the paper's
    /// `import_thrift`).
    Schema(String),
    /// `def name(params): body`. Arc'd so binding the function at module
    /// evaluation is a refcount bump, not a deep clone of the body AST.
    Def(std::sync::Arc<FuncDef>),
    /// `return expr` (or bare `return`).
    Return(Option<Expr>),
    /// `if cond: ... elif ...: ... else: ...` — encoded as a chain.
    If {
        /// The condition.
        cond: Expr,
        /// Then-branch statements.
        then: Vec<Stmt>,
        /// Else-branch statements (possibly another `If` for `elif`).
        otherwise: Vec<Stmt>,
    },
    /// `for var in expr: body`
    For {
        /// Loop variable.
        var: String,
        /// Iterated expression (list, dict keys, or range).
        iter: Expr,
        /// Body statements.
        body: Vec<Stmt>,
    },
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Default value, if any. Parameters with defaults must follow those
    /// without.
    pub default: Option<Expr>,
}

/// A parsed module: a sequence of top-level statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}
