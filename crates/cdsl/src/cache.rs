//! Shared, content-addressed parse cache.
//!
//! Lexing and parsing dominate the cost of compiling a wide ripple: when a
//! shared `.cinc` changes, every dependent entry re-executes, and without a
//! cache every one of those interpreters re-lexes and re-parses the same
//! imported modules, schemas, and validators from scratch. The
//! [`ParseCache`] keys parsed ASTs by *content*, not by path, so
//!
//! * all entries in one compile batch share a single parse of each source;
//! * the cache stays valid across successive commits — an overlay edit
//!   changes the content, which simply misses the cache, while every
//!   untouched file keeps hitting it;
//! * two paths with identical content share one AST.
//!
//! Parsed modules are path-independent (errors are attributed through the
//! interpreter's module table, not the AST), which is what makes content
//! addressing sound. Parse *failures* are never cached: their messages
//! embed the path, and they are not on the hot path.
//!
//! The cache is `Sync` — one instance is shared by all worker threads of a
//! parallel compile batch — and bounded: when the number of cached entries
//! would exceed the capacity, the cache is wholesale cleared (entries are
//! rebuilt on demand; content addressing makes this safe).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::ast::Module;
use crate::error::Result;
use crate::parser::parse;
use crate::schema::{parse_schema, TypeDef};

/// A content address: source length plus two independent FNV-1a passes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ContentKey {
    len: u64,
    h1: u64,
    h2: u64,
}

/// FNV-1a offset basis (the standard 64-bit one).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, unrelated basis so the two passes are independent.
const FNV_OFFSET_ALT: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`, starting from `seed`.
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Computes the content address of a source text. Both FNV passes run in
/// a single sweep over the bytes — content keys are computed on every
/// cache lookup and every fingerprint component, so this is hot.
pub fn content_key(src: &str) -> ContentKey {
    let mut h1 = FNV_OFFSET;
    let mut h2 = FNV_OFFSET_ALT;
    for &b in src.as_bytes() {
        h1 = (h1 ^ b as u64).wrapping_mul(FNV_PRIME);
        h2 = (h2 ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    ContentKey {
        len: src.len() as u64,
        h1,
        h2,
    }
}

impl ContentKey {
    /// The key as bytes, for feeding into a larger digest (the service's
    /// per-entry fingerprints hash the content keys of their inputs
    /// rather than re-hashing the full sources).
    pub fn to_bytes(self) -> [u8; 24] {
        let mut out = [0u8; 24];
        out[..8].copy_from_slice(&self.len.to_le_bytes());
        out[8..16].copy_from_slice(&self.h1.to_le_bytes());
        out[16..].copy_from_slice(&self.h2.to_le_bytes());
        out
    }
}

/// Cache hit/miss counters, cumulative over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to parse.
    pub misses: u64,
}

impl CacheStats {
    /// hits − other.hits / misses − other.misses (for per-batch deltas).
    pub fn since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// A thread-safe, content-addressed cache of parsed modules and schemas.
pub struct ParseCache {
    modules: RwLock<HashMap<ContentKey, Arc<Module>>>,
    schemas: RwLock<HashMap<ContentKey, Arc<Vec<TypeDef>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl Default for ParseCache {
    fn default() -> ParseCache {
        ParseCache::new()
    }
}

impl ParseCache {
    /// Creates a cache with the default capacity (64k parsed sources —
    /// comfortably a full 10k-config repository with all its support
    /// files).
    pub fn new() -> ParseCache {
        ParseCache::with_capacity(65_536)
    }

    /// Creates a cache bounded at `capacity` entries per kind.
    pub fn with_capacity(capacity: usize) -> ParseCache {
        ParseCache {
            modules: RwLock::new(HashMap::new()),
            schemas: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Returns the parsed module for `src`, parsing at most once per
    /// content. `path` is only used to attribute parse errors.
    pub fn module(&self, src: &str, path: &str) -> Result<Arc<Module>> {
        let key = content_key(src);
        if let Some(m) = self.modules.read().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(m));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let parsed = Arc::new(parse(src, path)?);
        let mut map = self.modules.write().expect("cache lock");
        if map.len() >= self.capacity {
            map.clear();
        }
        // A racing thread may have inserted meanwhile; keep one AST so all
        // holders share.
        Ok(Arc::clone(
            map.entry(key).or_insert_with(|| Arc::clone(&parsed)),
        ))
    }

    /// Returns the parsed type definitions of a schema source, parsing at
    /// most once per content.
    pub fn schema(&self, src: &str, path: &str) -> Result<Arc<Vec<TypeDef>>> {
        let key = content_key(src);
        if let Some(defs) = self.schemas.read().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(defs));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let parsed = Arc::new(parse_schema(src, path)?);
        let mut map = self.schemas.write().expect("cache lock");
        if map.len() >= self.capacity {
            map.clear();
        }
        Ok(Arc::clone(
            map.entry(key).or_insert_with(|| Arc::clone(&parsed)),
        ))
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached entries (modules + schemas).
    pub fn len(&self) -> usize {
        self.modules.read().expect("cache lock").len()
            + self.schemas.read().expect("cache lock").len()
    }

    /// Returns whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        self.modules.write().expect("cache lock").clear();
        self.schemas.write().expect("cache lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_parsed_once_per_content() {
        let cache = ParseCache::new();
        let a = cache.module("x = 1", "a.cinc").unwrap();
        let b = cache.module("x = 1", "elsewhere/b.cinc").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same content shares one AST");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        let c = cache.module("x = 2", "a.cinc").unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different content, different AST");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let cache = ParseCache::new();
        assert!(cache.module("def (", "bad.cinc").is_err());
        assert!(cache.module("def (", "bad.cinc").is_err());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn schema_cached_by_content() {
        let cache = ParseCache::new();
        let src = "struct J { 1: string name }";
        let a = cache.schema(src, "j.schema").unwrap();
        let b = cache.schema(src, "j.schema").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn capacity_overflow_clears() {
        let cache = ParseCache::with_capacity(2);
        cache.module("a = 1", "a").unwrap();
        cache.module("b = 2", "b").unwrap();
        cache.module("c = 3", "c").unwrap();
        // Insertion past capacity wipes the map, then inserts.
        assert_eq!(cache.len(), 1);
        // Cleared entries are simply re-parsed on demand.
        cache.module("a = 1", "a").unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn content_keys_distinguish_lengths() {
        assert_ne!(content_key("ab"), content_key("abc"));
        assert_eq!(content_key("same"), content_key("same"));
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = ParseCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..16 {
                        cache.module(&format!("x = {}", i % 4), "m.cinc").unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 64);
        assert_eq!(cache.len(), 4);
    }
}
