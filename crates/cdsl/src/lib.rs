//! # cdsl — configuration as code
//!
//! CDSL is the "configuration as code" layer of the Configerator
//! reproduction (§3.1 of *Holistic Configuration Management at Facebook*,
//! SOSP 2015). The paper compiles Python programs against Thrift schemas
//! into JSON configs; CDSL keeps every architectural element of that
//! pipeline with a small self-contained language:
//!
//! * **Config programs** (`.cconf` / `.cinc`): an indentation-structured
//!   expression language with functions, imports, and struct construction.
//! * **Schemas** (`.schema`): Thrift-style struct/enum definitions; struct
//!   construction is type-checked and defaults are filled in.
//! * **Validators** (`.cvalidator`): `validate(cfg)` functions run
//!   automatically by the compiler; `require(cond, msg)` failures fail the
//!   compile.
//! * **Dependencies** are extracted from the import graph, never declared
//!   by hand — change a shared `.cinc` and every downstream config
//!   recompiles (the Dependency Service in the `configerator` crate drives
//!   this).
//! * **Canonical JSON**: identical config values serialize byte-identically.
//!
//! # Examples
//!
//! ```
//! use std::collections::BTreeMap;
//! use cdsl::compile::Compiler;
//!
//! let mut files = BTreeMap::new();
//! files.insert("app_port.cinc".into(), "APP_PORT = 8089".to_string());
//! files.insert(
//!     "app.cconf".into(),
//!     "import \"app_port.cinc\"\nexport_if_last({\"port\": APP_PORT})".to_string(),
//! );
//! files.insert(
//!     "firewall.cconf".into(),
//!     "import \"app_port.cinc\"\nexport_if_last({\"allow\": [APP_PORT]})".to_string(),
//! );
//!
//! let compiler = Compiler::new(&files);
//! let app = compiler.compile("app.cconf").unwrap();
//! let fw = compiler.compile("firewall.cconf").unwrap();
//! // Both configs depend on the shared module, so a change to it
//! // recompiles both (the paper's app.cconf / firewall.cconf example).
//! assert_eq!(app.deps, vec!["app_port.cinc"]);
//! assert_eq!(fw.deps, vec!["app_port.cinc"]);
//! ```

pub mod analysis;
pub mod ast;
pub mod cache;
pub mod compile;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod schema;
pub mod value;

pub use analysis::{FactsCache, Finding, Severity, Verifier, VerifyReport};
pub use cache::{content_key, CacheStats, ContentKey, ParseCache};
pub use compile::{CompiledConfig, Compiler, COMPILER_VERSION};
pub use error::{CdslError, ErrorKind, Result};
pub use interp::{Interp, Limits, Loader};
pub use schema::{SchemaSet, Type, TypeDef};
pub use value::{StructValue, Value};
