//! Tokenizer with Python-style significant indentation.
//!
//! Blocks are delimited by `Indent`/`Dedent` tokens computed from leading
//! whitespace, so config programs read like the Python sources in the
//! paper's Figure 2. Blank lines and `#` comments are skipped; parentheses,
//! brackets, and braces suppress newline/indent handling so expressions can
//! span lines.

use crate::error::{CdslError, ErrorKind, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (already unescaped).
    Str(String),
    /// Logical end of statement.
    Newline,
    /// Block start.
    Indent,
    /// Block end.
    Dedent,
    /// End of input.
    Eof,
    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A token paired with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// Tokenizes `src`, reporting errors against `path`.
pub fn lex(src: &str, path: &str) -> Result<Vec<Spanned>> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        path,
        out: Vec::new(),
        indents: vec![0],
        nesting: 0,
    }
    .run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    path: &'a str,
    out: Vec<Spanned>,
    indents: Vec<usize>,
    nesting: usize,
}

impl Lexer<'_> {
    fn err(&self, msg: impl Into<String>) -> CdslError {
        CdslError::new(ErrorKind::Lex(msg.into()), self.path, self.line)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok) {
        let line = self.line;
        self.out.push(Spanned { tok, line });
    }

    fn run(mut self) -> Result<Vec<Spanned>> {
        self.handle_line_start()?;
        while let Some(c) = self.peek() {
            match c {
                ' ' | '\t' | '\r' => {
                    self.bump();
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '\n' => {
                    self.bump();
                    if self.nesting == 0 {
                        // Collapse runs of blank lines into one Newline.
                        if !matches!(
                            self.out.last().map(|s| &s.tok),
                            Some(Tok::Newline) | Some(Tok::Indent) | None
                        ) {
                            self.push(Tok::Newline);
                        }
                        self.handle_line_start()?;
                    }
                }
                '"' | '\'' => self.string(c)?,
                c if c.is_ascii_digit() => self.number()?,
                c if c.is_alphabetic() || c == '_' => self.ident(),
                _ => self.punct()?,
            }
        }
        if !matches!(self.out.last().map(|s| &s.tok), Some(Tok::Newline) | None) {
            self.push(Tok::Newline);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push(Tok::Dedent);
        }
        self.push(Tok::Eof);
        Ok(self.out)
    }

    /// Measures leading indentation after a newline and emits
    /// Indent/Dedent. Blank and comment-only lines are skipped entirely.
    fn handle_line_start(&mut self) -> Result<()> {
        loop {
            let start = self.pos;
            let mut width = 0usize;
            while let Some(c) = self.peek() {
                match c {
                    ' ' => {
                        width += 1;
                        self.bump();
                    }
                    '\t' => {
                        return Err(self.err("tabs are not allowed in indentation"));
                    }
                    _ => break,
                }
            }
            match self.peek() {
                // Blank or comment-only line: consume through the newline.
                Some('\n') => {
                    self.bump();
                    continue;
                }
                Some('\r') => {
                    self.bump();
                    continue;
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                None => {
                    let _ = start;
                    return Ok(());
                }
                Some(_) => {
                    let current = *self.indents.last().expect("indent stack never empty");
                    if width > current {
                        self.indents.push(width);
                        self.push(Tok::Indent);
                    } else if width < current {
                        while *self.indents.last().expect("nonempty") > width {
                            self.indents.pop();
                            self.push(Tok::Dedent);
                        }
                        if *self.indents.last().expect("nonempty") != width {
                            return Err(self.err("inconsistent dedent"));
                        }
                    }
                    return Ok(());
                }
            }
        }
    }

    fn string(&mut self, quote: char) -> Result<()> {
        self.bump();
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('\n') => return Err(self.err("newline in string literal")),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some('\'') => s.push('\''),
                    Some(other) => {
                        return Err(self.err(format!("unknown escape: \\{other}")));
                    }
                    None => return Err(self.err("unterminated escape")),
                },
                Some(c) if c == quote => break,
                Some(c) => s.push(c),
            }
        }
        self.push(Tok::Str(s));
        Ok(())
    }

    fn number(&mut self) -> Result<()> {
        let mut text = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else if c == '.' && self.peek2().is_some_and(|d| d.is_ascii_digit()) && !is_float {
                is_float = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("bad float: {text}")))?;
            self.push(Tok::Float(v));
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("integer overflow: {text}")))?;
            self.push(Tok::Int(v));
        }
        Ok(())
    }

    fn ident(&mut self) {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(s));
    }

    fn punct(&mut self) -> Result<()> {
        let c = self.bump().expect("punct called at end");
        let two = |l: &mut Self, next: char, a: Tok, b: Tok| {
            if l.peek() == Some(next) {
                l.bump();
                l.push(a);
            } else {
                l.push(b);
            }
        };
        match c {
            '(' => {
                self.nesting += 1;
                self.push(Tok::LParen);
            }
            ')' => {
                self.nesting = self.nesting.saturating_sub(1);
                self.push(Tok::RParen);
            }
            '[' => {
                self.nesting += 1;
                self.push(Tok::LBracket);
            }
            ']' => {
                self.nesting = self.nesting.saturating_sub(1);
                self.push(Tok::RBracket);
            }
            '{' => {
                self.nesting += 1;
                self.push(Tok::LBrace);
            }
            '}' => {
                self.nesting = self.nesting.saturating_sub(1);
                self.push(Tok::RBrace);
            }
            ',' => self.push(Tok::Comma),
            ':' => self.push(Tok::Colon),
            '.' => self.push(Tok::Dot),
            '+' => self.push(Tok::Plus),
            '-' => self.push(Tok::Minus),
            '*' => self.push(Tok::Star),
            '/' => self.push(Tok::Slash),
            '%' => self.push(Tok::Percent),
            '=' => two(self, '=', Tok::Eq, Tok::Assign),
            '<' => two(self, '=', Tok::Le, Tok::Lt),
            '>' => two(self, '=', Tok::Ge, Tok::Gt),
            '!' => {
                if self.peek() == Some('=') {
                    self.bump();
                    self.push(Tok::Ne);
                } else {
                    return Err(self.err("unexpected '!'"));
                }
            }
            other => return Err(self.err(format!("unexpected character: {other:?}"))),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src, "t").unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            toks("x = 1"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let t = toks("if x:\n    y = 1\nz = 2");
        assert!(t.contains(&Tok::Indent));
        assert!(t.contains(&Tok::Dedent));
        let i = t.iter().position(|x| *x == Tok::Indent).unwrap();
        let d = t.iter().position(|x| *x == Tok::Dedent).unwrap();
        assert!(i < d);
    }

    #[test]
    fn nested_dedents_stack() {
        let t = toks("a:\n  b:\n    c = 1\nd = 2");
        let dedents = t.iter().filter(|x| **x == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn blank_and_comment_lines_ignored() {
        let t = toks("x = 1\n\n   # comment only\n\ny = 2");
        let newlines = t.iter().filter(|x| **x == Tok::Newline).count();
        assert_eq!(newlines, 2);
        assert!(!t.contains(&Tok::Indent));
    }

    #[test]
    fn brackets_suppress_newlines() {
        let t = toks("x = [1,\n     2,\n     3]");
        assert_eq!(t.iter().filter(|x| **x == Tok::Newline).count(), 1);
        assert!(!t.contains(&Tok::Indent));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#"s = "a\n\"b\"""#)[2], Tok::Str("a\n\"b\"".into()));
        assert_eq!(toks("s = 'single'")[2], Tok::Str("single".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("x = 1_000")[2], Tok::Int(1000));
        assert_eq!(toks("x = 3.5")[2], Tok::Float(3.5));
        // Dot not followed by a digit is attribute access, not a float.
        let t = toks("x = a.b");
        assert!(t.contains(&Tok::Dot));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a == b != c <= d >= e < f > g")
                .into_iter()
                .filter(|t| {
                    matches!(t, Tok::Eq | Tok::Ne | Tok::Le | Tok::Ge | Tok::Lt | Tok::Gt)
                })
                .count(),
            6
        );
    }

    #[test]
    fn errors() {
        assert!(lex("x = \"unterminated", "t").is_err());
        assert!(lex("x = @", "t").is_err());
        assert!(lex("\tx = 1", "t").is_err());
        assert!(
            lex("if a:\n    b = 1\n  c = 2\n", "t").is_err(),
            "inconsistent dedent"
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let spanned = lex("a = 1\nb = 2", "t").unwrap();
        let b = spanned
            .iter()
            .find(|s| s.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn trailing_newline_and_dedents_at_eof() {
        let t = toks("if x:\n    y = 1");
        assert_eq!(t.last(), Some(&Tok::Eof));
        assert!(t.contains(&Tok::Dedent));
    }
}
