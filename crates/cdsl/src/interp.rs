//! The CDSL evaluator.
//!
//! A config program is executed as a module graph: `import "path"` loads
//! and runs another module once, then copies its top-level bindings into the
//! importing scope (the paper's `import_python(path, "*")`); `schema "path"`
//! loads Thrift-style type definitions (the paper's `import_thrift`). The
//! set of loaded paths becomes the config's dependency list — dependencies
//! are *extracted from source code*, never maintained by hand (§1, §3.1).
//!
//! `export_if_last(value)` records the compiled config value only when the
//! call occurs in the entry module — imported modules can share the same
//! code path without exporting, exactly like the paper's reusable `.cinc`
//! modules.
//!
//! Execution is budgeted (step count and call depth) so a buggy config
//! program cannot hang the compiler.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use crate::ast::{BinOp, Expr, ExprKind, Module, Stmt, StmtKind, UnOp};
use crate::cache::ParseCache;
use crate::error::{CdslError, ErrorKind, Result};
use crate::parser::parse;
use crate::schema::{SchemaSet, StructDef, Type, TypeDef};
use crate::value::{FuncValue, StructValue, Value};

/// Provides source text for config programs and schemas by path.
///
/// Loaders are `Sync` so one loader (and one [`ParseCache`]) can serve all
/// worker threads of a parallel compile batch.
pub trait Loader: Sync {
    /// Returns the source at `path`, or `None` if it does not exist.
    fn load(&self, path: &str) -> Option<String>;
}

impl Loader for BTreeMap<String, String> {
    fn load(&self, path: &str) -> Option<String> {
        self.get(path).cloned()
    }
}

impl Loader for HashMap<String, String> {
    fn load(&self, path: &str) -> Option<String> {
        self.get(path).cloned()
    }
}

/// Execution budgets.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of evaluation steps.
    pub max_steps: u64,
    /// Maximum function call depth.
    pub max_depth: u32,
    /// Maximum length of a `range()` result.
    pub max_range: i64,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_steps: 2_000_000,
            // Each CDSL call level consumes several native frames; 64 keeps
            // worst-case native stack usage well under typical 2 MB thread
            // stacks even in debug builds.
            max_depth: 64,
            max_range: 1_000_000,
        }
    }
}

type Scope = HashMap<String, Value>;

/// Evaluates a standalone expression with no imports and the standard
/// builtins available. This powers the Sitevars shim, where a sitevar's
/// value "is a PHP expression" (§3.2) — here, a CDSL expression.
///
/// # Examples
///
/// ```
/// use cdsl::interp::eval_expression;
///
/// let v = eval_expression("{\"limit\": 2 * 50}").unwrap();
/// assert_eq!(v.to_json(), "{\"limit\":100}");
/// ```
pub fn eval_expression(src: &str) -> Result<Value> {
    let expr = crate::parser::parse_expr(src, "<expr>")?;
    let loader: BTreeMap<String, String> = BTreeMap::new();
    let mut interp = Interp::new(&loader, Limits::default());
    interp.modules.push(Scope::new());
    interp.module_paths.push(std::sync::Arc::from("<expr>"));
    interp.eval(&expr, 0, None)
}

enum Flow {
    Normal,
    Return(Value),
}

/// The interpreter: module registry, schema set, and execution state.
pub struct Interp<'l> {
    loader: &'l dyn Loader,
    cache: Option<&'l ParseCache>,
    limits: Limits,
    schemas: SchemaSet,
    modules: Vec<Scope>,
    module_paths: Vec<Arc<str>>,
    module_ids: HashMap<String, usize>,
    loading: Vec<String>,
    entry: Option<usize>,
    exported: Option<Value>,
    deps: BTreeSet<String>,
    steps: u64,
    depth: u32,
}

impl<'l> Interp<'l> {
    /// Creates an interpreter over `loader`.
    pub fn new(loader: &'l dyn Loader, limits: Limits) -> Interp<'l> {
        Interp {
            loader,
            cache: None,
            limits,
            schemas: SchemaSet::new(),
            modules: Vec::new(),
            module_paths: Vec::new(),
            module_ids: HashMap::new(),
            loading: Vec::new(),
            entry: None,
            exported: None,
            deps: BTreeSet::new(),
            steps: 0,
            depth: 0,
        }
    }

    /// Reads parsed ASTs through `cache` instead of re-parsing every
    /// loaded source. The cache may be shared across interpreters and
    /// threads.
    pub fn with_parse_cache(mut self, cache: &'l ParseCache) -> Interp<'l> {
        self.cache = Some(cache);
        self
    }

    /// Executes `path` as the entry module. Returns the entry module index.
    pub fn run_entry(&mut self, path: &str) -> Result<usize> {
        let idx = self.load_module(path, true)?;
        Ok(idx)
    }

    /// Executes `path` as a non-entry module (its exports are ignored).
    /// Used to run validator files.
    pub fn run_module(&mut self, path: &str) -> Result<usize> {
        self.load_module(path, false)
    }

    /// The value exported by the entry module, if any.
    pub fn exported(&self) -> Option<&Value> {
        self.exported.as_ref()
    }

    /// All paths loaded besides the entry (imports, schemas): the config's
    /// dependency list.
    pub fn deps(&self) -> &BTreeSet<String> {
        &self.deps
    }

    /// The accumulated schema set.
    pub fn schemas(&self) -> &SchemaSet {
        &self.schemas
    }

    /// Looks up a top-level binding of a module.
    pub fn global(&self, module: usize, name: &str) -> Option<&Value> {
        self.modules.get(module).and_then(|m| m.get(name))
    }

    /// Calls the function bound to `name` in `module` with positional
    /// `args`. Used by the compiler to invoke validators. Arguments are
    /// taken by reference: binding a parameter performs a shallow
    /// (`Arc`-bump) clone, so invoking many validators against one large
    /// config value never copies the value itself.
    pub fn call_global(&mut self, module: usize, name: &str, args: &[Value]) -> Result<Value> {
        let f = match self.global(module, name) {
            Some(Value::Func(f)) => f.clone(),
            Some(other) => {
                return Err(CdslError::nowhere(ErrorKind::Eval(format!(
                    "{name} is not a function (found {})",
                    other.type_name()
                ))))
            }
            None => {
                return Err(CdslError::nowhere(ErrorKind::Eval(format!(
                    "no function named {name}"
                ))))
            }
        };
        let path = self.module_paths[module].clone();
        self.call_func(&f, args.to_vec(), Vec::new(), &path, 0)
    }

    fn load_module(&mut self, path: &str, as_entry: bool) -> Result<usize> {
        // A module still on the loading stack is mid-execution: importing it
        // again is a cycle. This must be checked before the module-id cache,
        // which registers modules eagerly.
        if self.loading.iter().any(|p| p == path) {
            return Err(CdslError::nowhere(ErrorKind::ImportCycle(format!(
                "{} -> {path}",
                self.loading.join(" -> ")
            ))));
        }
        if let Some(&idx) = self.module_ids.get(path) {
            return Ok(idx);
        }
        let src = self
            .loader
            .load(path)
            .ok_or_else(|| CdslError::nowhere(ErrorKind::MissingSource(path.to_string())))?;
        let module: Arc<Module> = match self.cache {
            Some(cache) => cache.module(&src, path)?,
            None => Arc::new(parse(&src, path)?),
        };
        let idx = self.modules.len();
        self.modules.push(Scope::new());
        self.module_paths.push(Arc::from(path));
        self.module_ids.insert(path.to_string(), idx);
        if as_entry {
            self.entry = Some(idx);
        } else if self.entry.is_some() {
            self.deps.insert(path.to_string());
        }
        self.loading.push(path.to_string());
        let result = self.exec_stmts(&module.stmts, idx, None);
        self.loading.pop();
        result?;
        Ok(idx)
    }

    fn charge(&mut self, path: &str, line: u32) -> Result<()> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(CdslError::new(
                ErrorKind::Budget(format!("exceeded {} steps", self.limits.max_steps)),
                path,
                line,
            ));
        }
        Ok(())
    }

    fn exec_stmts(
        &mut self,
        stmts: &[Stmt],
        module: usize,
        mut locals: Option<&mut Scope>,
    ) -> Result<Flow> {
        for stmt in stmts {
            match self.exec_stmt(stmt, module, locals.as_deref_mut())? {
                Flow::Normal => {}
                flow @ Flow::Return(_) => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        module: usize,
        mut locals: Option<&mut Scope>,
    ) -> Result<Flow> {
        let path = self.module_paths[module].clone();
        self.charge(&path, stmt.line)?;
        match &stmt.kind {
            StmtKind::Assign { name, value } => {
                let v = self.eval(value, module, locals.as_deref())?;
                match locals {
                    Some(l) => {
                        l.insert(name.clone(), v);
                    }
                    None => {
                        self.modules[module].insert(name.clone(), v);
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(e, module, locals.as_deref())?;
                Ok(Flow::Normal)
            }
            StmtKind::Import(target) => {
                if locals.is_some() {
                    return Err(CdslError::new(
                        ErrorKind::Eval("import is only allowed at module top level".into()),
                        &path,
                        stmt.line,
                    ));
                }
                let dep = self.load_module(target, false)?;
                // Copy the imported module's top-level bindings, like the
                // paper's `import_python(path, "*")`.
                let bindings: Vec<(String, Value)> = self.modules[dep]
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                self.modules[module].extend(bindings);
                Ok(Flow::Normal)
            }
            StmtKind::Schema(target) => {
                if locals.is_some() {
                    return Err(CdslError::new(
                        ErrorKind::Eval("schema is only allowed at module top level".into()),
                        &path,
                        stmt.line,
                    ));
                }
                let src = self.loader.load(target).ok_or_else(|| {
                    CdslError::new(ErrorKind::MissingSource(target.clone()), &path, stmt.line)
                })?;
                match self.cache {
                    Some(cache) => {
                        let defs = cache.schema(&src, target)?;
                        self.schemas.load_defs(&defs, target)?;
                    }
                    None => self.schemas.load(&src, target)?,
                }
                // A schema file is always a dependency of the config.
                self.deps.insert(target.clone());
                Ok(Flow::Normal)
            }
            StmtKind::Def(def) => {
                if locals.is_some() {
                    return Err(CdslError::new(
                        ErrorKind::Eval("nested function definitions are not supported".into()),
                        &path,
                        stmt.line,
                    ));
                }
                let f = Value::Func(Arc::new(FuncValue {
                    def: Arc::clone(def),
                    module,
                }));
                self.modules[module].insert(def.name.clone(), f);
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                if locals.is_none() {
                    return Err(CdslError::new(
                        ErrorKind::Eval("return outside function".into()),
                        &path,
                        stmt.line,
                    ));
                }
                let v = match value {
                    Some(e) => self.eval(e, module, locals.as_deref())?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                let c = self.eval(cond, module, locals.as_deref())?;
                if c.truthy() {
                    self.exec_stmts(then, module, locals)
                } else {
                    self.exec_stmts(otherwise, module, locals)
                }
            }
            StmtKind::For { var, iter, body } => {
                let it = self.eval(iter, module, locals.as_deref())?;
                let items: Vec<Value> = match it {
                    Value::List(l) => l.to_vec(),
                    Value::Dict(d) => d.keys().map(Value::str).collect(),
                    other => {
                        return Err(CdslError::new(
                            ErrorKind::Eval(format!("cannot iterate a {}", other.type_name())),
                            &path,
                            stmt.line,
                        ))
                    }
                };
                for item in items {
                    match locals.as_deref_mut() {
                        Some(l) => {
                            l.insert(var.clone(), item);
                        }
                        None => {
                            self.modules[module].insert(var.clone(), item);
                        }
                    }
                    match self.exec_stmts(body, module, locals.as_deref_mut())? {
                        Flow::Normal => {}
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn lookup(&self, name: &str, module: usize, locals: Option<&Scope>) -> Option<Value> {
        if let Some(l) = locals {
            if let Some(v) = l.get(name) {
                return Some(v.clone());
            }
        }
        if let Some(v) = self.modules[module].get(name) {
            return Some(v.clone());
        }
        if BUILTINS.contains(&name) {
            return Some(Value::Builtin(
                BUILTINS.iter().find(|b| **b == name).expect("checked"),
            ));
        }
        None
    }

    fn eval(&mut self, expr: &Expr, module: usize, locals: Option<&Scope>) -> Result<Value> {
        let path = self.module_paths[module].clone();
        self.charge(&path, expr.line)?;
        let err = |kind: ErrorKind| CdslError::new(kind, &path, expr.line);
        match &expr.kind {
            ExprKind::Null => Ok(Value::Null),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Float(v) => Ok(Value::Float(*v)),
            ExprKind::Str(s) => Ok(Value::str(s)),
            ExprKind::Name(n) => self
                .lookup(n, module, locals)
                .ok_or_else(|| err(ErrorKind::Eval(format!("undefined name: {n}")))),
            ExprKind::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval(e, module, locals)?);
                }
                Ok(Value::list(out))
            }
            ExprKind::Dict(items) => {
                let mut map = BTreeMap::new();
                for (k, v) in items {
                    let key = match self.eval(k, module, locals)? {
                        Value::Str(s) => s.to_string(),
                        other => {
                            return Err(err(ErrorKind::Eval(format!(
                                "dict keys must be strings, found {}",
                                other.type_name()
                            ))))
                        }
                    };
                    let value = self.eval(v, module, locals)?;
                    map.insert(key, value);
                }
                Ok(Value::dict(map))
            }
            ExprKind::Struct { name, fields } => {
                let mut given: Vec<(String, Value)> = Vec::with_capacity(fields.len());
                for (fname, fexpr) in fields {
                    given.push((fname.clone(), self.eval(fexpr, module, locals)?));
                }
                self.build_struct(name, given, &path, expr.line)
            }
            ExprKind::Bin(op, lhs, rhs) => self.eval_bin(*op, lhs, rhs, module, locals),
            ExprKind::Un(op, inner) => {
                let v = self.eval(inner, module, locals)?;
                match op {
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(err(ErrorKind::Eval(format!(
                            "cannot negate a {}",
                            other.type_name()
                        )))),
                    },
                }
            }
            ExprKind::Cond {
                then,
                cond,
                otherwise,
            } => {
                if self.eval(cond, module, locals)?.truthy() {
                    self.eval(then, module, locals)
                } else {
                    self.eval(otherwise, module, locals)
                }
            }
            ExprKind::Index(base, idx) => {
                let b = self.eval(base, module, locals)?;
                let i = self.eval(idx, module, locals)?;
                match (&b, &i) {
                    (Value::List(l), Value::Int(n)) => {
                        let len = l.len() as i64;
                        let k = if *n < 0 { n + len } else { *n };
                        if k < 0 || k >= len {
                            Err(err(ErrorKind::Eval(format!(
                                "list index {n} out of range (len {len})"
                            ))))
                        } else {
                            Ok(l[k as usize].clone())
                        }
                    }
                    (Value::Dict(d), Value::Str(k)) => d
                        .get(&**k)
                        .cloned()
                        .ok_or_else(|| err(ErrorKind::Eval(format!("missing dict key: {k}")))),
                    _ => Err(err(ErrorKind::Eval(format!(
                        "cannot index {} with {}",
                        b.type_name(),
                        i.type_name()
                    )))),
                }
            }
            ExprKind::Attr(base, attr) => {
                // `EnumType.VARIANT` when the base name is an unbound enum.
                if let ExprKind::Name(n) = &base.kind {
                    if self.lookup(n, module, locals).is_none() {
                        if let Some(e) = self.schemas.get_enum(n) {
                            return e.variant(attr).ok_or_else(|| {
                                err(ErrorKind::Eval(format!("enum {n} has no variant {attr}")))
                            });
                        }
                    }
                }
                let b = self.eval(base, module, locals)?;
                match &b {
                    Value::Struct(s) => s.get(attr).cloned().ok_or_else(|| {
                        err(ErrorKind::Eval(format!(
                            "struct {} has no field {attr}",
                            s.type_name
                        )))
                    }),
                    Value::Enum(e) if attr == "name" => Ok(Value::str(&e.variant)),
                    Value::Enum(e) if attr == "value" => Ok(Value::Int(e.number)),
                    other => Err(err(ErrorKind::Eval(format!(
                        "cannot access attribute {attr} on {}",
                        other.type_name()
                    )))),
                }
            }
            ExprKind::Call {
                callee,
                args,
                kwargs,
            } => {
                let f = self.eval(callee, module, locals)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, module, locals)?);
                }
                let mut kwargv = Vec::with_capacity(kwargs.len());
                for (k, v) in kwargs {
                    kwargv.push((k.clone(), self.eval(v, module, locals)?));
                }
                match f {
                    Value::Func(func) => self.call_func(&func, argv, kwargv, &path, expr.line),
                    Value::Builtin(name) => {
                        self.call_builtin(name, argv, kwargv, module, &path, expr.line)
                    }
                    other => Err(err(ErrorKind::Eval(format!(
                        "cannot call a {}",
                        other.type_name()
                    )))),
                }
            }
        }
    }

    fn call_func(
        &mut self,
        f: &FuncValue,
        args: Vec<Value>,
        kwargs: Vec<(String, Value)>,
        path: &str,
        line: u32,
    ) -> Result<Value> {
        let err = |kind: ErrorKind| CdslError::new(kind, path, line);
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            self.depth -= 1;
            return Err(err(ErrorKind::Budget(format!(
                "call depth exceeded {} in {}",
                self.limits.max_depth, f.def.name
            ))));
        }
        let mut locals = Scope::new();
        if args.len() > f.def.params.len() {
            self.depth -= 1;
            return Err(err(ErrorKind::Eval(format!(
                "{} takes at most {} arguments, got {}",
                f.def.name,
                f.def.params.len(),
                args.len()
            ))));
        }
        for (i, a) in args.into_iter().enumerate() {
            locals.insert(f.def.params[i].name.clone(), a);
        }
        for (k, v) in kwargs {
            if !f.def.params.iter().any(|p| p.name == k) {
                self.depth -= 1;
                return Err(err(ErrorKind::Eval(format!(
                    "{} has no parameter {k}",
                    f.def.name
                ))));
            }
            if locals.contains_key(&k) {
                self.depth -= 1;
                return Err(err(ErrorKind::Eval(format!(
                    "duplicate value for parameter {k} of {}",
                    f.def.name
                ))));
            }
            locals.insert(k, v);
        }
        for p in &f.def.params {
            if !locals.contains_key(&p.name) {
                match &p.default {
                    Some(d) => {
                        let v = self.eval(d, f.module, None)?;
                        locals.insert(p.name.clone(), v);
                    }
                    None => {
                        self.depth -= 1;
                        return Err(err(ErrorKind::Eval(format!(
                            "missing argument {} for {}",
                            p.name, f.def.name
                        ))));
                    }
                }
            }
        }
        let result = self.exec_stmts(&f.def.body.clone(), f.module, Some(&mut locals));
        self.depth -= 1;
        match result? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::Null),
        }
    }

    fn eval_bin(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        module: usize,
        locals: Option<&Scope>,
    ) -> Result<Value> {
        let path = self.module_paths[module].clone();
        let line = lhs.line;
        let err = |m: String| CdslError::new(ErrorKind::Eval(m), &path, line);
        // Short-circuit operators first.
        match op {
            BinOp::And => {
                let l = self.eval(lhs, module, locals)?;
                return if l.truthy() {
                    self.eval(rhs, module, locals)
                } else {
                    Ok(l)
                };
            }
            BinOp::Or => {
                let l = self.eval(lhs, module, locals)?;
                return if l.truthy() {
                    Ok(l)
                } else {
                    self.eval(rhs, module, locals)
                };
            }
            _ => {}
        }
        let l = self.eval(lhs, module, locals)?;
        let r = self.eval(rhs, module, locals)?;
        let num = |v: &Value| -> Option<f64> {
            match v {
                Value::Int(i) => Some(*i as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            }
        };
        match op {
            BinOp::Add => match (&l, &r) {
                (Value::Int(a), Value::Int(b)) => a
                    .checked_add(*b)
                    .map(Value::Int)
                    .ok_or_else(|| err("integer overflow in +".into())),
                (Value::Str(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
                (Value::List(a), Value::List(b)) => {
                    let mut out = a.to_vec();
                    out.extend(b.iter().cloned());
                    Ok(Value::list(out))
                }
                _ => match (num(&l), num(&r)) {
                    (Some(a), Some(b)) => Ok(Value::Float(a + b)),
                    _ => Err(err(format!(
                        "cannot add {} and {}",
                        l.type_name(),
                        r.type_name()
                    ))),
                },
            },
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                match (&l, &r, op) {
                    (Value::Int(a), Value::Int(b), BinOp::Sub) => {
                        return a
                            .checked_sub(*b)
                            .map(Value::Int)
                            .ok_or_else(|| err("integer overflow in -".into()));
                    }
                    (Value::Int(a), Value::Int(b), BinOp::Mul) => {
                        return a
                            .checked_mul(*b)
                            .map(Value::Int)
                            .ok_or_else(|| err("integer overflow in *".into()));
                    }
                    (Value::Int(a), Value::Int(b), BinOp::Mod) => {
                        return if *b == 0 {
                            Err(err("modulo by zero".into()))
                        } else {
                            Ok(Value::Int(a.rem_euclid(*b)))
                        };
                    }
                    _ => {}
                }
                match (num(&l), num(&r)) {
                    (Some(a), Some(b)) => match op {
                        BinOp::Sub => Ok(Value::Float(a - b)),
                        BinOp::Mul => Ok(Value::Float(a * b)),
                        BinOp::Div => {
                            if b == 0.0 {
                                Err(err("division by zero".into()))
                            } else {
                                Ok(Value::Float(a / b))
                            }
                        }
                        BinOp::Mod => {
                            if b == 0.0 {
                                Err(err("modulo by zero".into()))
                            } else {
                                Ok(Value::Float(a.rem_euclid(b)))
                            }
                        }
                        _ => unreachable!("handled above"),
                    },
                    _ => Err(err(format!(
                        "numeric operator on {} and {}",
                        l.type_name(),
                        r.type_name()
                    ))),
                }
            }
            BinOp::Eq => Ok(Value::Bool(l == r)),
            BinOp::Ne => Ok(Value::Bool(l != r)),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let ord = match (&l, &r) {
                    (Value::Str(a), Value::Str(b)) => a.cmp(b),
                    _ => match (num(&l), num(&r)) {
                        (Some(a), Some(b)) => a
                            .partial_cmp(&b)
                            .ok_or_else(|| err("cannot order NaN".into()))?,
                        _ => {
                            return Err(err(format!(
                                "cannot order {} and {}",
                                l.type_name(),
                                r.type_name()
                            )))
                        }
                    },
                };
                let b = match op {
                    BinOp::Lt => ord.is_lt(),
                    BinOp::Le => ord.is_le(),
                    BinOp::Gt => ord.is_gt(),
                    BinOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                };
                Ok(Value::Bool(b))
            }
            BinOp::In => match (&l, &r) {
                (v, Value::List(items)) => Ok(Value::Bool(items.contains(v))),
                (Value::Str(k), Value::Dict(d)) => Ok(Value::Bool(d.contains_key(&**k))),
                (Value::Str(needle), Value::Str(hay)) => Ok(Value::Bool(hay.contains(&**needle))),
                _ => Err(err(format!(
                    "cannot test {} in {}",
                    l.type_name(),
                    r.type_name()
                ))),
            },
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    /// Constructs a schema struct: type-checks fields, fills defaults,
    /// rejects unknown or missing fields.
    fn build_struct(
        &mut self,
        name: &str,
        given: Vec<(String, Value)>,
        path: &str,
        line: u32,
    ) -> Result<Value> {
        let err = |m: String| CdslError::new(ErrorKind::Type(m), path, line);
        let def: StructDef = match self.schemas.get(name) {
            Some(TypeDef::Struct(s)) => s.clone(),
            Some(TypeDef::Enum(_)) => return Err(err(format!("{name} is an enum, not a struct"))),
            None => return Err(err(format!("unknown struct type: {name}"))),
        };
        for (fname, _) in &given {
            if !def.fields.iter().any(|f| f.name == *fname) {
                return Err(err(format!("struct {name} has no field {fname}")));
            }
        }
        let mut fields = Vec::with_capacity(def.fields.len());
        for fdef in &def.fields {
            let provided = given.iter().find(|(n, _)| *n == fdef.name);
            let value = match provided {
                Some((_, v)) => self.coerce(v.clone(), &fdef.ty, &fdef.name, name, path, line)?,
                None => match &fdef.default {
                    Some(d) => self.coerce(d.clone(), &fdef.ty, &fdef.name, name, path, line)?,
                    None if fdef.optional => Value::Null,
                    None => {
                        return Err(err(format!(
                            "missing required field {} of struct {name}",
                            fdef.name
                        )))
                    }
                },
            };
            fields.push((fdef.name.clone(), value));
        }
        Ok(Value::Struct(Arc::new(StructValue {
            type_name: name.to_string(),
            fields,
        })))
    }

    /// Checks and coerces `v` to type `ty`.
    fn coerce(
        &mut self,
        v: Value,
        ty: &Type,
        field: &str,
        in_struct: &str,
        path: &str,
        line: u32,
    ) -> Result<Value> {
        let mismatch = |v: &Value| {
            CdslError::new(
                ErrorKind::Type(format!(
                    "field {in_struct}.{field}: expected {}, found {}",
                    ty.render(),
                    v.type_name()
                )),
                path,
                line,
            )
        };
        match (ty, v) {
            (Type::Bool, v @ Value::Bool(_)) => Ok(v),
            (Type::I32, Value::Int(i)) => {
                if i32::try_from(i).is_ok() {
                    Ok(Value::Int(i))
                } else {
                    Err(CdslError::new(
                        ErrorKind::Type(format!(
                            "field {in_struct}.{field}: {i} out of range for i32"
                        )),
                        path,
                        line,
                    ))
                }
            }
            (Type::I64, v @ Value::Int(_)) => Ok(v),
            (Type::Double, Value::Int(i)) => Ok(Value::Float(i as f64)),
            (Type::Double, v @ Value::Float(_)) => Ok(v),
            (Type::String, v @ Value::Str(_)) => Ok(v),
            (Type::List(inner), Value::List(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items.iter() {
                    out.push(self.coerce(item.clone(), inner, field, in_struct, path, line)?);
                }
                Ok(Value::list(out))
            }
            (Type::Map(inner), Value::Dict(map)) => {
                let mut out = BTreeMap::new();
                for (k, item) in map.iter() {
                    out.insert(
                        k.clone(),
                        self.coerce(item.clone(), inner, field, in_struct, path, line)?,
                    );
                }
                Ok(Value::dict(out))
            }
            (Type::Named(tname), v) => match self.schemas.get(tname) {
                Some(TypeDef::Enum(e)) => match &v {
                    Value::Enum(ev) if ev.enum_name == *tname => Ok(v),
                    // A bare string (e.g. a schema default) resolves to the
                    // variant of that name.
                    Value::Str(s) => e.variant(s).ok_or_else(|| {
                        CdslError::new(
                            ErrorKind::Type(format!(
                                "field {in_struct}.{field}: enum {tname} has no variant {s}"
                            )),
                            path,
                            line,
                        )
                    }),
                    other => Err(mismatch(other)),
                },
                Some(TypeDef::Struct(_)) => match &v {
                    Value::Struct(sv) if sv.type_name == *tname => Ok(v),
                    other => Err(mismatch(other)),
                },
                None => Err(CdslError::new(
                    ErrorKind::Type(format!("field {in_struct}.{field}: unknown type {tname}")),
                    path,
                    line,
                )),
            },
            (_, other) => Err(mismatch(&other)),
        }
    }

    fn call_builtin(
        &mut self,
        name: &str,
        args: Vec<Value>,
        kwargs: Vec<(String, Value)>,
        module: usize,
        path: &str,
        line: u32,
    ) -> Result<Value> {
        let err = |m: String| CdslError::new(ErrorKind::Eval(m), path, line);
        if !kwargs.is_empty() {
            return Err(err(format!("builtin {name} takes no keyword arguments")));
        }
        let arity = |want: std::ops::RangeInclusive<usize>| -> Result<()> {
            if want.contains(&args.len()) {
                Ok(())
            } else {
                Err(err(format!(
                    "builtin {name} expects {}..={} arguments, got {}",
                    want.start(),
                    want.end(),
                    args.len()
                )))
            }
        };
        match name {
            "export_if_last" => {
                arity(1..=1)?;
                if self.entry == Some(module) {
                    if self.exported.is_some() {
                        return Err(CdslError::new(
                            ErrorKind::Export("config exported more than once".into()),
                            path,
                            line,
                        ));
                    }
                    self.exported = Some(args.into_iter().next().expect("arity"));
                }
                Ok(Value::Null)
            }
            "require" => {
                arity(1..=2)?;
                let mut it = args.into_iter();
                let cond = it.next().expect("arity");
                let msg = it
                    .next()
                    .map(|m| m.to_string())
                    .unwrap_or_else(|| "requirement failed".to_string());
                if cond.truthy() {
                    Ok(Value::Null)
                } else {
                    Err(CdslError::new(ErrorKind::Validation(msg), path, line))
                }
            }
            "fail" => {
                arity(1..=1)?;
                Err(err(args[0].to_string()))
            }
            "len" => {
                arity(1..=1)?;
                match &args[0] {
                    Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                    Value::List(l) => Ok(Value::Int(l.len() as i64)),
                    Value::Dict(d) => Ok(Value::Int(d.len() as i64)),
                    Value::Struct(s) => Ok(Value::Int(s.fields.len() as i64)),
                    other => Err(err(format!("len of {}", other.type_name()))),
                }
            }
            "str" => {
                arity(1..=1)?;
                Ok(Value::str(args[0].to_string()))
            }
            "int" => {
                arity(1..=1)?;
                match &args[0] {
                    Value::Int(i) => Ok(Value::Int(*i)),
                    Value::Float(f) => Ok(Value::Int(*f as i64)),
                    Value::Bool(b) => Ok(Value::Int(*b as i64)),
                    Value::Str(s) => s
                        .trim()
                        .parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| err(format!("cannot parse {s:?} as int"))),
                    Value::Enum(e) => Ok(Value::Int(e.number)),
                    other => Err(err(format!("int of {}", other.type_name()))),
                }
            }
            "float" => {
                arity(1..=1)?;
                match &args[0] {
                    Value::Int(i) => Ok(Value::Float(*i as f64)),
                    Value::Float(f) => Ok(Value::Float(*f)),
                    Value::Str(s) => s
                        .trim()
                        .parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| err(format!("cannot parse {s:?} as float"))),
                    other => Err(err(format!("float of {}", other.type_name()))),
                }
            }
            "range" => {
                arity(1..=2)?;
                let (lo, hi) = match (args.first(), args.get(1)) {
                    (Some(Value::Int(n)), None) => (0, *n),
                    (Some(Value::Int(a)), Some(Value::Int(b))) => (*a, *b),
                    _ => return Err(err("range expects integer arguments".into())),
                };
                if hi - lo > self.limits.max_range {
                    return Err(CdslError::new(
                        ErrorKind::Budget(format!("range too large: {}", hi - lo)),
                        path,
                        line,
                    ));
                }
                Ok(Value::list((lo..hi).map(Value::Int).collect()))
            }
            "min" | "max" => {
                let items: Vec<Value> = if args.len() == 1 {
                    match &args[0] {
                        Value::List(l) => l.to_vec(),
                        _ => args.clone(),
                    }
                } else {
                    args.clone()
                };
                if items.is_empty() {
                    return Err(err(format!("{name} of empty sequence")));
                }
                let mut best = items[0].clone();
                for v in &items[1..] {
                    let swap = match (vnum(v), vnum(&best)) {
                        (Some(a), Some(b)) => {
                            if name == "min" {
                                a < b
                            } else {
                                a > b
                            }
                        }
                        _ => match (v, &best) {
                            (Value::Str(a), Value::Str(b)) => {
                                if name == "min" {
                                    a < b
                                } else {
                                    a > b
                                }
                            }
                            _ => return Err(err(format!("{name} of mixed types"))),
                        },
                    };
                    if swap {
                        best = v.clone();
                    }
                }
                Ok(best)
            }
            "abs" => {
                arity(1..=1)?;
                match &args[0] {
                    Value::Int(i) => Ok(Value::Int(i.abs())),
                    Value::Float(f) => Ok(Value::Float(f.abs())),
                    other => Err(err(format!("abs of {}", other.type_name()))),
                }
            }
            "sum" => {
                arity(1..=1)?;
                match &args[0] {
                    Value::List(l) => {
                        let mut acc_i: i64 = 0;
                        let mut acc_f: f64 = 0.0;
                        let mut is_float = false;
                        for v in l.iter() {
                            match v {
                                Value::Int(i) => acc_i += i,
                                Value::Float(f) => {
                                    is_float = true;
                                    acc_f += f;
                                }
                                other => {
                                    return Err(err(format!(
                                        "sum of list containing {}",
                                        other.type_name()
                                    )))
                                }
                            }
                        }
                        if is_float {
                            Ok(Value::Float(acc_f + acc_i as f64))
                        } else {
                            Ok(Value::Int(acc_i))
                        }
                    }
                    other => Err(err(format!("sum of {}", other.type_name()))),
                }
            }
            "sorted" => {
                arity(1..=1)?;
                match &args[0] {
                    Value::List(l) => {
                        let mut items = l.to_vec();
                        let mut bad = None;
                        items.sort_by(|a, b| match (vnum(a), vnum(b)) {
                            (Some(x), Some(y)) => {
                                x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
                            }
                            _ => match (a, b) {
                                (Value::Str(x), Value::Str(y)) => x.cmp(y),
                                _ => {
                                    bad = Some(());
                                    std::cmp::Ordering::Equal
                                }
                            },
                        });
                        if bad.is_some() {
                            return Err(err("sorted of mixed types".into()));
                        }
                        Ok(Value::list(items))
                    }
                    other => Err(err(format!("sorted of {}", other.type_name()))),
                }
            }
            "keys" => {
                arity(1..=1)?;
                match &args[0] {
                    Value::Dict(d) => Ok(Value::list(d.keys().map(Value::str).collect())),
                    Value::Struct(s) => Ok(Value::list(
                        s.fields.iter().map(|(k, _)| Value::str(k)).collect(),
                    )),
                    other => Err(err(format!("keys of {}", other.type_name()))),
                }
            }
            "values" => {
                arity(1..=1)?;
                match &args[0] {
                    Value::Dict(d) => Ok(Value::list(d.values().cloned().collect())),
                    Value::Struct(s) => Ok(Value::list(
                        s.fields.iter().map(|(_, v)| v.clone()).collect(),
                    )),
                    other => Err(err(format!("values of {}", other.type_name()))),
                }
            }
            "append" => {
                arity(2..=2)?;
                match &args[0] {
                    Value::List(l) => {
                        let mut out = l.to_vec();
                        out.push(args[1].clone());
                        Ok(Value::list(out))
                    }
                    other => Err(err(format!("append to {}", other.type_name()))),
                }
            }
            "merge" => {
                arity(2..=2)?;
                match (&args[0], &args[1]) {
                    (Value::Dict(a), Value::Dict(b)) => {
                        let mut out = (**a).clone();
                        for (k, v) in b.iter() {
                            out.insert(k.clone(), v.clone());
                        }
                        Ok(Value::dict(out))
                    }
                    _ => Err(err("merge expects two dicts".into())),
                }
            }
            "get" => {
                arity(2..=3)?;
                match (&args[0], &args[1]) {
                    (Value::Dict(d), Value::Str(k)) => Ok(d
                        .get(&**k)
                        .cloned()
                        .or_else(|| args.get(2).cloned())
                        .unwrap_or(Value::Null)),
                    (Value::Struct(s), Value::Str(k)) => Ok(s
                        .get(k)
                        .cloned()
                        .or_else(|| args.get(2).cloned())
                        .unwrap_or(Value::Null)),
                    _ => Err(err("get expects (dict, string, [default])".into())),
                }
            }
            "has" => {
                arity(2..=2)?;
                match (&args[0], &args[1]) {
                    (Value::Dict(d), Value::Str(k)) => Ok(Value::Bool(d.contains_key(&**k))),
                    (Value::Struct(s), Value::Str(k)) => Ok(Value::Bool(s.get(k).is_some())),
                    _ => Err(err("has expects (dict|struct, string)".into())),
                }
            }
            "join" => {
                arity(2..=2)?;
                match (&args[0], &args[1]) {
                    (Value::List(l), Value::Str(sep)) => {
                        let parts: Vec<String> = l.iter().map(|v| v.to_string()).collect();
                        Ok(Value::str(parts.join(sep)))
                    }
                    _ => Err(err("join expects (list, string)".into())),
                }
            }
            "split" => {
                arity(2..=2)?;
                match (&args[0], &args[1]) {
                    (Value::Str(s), Value::Str(sep)) if !sep.is_empty() => {
                        Ok(Value::list(s.split(&**sep).map(Value::str).collect()))
                    }
                    _ => Err(err("split expects (string, nonempty string)".into())),
                }
            }
            "upper" => {
                arity(1..=1)?;
                match &args[0] {
                    Value::Str(s) => Ok(Value::str(s.to_uppercase())),
                    other => Err(err(format!("upper of {}", other.type_name()))),
                }
            }
            "lower" => {
                arity(1..=1)?;
                match &args[0] {
                    Value::Str(s) => Ok(Value::str(s.to_lowercase())),
                    other => Err(err(format!("lower of {}", other.type_name()))),
                }
            }
            "startswith" | "endswith" => {
                arity(2..=2)?;
                match (&args[0], &args[1]) {
                    (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(if name == "startswith" {
                        s.starts_with(&**p)
                    } else {
                        s.ends_with(&**p)
                    })),
                    _ => Err(err(format!("{name} expects two strings"))),
                }
            }
            "type" => {
                arity(1..=1)?;
                match &args[0] {
                    Value::Struct(s) => Ok(Value::str(&s.type_name)),
                    other => Ok(Value::str(other.type_name())),
                }
            }
            other => Err(err(format!("unknown builtin: {other}"))),
        }
    }
}

fn vnum(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Names resolvable as builtin functions.
pub const BUILTINS: &[&str] = &[
    "export_if_last",
    "require",
    "fail",
    "len",
    "str",
    "int",
    "float",
    "range",
    "min",
    "max",
    "abs",
    "sum",
    "sorted",
    "keys",
    "values",
    "append",
    "merge",
    "get",
    "has",
    "join",
    "split",
    "upper",
    "lower",
    "startswith",
    "endswith",
    "type",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)], entry: &str) -> Result<Value> {
        let mut loader = BTreeMap::new();
        for (p, s) in files {
            loader.insert(p.to_string(), s.to_string());
        }
        let mut interp = Interp::new(&loader, Limits::default());
        interp.run_entry(entry)?;
        interp
            .exported()
            .cloned()
            .ok_or_else(|| CdslError::nowhere(ErrorKind::Export("nothing exported".into())))
    }

    fn run_one(src: &str) -> Result<Value> {
        run(&[("main.cconf", src)], "main.cconf")
    }

    #[test]
    fn arithmetic_and_export() {
        let v = run_one("x = 1 + 2 * 3\nexport_if_last(x)").unwrap();
        assert_eq!(v, Value::Int(7));
    }

    #[test]
    fn string_and_list_operations() {
        let v = run_one("export_if_last(\"a\" + \"b\")").unwrap();
        assert_eq!(v, Value::str("ab"));
        let v = run_one("export_if_last([1] + [2, 3])").unwrap();
        assert_eq!(
            v,
            Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn functions_defaults_and_kwargs() {
        let src = r#"
def make(name, port=8089, replicas=3):
    return {"name": name, "port": port, "replicas": replicas}

export_if_last(make("cache", replicas=5))
"#;
        let v = run_one(src).unwrap();
        assert_eq!(v.to_json(), r#"{"name":"cache","port":8089,"replicas":5}"#);
    }

    #[test]
    fn control_flow() {
        let src = r#"
total = 0
for i in range(5):
    if i % 2 == 0:
        total = total + i
export_if_last(total)
"#;
        assert_eq!(run_one(src).unwrap(), Value::Int(6));
    }

    #[test]
    fn conditional_expression_and_bool_ops() {
        assert_eq!(
            run_one("export_if_last(1 if true and not false else 2)").unwrap(),
            Value::Int(1)
        );
        // `or` returns the first truthy operand, Python-style.
        assert_eq!(run_one("export_if_last(null or 5)").unwrap(), Value::Int(5));
    }

    #[test]
    fn import_copies_bindings() {
        let files = [
            ("app_port.cinc", "APP_PORT = 8089"),
            (
                "app.cconf",
                "import \"app_port.cinc\"\nexport_if_last({\"port\": APP_PORT})",
            ),
        ];
        let v = run(&files, "app.cconf").unwrap();
        assert_eq!(v.to_json(), r#"{"port":8089}"#);
    }

    #[test]
    fn imported_module_export_is_ignored() {
        let files = [
            ("lib.cinc", "export_if_last(\"not me\")\nHELPER = 1"),
            ("main.cconf", "import \"lib.cinc\"\nexport_if_last(HELPER)"),
        ];
        assert_eq!(run(&files, "main.cconf").unwrap(), Value::Int(1));
    }

    #[test]
    fn double_export_rejected() {
        let e = run_one("export_if_last(1)\nexport_if_last(2)").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Export(_)));
    }

    #[test]
    fn import_cycle_detected() {
        let files = [
            ("a.cinc", "import \"b.cinc\""),
            ("b.cinc", "import \"a.cinc\""),
            ("main.cconf", "import \"a.cinc\"\nexport_if_last(1)"),
        ];
        let e = run(&files, "main.cconf").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::ImportCycle(_)));
    }

    #[test]
    fn missing_import_reported() {
        let e = run_one("import \"ghost.cinc\"\nexport_if_last(1)").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::MissingSource(_)));
    }

    #[test]
    fn deps_are_transitive() {
        let files = [
            ("a.cinc", "import \"b.cinc\"\nA = B + 1"),
            ("b.cinc", "B = 1"),
            ("main.cconf", "import \"a.cinc\"\nexport_if_last(A)"),
        ];
        let mut loader = BTreeMap::new();
        for (p, s) in files {
            loader.insert(p.to_string(), s.to_string());
        }
        let mut interp = Interp::new(&loader, Limits::default());
        interp.run_entry("main.cconf").unwrap();
        let deps: Vec<&str> = interp.deps().iter().map(String::as_str).collect();
        assert_eq!(deps, vec!["a.cinc", "b.cinc"]);
        assert_eq!(interp.exported(), Some(&Value::Int(2)));
    }

    const JOB_SCHEMA: &str = r#"
enum JobKind { BATCH = 0, SERVICE = 1 }
struct Job {
    1: string name
    2: optional i64 memory_mb = 1024
    3: list<i64> ports
    4: JobKind kind = BATCH
}
"#;

    fn job_files(main: &str) -> Vec<(String, String)> {
        vec![
            ("job.schema".to_string(), JOB_SCHEMA.to_string()),
            ("main.cconf".to_string(), main.to_string()),
        ]
    }

    fn run_job(main: &str) -> Result<Value> {
        let files: Vec<(String, String)> = job_files(main);
        let refs: Vec<(&str, &str)> = files
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        run(&refs, "main.cconf")
    }

    #[test]
    fn struct_construction_fills_defaults_in_schema_order() {
        let v = run_job(
            "schema \"job.schema\"\nexport_if_last(Job { name: \"cache\", ports: [80, 81] })",
        )
        .unwrap();
        assert_eq!(
            v.to_json(),
            r#"{"name":"cache","memory_mb":1024,"ports":[80,81],"kind":"BATCH"}"#
        );
    }

    #[test]
    fn struct_unknown_field_rejected() {
        let e = run_job(
            "schema \"job.schema\"\nexport_if_last(Job { name: \"x\", ports: [], bogus: 1 })",
        )
        .unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Type(_)), "{e}");
    }

    #[test]
    fn struct_missing_required_rejected() {
        let e = run_job("schema \"job.schema\"\nexport_if_last(Job { ports: [] })").unwrap_err();
        assert!(e.to_string().contains("missing required field name"));
    }

    #[test]
    fn struct_type_mismatch_rejected() {
        let e = run_job("schema \"job.schema\"\nexport_if_last(Job { name: 5, ports: [] })")
            .unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Type(_)));
        let e =
            run_job("schema \"job.schema\"\nexport_if_last(Job { name: \"x\", ports: [\"p\"] })")
                .unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Type(_)));
    }

    #[test]
    fn enum_access_and_field_read() {
        let src = r#"
schema "job.schema"
j = Job { name: "svc", ports: [1], kind: JobKind.SERVICE }
export_if_last({"kind": j.kind, "mem": j.memory_mb})
"#;
        let v = run_job(src).unwrap();
        assert_eq!(v.to_json(), r#"{"kind":"SERVICE","mem":1024}"#);
    }

    #[test]
    fn require_builtin_raises_validation() {
        let e = run_one("require(1 > 2, \"nope\")").unwrap_err();
        assert!(e.is_validation());
        assert_eq!(e.message(), "nope");
        assert!(run_one("require(true)\nexport_if_last(1)").is_ok());
    }

    #[test]
    fn step_budget_stops_infinite_recursion() {
        let src = "def f(x):\n    return f(x)\nexport_if_last(f(1))";
        let e = run_one(src).unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Budget(_)));
    }

    #[test]
    fn huge_range_rejected() {
        let e = run_one("export_if_last(range(100000000))").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Budget(_)));
    }

    #[test]
    fn builtins_suite() {
        let cases: &[(&str, &str)] = &[
            ("len([1,2,3])", "3"),
            ("len(\"abc\")", "3"),
            ("str(12)", "\"12\""),
            ("int(\"42\")", "42"),
            ("int(3.9)", "3"),
            ("float(2)", "2.0"),
            ("min([3,1,2])", "1"),
            ("max(3, 7)", "7"),
            ("abs(-4)", "4"),
            ("sum([1,2,3])", "6"),
            ("sorted([3,1,2])", "[1,2,3]"),
            ("keys({\"b\":1,\"a\":2})", "[\"a\",\"b\"]"),
            ("append([1], 2)", "[1,2]"),
            ("merge({\"a\":1}, {\"b\":2})", "{\"a\":1,\"b\":2}"),
            ("get({\"a\":1}, \"b\", 9)", "9"),
            ("has({\"a\":1}, \"a\")", "true"),
            ("join([1,2], \"-\")", "\"1-2\""),
            ("split(\"a,b\", \",\")", "[\"a\",\"b\"]"),
            ("upper(\"ab\")", "\"AB\""),
            ("startswith(\"abc\", \"ab\")", "true"),
            ("type([1])", "\"list\""),
            ("\"b\" in {\"b\": 1}", "true"),
            ("2 in [1,2]", "true"),
            ("\"bc\" in \"abcd\"", "true"),
            ("5 not in [1,2]", "true"),
        ];
        for (expr, expected) in cases {
            let v = run_one(&format!("export_if_last({expr})")).unwrap();
            assert_eq!(v.to_json(), *expected, "case: {expr}");
        }
    }

    #[test]
    fn division_semantics() {
        assert_eq!(run_one("export_if_last(7 / 2)").unwrap(), Value::Float(3.5));
        assert!(run_one("export_if_last(1 / 0)").is_err());
        assert_eq!(run_one("export_if_last(7 % 3)").unwrap(), Value::Int(1));
        assert_eq!(run_one("export_if_last(-7 % 3)").unwrap(), Value::Int(2));
    }

    #[test]
    fn negative_list_index() {
        assert_eq!(
            run_one("export_if_last([1,2,3][-1])").unwrap(),
            Value::Int(3)
        );
        assert!(run_one("export_if_last([1][5])").is_err());
    }

    #[test]
    fn undefined_name_reports_location() {
        let e = run_one("x = 1\ny = x + missing").unwrap_err();
        assert_eq!(e.location.line, 2);
        assert!(e.message().contains("missing"));
    }

    #[test]
    fn call_global_invokes_validator_style_function() {
        let files = [(
            "v.cvalidator",
            "def validate(cfg):\n    require(cfg[\"x\"] > 0, \"x must be positive\")",
        )];
        let mut loader = BTreeMap::new();
        for (p, s) in files {
            loader.insert(p.to_string(), s.to_string());
        }
        let mut interp = Interp::new(&loader, Limits::default());
        let m = interp.run_module("v.cvalidator").unwrap();
        let mut ok = BTreeMap::new();
        ok.insert("x".to_string(), Value::Int(5));
        assert!(interp
            .call_global(m, "validate", &[Value::dict(ok)])
            .is_ok());
        let mut bad = BTreeMap::new();
        bad.insert("x".to_string(), Value::Int(-1));
        let e = interp
            .call_global(m, "validate", &[Value::dict(bad)])
            .unwrap_err();
        assert!(e.is_validation());
    }

    #[test]
    fn integer_overflow_detected() {
        let e = run_one("export_if_last(9223372036854775807 + 1)").unwrap_err();
        assert!(e.message().contains("overflow"));
    }
}
