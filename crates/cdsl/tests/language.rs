//! Black-box tests of the CDSL language through the public compiler API:
//! realistic config programs, error reporting, and the paper's authoring
//! patterns (Figure 2, §3.1).

use std::collections::BTreeMap;

use cdsl::compile::Compiler;
use cdsl::{CdslError, ErrorKind};

fn files(entries: &[(&str, &str)]) -> BTreeMap<String, String> {
    entries
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

fn compile(fs: &BTreeMap<String, String>, entry: &str) -> Result<String, CdslError> {
    Compiler::new(fs).compile(entry).map(|o| o.json)
}

#[test]
fn three_team_config_composition() {
    // §3.1: "Hypothetically, three different teams may be involved":
    // scheduler (schema + module + validator), cache, and security.
    let fs = files(&[
        (
            "scheduler/job.schema",
            "enum Tier { BRONZE, SILVER, GOLD }\n\
             struct Job {\n  1: string name\n  2: i64 memory_mb = 1024\n\
             \x20 3: list<string> tags\n  4: Tier tier = BRONZE\n  5: map<string, string> env\n}",
        ),
        (
            "scheduler/job.cvalidator",
            "def validate(cfg):\n\
             \x20   require(len(cfg.name) > 0, \"name required\")\n\
             \x20   require(cfg.memory_mb >= 128 and cfg.memory_mb <= 65536, \"memory out of range\")\n\
             \x20   require(\"team\" in cfg.env, \"env.team required\")\n",
        ),
        (
            "scheduler/create_job.cinc",
            "schema \"scheduler/job.schema\"\n\
             def create_job(name, team, memory_mb=1024, tags=[]):\n\
             \x20   return Job {\n\
             \x20       name: name,\n\
             \x20       memory_mb: memory_mb,\n\
             \x20       tags: tags + [\"managed\"],\n\
             \x20       env: {\"team\": team},\n\
             \x20   }\n",
        ),
        (
            "cache/job.cconf",
            "import \"scheduler/create_job.cinc\"\n\
             export_if_last(create_job(\"cache\", \"cache-team\", memory_mb=4096, tags=[\"hot\"]))",
        ),
        (
            "security/job.cconf",
            "import \"scheduler/create_job.cinc\"\n\
             export_if_last(create_job(\"security\", \"sec-team\"))",
        ),
    ]);
    let cache = compile(&fs, "cache/job.cconf").unwrap();
    assert!(cache.contains("\"memory_mb\": 4096"));
    assert!(cache.contains("\"hot\""));
    assert!(cache.contains("\"managed\""));
    assert!(cache.contains("\"tier\": \"BRONZE\""));
    let security = compile(&fs, "security/job.cconf").unwrap();
    assert!(security.contains("\"memory_mb\": 1024"));

    // The shared validator protects every team's config.
    let mut broken = fs.clone();
    broken.insert(
        "cache/job.cconf".to_string(),
        "import \"scheduler/create_job.cinc\"\nexport_if_last(create_job(\"cache\", \"t\", memory_mb=1))"
            .to_string(),
    );
    let err = compile(&broken, "cache/job.cconf").unwrap_err();
    assert!(err.is_validation());
    assert!(err.message().contains("memory out of range"));
}

#[test]
fn computed_configs_with_loops_and_conditionals() {
    let fs = files(&[(
        "shards.cconf",
        "num_shards = 8\n\
         shards = []\n\
         for i in range(num_shards):\n\
         \x20   weight = 2 if i < 2 else 1\n\
         \x20   shards = append(shards, {\"id\": i, \"host\": \"shard-\" + str(i), \"weight\": weight})\n\
         export_if_last({\"shards\": shards, \"total_weight\": 2 * 2 + (num_shards - 2)})",
    )]);
    let json = compile(&fs, "shards.cconf").unwrap();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(v["shards"].as_array().unwrap().len(), 8);
    assert_eq!(v["shards"][0]["weight"], serde_json::json!(2));
    assert_eq!(v["shards"][7]["host"], serde_json::json!("shard-7"));
    assert_eq!(v["total_weight"], serde_json::json!(10));
}

#[test]
fn diamond_imports_evaluate_once() {
    // a imports b and c; both import base. base must execute once (its
    // bindings are shared), and the dependency list contains each file
    // once.
    let fs = files(&[
        ("base.cinc", "COUNTER = [1]\nVALUE = 10"),
        ("b.cinc", "import \"base.cinc\"\nB = VALUE + 1"),
        ("c.cinc", "import \"base.cinc\"\nC = VALUE + 2"),
        (
            "a.cconf",
            "import \"b.cinc\"\nimport \"c.cinc\"\nexport_if_last(B + C)",
        ),
    ]);
    let out = Compiler::new(&fs).compile("a.cconf").unwrap();
    assert_eq!(out.value.to_json(), "23");
    assert_eq!(out.deps, vec!["b.cinc", "base.cinc", "c.cinc"]);
}

#[test]
fn error_locations_point_at_the_right_file() {
    let fs = files(&[
        ("lib.cinc", "def helper(x):\n    return x + missing_name"),
        (
            "main.cconf",
            "import \"lib.cinc\"\nexport_if_last(helper(1))",
        ),
    ]);
    let err = compile(&fs, "main.cconf").unwrap_err();
    assert_eq!(err.location.path, "lib.cinc");
    assert_eq!(err.location.line, 2);
    assert!(matches!(err.kind, ErrorKind::Eval(_)));
}

#[test]
fn schema_type_errors_name_the_field() {
    let fs = files(&[
        ("t.schema", "struct T { 1: list<i64> xs }"),
        (
            "t.cconf",
            "schema \"t.schema\"\nexport_if_last(T { xs: [1, \"two\", 3] })",
        ),
    ]);
    let err = compile(&fs, "t.cconf").unwrap_err();
    assert!(matches!(err.kind, ErrorKind::Type(_)));
    assert!(err.message().contains("T.xs"), "{}", err.message());
}

#[test]
fn nested_structs_compose() {
    let fs = files(&[
        (
            "net.schema",
            "struct Endpoint { 1: string host 2: i64 port }\n\
             struct Service { 1: string name 2: Endpoint primary 3: optional Endpoint backup }",
        ),
        (
            "svc.cconf",
            "schema \"net.schema\"\n\
             def ep(host, port=443):\n\
             \x20   return Endpoint { host: host, port: port }\n\
             export_if_last(Service { name: \"api\", primary: ep(\"a.example\"), backup: ep(\"b.example\", port=8443) })",
        ),
    ]);
    let json = compile(&fs, "svc.cconf").unwrap();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(v["primary"]["port"], serde_json::json!(443));
    assert_eq!(v["backup"]["port"], serde_json::json!(8443));
    // Wrong nested type is rejected.
    let fs2 = files(&[
        (
            "net.schema",
            "struct Endpoint { 1: string host 2: i64 port }\n\
             struct Service { 1: string name 2: Endpoint primary }",
        ),
        (
            "svc.cconf",
            "schema \"net.schema\"\nexport_if_last(Service { name: \"api\", primary: {\"host\": \"x\"} })",
        ),
    ]);
    assert!(matches!(
        compile(&fs2, "svc.cconf").unwrap_err().kind,
        ErrorKind::Type(_)
    ));
}

#[test]
fn string_builtins_compose_for_config_generation() {
    let fs = files(&[(
        "hosts.cconf",
        "regions = [\"atn\", \"prn\", \"frc\"]\n\
         hosts = []\n\
         for r in regions:\n\
         \x20   if startswith(r, \"a\") or startswith(r, \"p\"):\n\
         \x20       hosts = append(hosts, upper(r) + \".example.com\")\n\
         export_if_last({\"hosts\": hosts, \"csv\": join(hosts, \",\")})",
    )]);
    let json = compile(&fs, "hosts.cconf").unwrap();
    assert!(json.contains("ATN.example.com"));
    assert!(json.contains("PRN.example.com"));
    assert!(!json.contains("FRC"));
    assert!(json.contains("ATN.example.com,PRN.example.com"));
}

#[test]
fn export_from_helper_function_in_entry_module_counts() {
    // export_if_last inside a function defined in the entry module fires;
    // the same call in an imported module does not.
    let fs = files(&[(
        "main.cconf",
        "def emit(v):\n    export_if_last(v)\nemit({\"ok\": true})",
    )]);
    assert_eq!(
        compile(&fs, "main.cconf").unwrap().trim(),
        "{\n  \"ok\": true\n}"
    );
    let fs = files(&[
        ("lib.cinc", "def emit(v):\n    export_if_last(v)"),
        (
            "main.cconf",
            "import \"lib.cinc\"\nemit({\"nope\": 1})\nexport_if_last({\"yes\": 1})",
        ),
    ]);
    let out = compile(&fs, "main.cconf").unwrap();
    assert!(
        out.contains("yes"),
        "imported module's export must not fire: {out}"
    );
}

#[test]
fn cross_repository_style_deep_imports() {
    // §3.6's example: a config importing from different partitions
    // ("feed/A.cinc", "tao/B.cinc") — paths are opaque to the compiler.
    let fs = files(&[
        ("feed/A.cinc", "A = {\"feed_weight\": 3}"),
        ("tao/B.cinc", "B = {\"tao_replicas\": 5}"),
        (
            "combined.cconf",
            "import \"feed/A.cinc\"\nimport \"tao/B.cinc\"\nexport_if_last(merge(A, B))",
        ),
    ]);
    let json = compile(&fs, "combined.cconf").unwrap();
    assert!(json.contains("feed_weight"));
    assert!(json.contains("tao_replicas"));
}
