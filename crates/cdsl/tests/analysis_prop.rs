//! Property tests for the static verifier (`cdsl::analysis`).
//!
//! Five hundred seeded random mutations of a small config corpus, checking
//! the three properties the commit gate depends on:
//!
//! 1. **Never panics** — whatever the mutation does to the source (parse
//!    errors, unbound names, truncated lines), `Verifier::verify` returns
//!    a report; it never takes the process down with it.
//! 2. **Zero false positives** — if the real compiler compiles and
//!    validates every entry of the mutated tree cleanly, the verifier
//!    reports no `Error`-severity finding (warnings are fine: they do not
//!    reject commits).
//! 3. **Byte-determinism** — two independent verifier runs over the same
//!    tree render byte-identical reports.
//!
//! Mutations target `.cconf` / `.cinc` files only. Schemas and validators
//! are the *specification* the verifier checks against — a mutated-partial
//! validator is a true positive by design (the `repro verify` experiment
//! covers those), so mutating them here would make property 2 vacuous.

use std::collections::BTreeMap;

use cdsl::compile::Compiler;
use cdsl::{Severity, Verifier};

/// Deterministic xorshift64* — the tests must replay identically forever.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const ENTRIES: [&str; 3] = ["app/t0.cconf", "app/t1.cconf", "app/t2.cconf"];

/// The base corpus. Module helper functions reference only their own
/// params and locals, and every entry statement executes at compile time —
/// so any name a mutation breaks statically is also broken dynamically,
/// which is exactly what makes property 2 falsifiable rather than vacuous.
fn base_corpus() -> BTreeMap<String, String> {
    let mut files = BTreeMap::new();
    files.insert(
        "shared/a.cinc".to_string(),
        "def a_f(x):\n    y = x + 3\n    return y * 2\nA_LIM = 40\nA_BASE = 100\n".to_string(),
    );
    files.insert(
        "shared/b.cinc".to_string(),
        "B_SCALE = 3\nB_NAMES = [\"red\", \"blue\"]\n".to_string(),
    );
    files.insert(
        "schemas/task.schema".to_string(),
        "struct Task { 1: string name 2: i64 weight = 10 3: optional list<string> tags }"
            .to_string(),
    );
    files.insert(
        "schemas/task.cvalidator".to_string(),
        "def validate(cfg):\n    require(cfg.weight >= 0, \"weight must be nonnegative\")\n"
            .to_string(),
    );
    files.insert(
        "app/t0.cconf".to_string(),
        "import \"shared/a.cinc\"\nschema \"schemas/task.schema\"\n\
         export_if_last(Task { name: \"t0\", weight: a_f(A_LIM) + A_BASE, tags: [\"red\"] })\n"
            .to_string(),
    );
    files.insert(
        "app/t1.cconf".to_string(),
        "import \"shared/b.cinc\"\nschema \"schemas/task.schema\"\n\
         export_if_last(Task { name: \"t1\", weight: B_SCALE * 7, tags: B_NAMES })\n"
            .to_string(),
    );
    files.insert(
        "app/t2.cconf".to_string(),
        "import \"shared/a.cinc\"\nimport \"shared/b.cinc\"\nschema \"schemas/task.schema\"\n\
         export_if_last(Task { name: \"t2\", weight: a_f(B_SCALE) + A_LIM })\n"
            .to_string(),
    );
    files
}

/// Applies one random mutation to one random `.cconf`/`.cinc` file.
fn mutate(files: &mut BTreeMap<String, String>, rng: &mut Rng) {
    let targets: Vec<String> = files
        .keys()
        .filter(|p| p.ends_with(".cconf") || p.ends_with(".cinc"))
        .cloned()
        .collect();
    let path = targets[rng.below(targets.len())].clone();
    let src = files.get(&path).unwrap().clone();
    let lines: Vec<&str> = src.lines().collect();
    let mutated = match rng.below(6) {
        // Tweak one digit.
        0 => {
            let digits: Vec<usize> = src
                .char_indices()
                .filter(|(_, c)| c.is_ascii_digit())
                .map(|(i, _)| i)
                .collect();
            if digits.is_empty() {
                return;
            }
            let at = digits[rng.below(digits.len())];
            let mut s = src.clone();
            s.replace_range(at..at + 1, &format!("{}", rng.below(10)));
            s
        }
        // Delete one line.
        1 => {
            let k = rng.below(lines.len());
            let mut kept: Vec<&str> = lines.clone();
            kept.remove(k);
            kept.join("\n") + "\n"
        }
        // Duplicate one line.
        2 => {
            let k = rng.below(lines.len());
            let mut v: Vec<&str> = lines.clone();
            v.insert(k, lines[k]);
            v.join("\n") + "\n"
        }
        // Swap two adjacent lines.
        3 => {
            if lines.len() < 2 {
                return;
            }
            let k = rng.below(lines.len() - 1);
            let mut v: Vec<&str> = lines.clone();
            v.swap(k, k + 1);
            v.join("\n") + "\n"
        }
        // Break one identifier reference (classic fat-fingered rename).
        4 => {
            let names = ["A_LIM", "A_BASE", "B_SCALE", "B_NAMES", "a_f"];
            let n = names[rng.below(names.len())];
            match src.find(n) {
                None => return,
                Some(at) => {
                    let mut s = src.clone();
                    s.replace_range(at..at + n.len(), &format!("{n}_typo"));
                    s
                }
            }
        }
        // Truncate the file mid-byte (torn write).
        _ => {
            if src.len() < 4 {
                return;
            }
            let cut = 1 + rng.below(src.len() - 1);
            if !src.is_char_boundary(cut) {
                return;
            }
            src[..cut].to_string()
        }
    };
    files.insert(path, mutated);
}

/// Whether the real compiler accepts every entry of the tree (compiles
/// AND validates clean) — the ground truth for the false-positive check.
fn compiles_clean(files: &BTreeMap<String, String>) -> bool {
    let compiler = Compiler::new(files);
    ENTRIES.iter().all(|e| compiler.compile(e).is_ok())
}

fn render(files: &BTreeMap<String, String>) -> String {
    let verifier = Verifier::new(files);
    let entries: Vec<String> = ENTRIES.iter().map(|s| s.to_string()).collect();
    format!("{}", verifier.verify(&entries))
}

#[test]
fn base_corpus_is_clean_under_compiler_and_verifier() {
    let files = base_corpus();
    assert!(compiles_clean(&files), "base corpus must compile");
    let verifier = Verifier::new(&files);
    let entries: Vec<String> = ENTRIES.iter().map(|s| s.to_string()).collect();
    let report = verifier.verify(&entries);
    assert!(
        !report.has_errors(),
        "base corpus must verify clean, got:\n{report}"
    );
}

#[test]
fn five_hundred_seeded_mutations_no_panic_no_false_positive_deterministic() {
    let mut rng = Rng(0x5EED_CD51);
    let mut clean_trees = 0usize;
    let mut rejected_trees = 0usize;
    for round in 0..500 {
        let mut files = base_corpus();
        // 1–3 stacked mutations: single-edit commits are the common case,
        // multi-edit commits shake out interactions between checks.
        for _ in 0..1 + rng.below(3) {
            mutate(&mut files, &mut rng);
        }

        // Property 1 (no panic) is implicit in the calls below; property 3
        // is the byte-equality of two independent runs.
        let a = render(&files);
        let b = render(&files);
        assert_eq!(a, b, "round {round}: verifier report is nondeterministic");

        // Property 2: a tree the compiler fully accepts must not carry a
        // single Error-severity finding.
        if compiles_clean(&files) {
            clean_trees += 1;
            let verifier = Verifier::new(&files);
            let entries: Vec<String> = ENTRIES.iter().map(|s| s.to_string()).collect();
            let report = verifier.verify(&entries);
            let errors: Vec<String> = report
                .findings
                .iter()
                .filter(|f| f.severity == Severity::Error)
                .map(|f| f.to_string())
                .collect();
            assert!(
                errors.is_empty(),
                "round {round}: false positive on a compile-clean tree:\n{}\ntree:\n{:?}",
                errors.join("\n"),
                files
            );
        } else {
            rejected_trees += 1;
        }
    }
    // The property is only meaningful if both sides of the split actually
    // occur; a mutator that always breaks the tree would make the
    // false-positive assertion vacuous.
    assert!(
        clean_trees >= 50,
        "only {clean_trees} of 500 mutated trees compiled clean"
    );
    assert!(
        rejected_trees >= 50,
        "only {rejected_trees} of 500 mutated trees failed to compile"
    );
}
