//! Metric and trace-hop names for the Laser serving tier.

/// Queries issued by a [`crate::client::LaserClient`] (all outcomes).
pub const QUERIES: &str = "laser.client.queries";
/// End-to-end query latency (network-served and deadline completions;
/// cache-answered queries are instantaneous and not sampled).
pub const QUERY_S: &str = "laser.client.query_s";
/// Queries answered entirely from the client's fresh read-through cache.
pub const CACHE_HITS: &str = "laser.client.cache_hits";
/// Hedge requests sent to a sibling replica.
pub const HEDGES: &str = "laser.client.hedges";
/// Queries whose first reply came from the hedge target.
pub const HEDGE_WINS: &str = "laser.client.hedge_wins";
/// Deadline expirations served from stale cache (graceful degradation).
pub const STALE_SERVED: &str = "laser.client.stale_served";
/// Deadline expirations with no cached cover at all.
pub const FAILED: &str = "laser.client.failed";

/// Get requests handled by shard servers.
pub const SERVER_GETS: &str = "laser.server.gets";
/// Committed stream writes applied by shard servers.
pub const INGEST_APPLIED: &str = "laser.server.ingest_applied";
/// Commit-origin → shard-apply lag for stream writes.
pub const INGEST_LAG_S: &str = "laser.server.ingest_lag_s";
/// Bulk dataset generations activated (atomic flips).
pub const BULK_ACTIVATED: &str = "laser.server.bulk_activated";
/// Publish-origin → activation latency for bulk loads.
pub const BULK_ACTIVATE_S: &str = "laser.server.bulk_activate_s";
/// Ingestion cursors dropped and re-fetched from scratch on a
/// [`crate::server::LaserCtl::Resync`] (the audit's repair verb).
pub const RESYNCS: &str = "laser.server.resyncs";

/// Trace hop names on the ingest and query paths.
pub mod hops {
    /// A shard server applied a committed stream write.
    pub const INGEST_APPLY: &str = "laser.ingest_apply";
    /// A shard server atomically activated a bulk generation.
    pub const BULK_ACTIVATE: &str = "laser.bulk_activate";
    /// A shard server answered a get.
    pub const SERVER_GET: &str = "laser.server_get";
}
