//! Consistent-hash routing of the Laser key space onto shard replica
//! groups.
//!
//! A [`ShardMap`] is built once at deployment and shared (cloned) by
//! servers and clients: servers use it to keep only the keys they own,
//! clients use it to route gets. Virtual nodes smooth the per-shard share
//! of the ring; FNV-1a keeps hashing dependency-free and deterministic
//! across runs and platforms.

use simnet::NodeId;

/// Virtual ring points per shard. 64 points smooth the per-shard share of
/// the key space to well within 2× of fair for small shard counts.
const VNODES: usize = 64;

/// 64-bit FNV-1a with a murmur-style finalizer. Plain FNV-1a has weak
/// avalanche: short sequential keys (`proj-1`, `proj-2`, …) hash into a
/// narrow band of the ring and starve shards; the finalizer spreads them.
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
    h ^ (h >> 33)
}

/// The key-space → replica-group mapping.
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// `replicas[s]` lists the nodes serving shard `s`, primary first.
    replicas: Vec<Vec<NodeId>>,
    /// Sorted virtual ring: (point, shard).
    ring: Vec<(u64, u32)>,
}

impl ShardMap {
    /// Builds the map for the given replica groups.
    pub fn new(replicas: Vec<Vec<NodeId>>) -> ShardMap {
        assert!(!replicas.is_empty(), "at least one shard");
        assert!(
            replicas.iter().all(|r| !r.is_empty()),
            "every shard needs at least one replica"
        );
        let mut ring = Vec::with_capacity(replicas.len() * VNODES);
        for s in 0..replicas.len() {
            for v in 0..VNODES {
                ring.push((key_hash(&format!("shard-{s}#{v}")), s as u32));
            }
        }
        ring.sort_unstable();
        ShardMap { replicas, ring }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.replicas.len()
    }

    /// The shard owning `key`: the first ring point clockwise of the key's
    /// hash.
    pub fn shard_for(&self, key: &str) -> usize {
        let h = key_hash(key);
        let i = self.ring.partition_point(|&(p, _)| p < h);
        let (_, s) = self.ring[i % self.ring.len()];
        s as usize
    }

    /// Replica nodes of `shard`, primary first.
    pub fn replicas(&self, shard: usize) -> &[NodeId] {
        &self.replicas[shard]
    }

    /// All server nodes, in shard-then-replica order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.replicas.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(shards: usize, reps: usize) -> ShardMap {
        let replicas = (0..shards)
            .map(|s| (0..reps).map(|r| NodeId((s * reps + r) as u32)).collect())
            .collect();
        ShardMap::new(replicas)
    }

    #[test]
    fn routing_is_stable_and_total() {
        let m = map(4, 2);
        for i in 0..1000 {
            let k = format!("proj-{i}");
            let s = m.shard_for(&k);
            assert!(s < 4);
            assert_eq!(s, m.shard_for(&k), "same key, same shard");
            assert_eq!(m.replicas(s).len(), 2);
        }
    }

    #[test]
    fn virtual_nodes_spread_the_key_space() {
        let m = map(4, 1);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[m.shard_for(&format!("key-{i}"))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 400, "shard {s} starved: {counts:?} — ring too lumpy");
        }
    }

    #[test]
    fn nodes_lists_every_replica_once() {
        let m = map(3, 2);
        let nodes = m.nodes();
        assert_eq!(nodes.len(), 6);
        let mut sorted: Vec<u32> = nodes.iter().map(|n| n.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }
}
