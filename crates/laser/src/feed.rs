//! Encoding of Laser ingestion feeds as Zeus config writes.
//!
//! Stream updates ride the ordinary commit pipeline: a write to
//! `laser/<dataset>` carries the full latest state of the stream output as
//! a `k=v;` text payload. Full-state (latest-wins) payloads mean a shard
//! that missed intermediate writes converges by applying only the newest
//! one — exactly what the observer replays on re-subscription.
//!
//! Bulk loads are too large for the commit pipeline; a write to
//! `laser-bulk/<dataset>` carries only the [`BulkMeta`] describing a
//! PackageVessel package (config = the same `laser-bulk/<dataset>` name,
//! version = the generation to activate). Shard servers fetch the content
//! P2P and activate it atomically once assembled.

use packagevessel::types::{BulkId, BulkMeta};
use simnet::{NodeId, SimTime};

/// The Zeus path carrying stream updates for `dataset`.
pub fn stream_path(dataset: &str) -> String {
    format!("laser/{dataset}")
}

/// The Zeus path (and PackageVessel config name) carrying bulk-load
/// metadata for `dataset`.
pub fn bulk_path(dataset: &str) -> String {
    format!("laser-bulk/{dataset}")
}

/// Encodes dataset entries as a `k=v;` payload. Keys must not contain `=`
/// or `;`.
pub fn encode_entries(entries: &[(String, f64)]) -> Vec<u8> {
    let mut out = String::new();
    for (k, v) in entries {
        debug_assert!(!k.contains('=') && !k.contains(';'));
        out.push_str(k);
        out.push('=');
        out.push_str(&format!("{v:.6}"));
        out.push(';');
    }
    out.into_bytes()
}

/// Decodes a `k=v;` payload, skipping malformed fragments.
pub fn parse_entries(data: &[u8]) -> Vec<(String, f64)> {
    let Ok(text) = std::str::from_utf8(data) else {
        return Vec::new();
    };
    text.split(';')
        .filter_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            if k.is_empty() {
                return None;
            }
            Some((k.to_string(), v.parse::<f64>().ok()?))
        })
        .collect()
}

/// Encodes the metadata of a published bulk package for the
/// `laser-bulk/<dataset>` Zeus write.
pub fn encode_bulk_meta(meta: &BulkMeta) -> Vec<u8> {
    format!(
        "version={};pieces={};piece_size={};total={};storage={}",
        meta.id.version, meta.num_pieces, meta.piece_size, meta.total_size, meta.storage.0
    )
    .into_bytes()
}

/// Decodes bulk metadata written for `dataset`; `origin` is the commit
/// origin time of the carrying write (used for activation-latency
/// accounting).
pub fn parse_bulk_meta(dataset: &str, data: &[u8], origin: SimTime) -> Option<BulkMeta> {
    let text = std::str::from_utf8(data).ok()?;
    let mut version = None;
    let mut pieces = None;
    let mut piece_size = None;
    let mut total = None;
    let mut storage = None;
    for kv in text.split(';') {
        let Some((k, v)) = kv.split_once('=') else {
            continue;
        };
        match k {
            "version" => version = v.parse::<u64>().ok(),
            "pieces" => pieces = v.parse::<u32>().ok(),
            "piece_size" => piece_size = v.parse::<u64>().ok(),
            "total" => total = v.parse::<u64>().ok(),
            "storage" => storage = v.parse::<u32>().ok().map(NodeId),
            _ => {}
        }
    }
    Some(BulkMeta {
        id: BulkId {
            config: bulk_path(dataset),
            version: version?,
        },
        num_pieces: pieces?,
        piece_size: piece_size?,
        total_size: total?,
        storage: storage?,
        origin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_round_trip() {
        let entries = vec![("proj-1".to_string(), 0.125), ("proj-2".to_string(), 3.0)];
        let parsed = parse_entries(&encode_entries(&entries));
        assert_eq!(parsed, entries);
        assert!(parse_entries(b"garbage;;x=;=1;k=2.5").len() == 1);
        assert!(parse_entries(&[0xff, 0xfe]).is_empty());
    }

    #[test]
    fn bulk_meta_round_trips() {
        let meta = BulkMeta {
            id: BulkId {
                config: bulk_path("ranker"),
                version: 7,
            },
            num_pieces: 3,
            piece_size: 4096,
            total_size: 9000,
            storage: NodeId(12),
            origin: SimTime(55),
        };
        let parsed = parse_bulk_meta("ranker", &encode_bulk_meta(&meta), SimTime(55)).unwrap();
        assert_eq!(parsed.id, meta.id);
        assert_eq!(parsed.num_pieces, 3);
        assert_eq!(parsed.piece_size, 4096);
        assert_eq!(parsed.total_size, 9000);
        assert_eq!(parsed.storage, NodeId(12));
        assert!(parse_bulk_meta("ranker", b"version=;pieces=1", SimTime(0)).is_none());
    }
}
