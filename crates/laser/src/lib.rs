//! # laser — tiered key-value store with batch-load pipelines
//!
//! Reproduction of the Laser store from §4 of *Holistic Configuration
//! Management at Facebook* (SOSP 2015): "A special `laser()` restraint
//! invokes `get("$project-$user_id")` on a key-value store called Laser.
//! ... Laser stores data on flash or in memory for fast access. It has
//! automated data pipelines to load data from the output of a stream
//! processing system or a MapReduce job."
//!
//! The store keeps every dataset on a simulated flash tier and serves hot
//! keys from a bounded in-memory cache; reads are cost-accounted so the
//! Gatekeeper optimizer can treat `laser()` as an expensive restraint.
//! Datasets load atomically: a batch pipeline (the stand-in for a MapReduce
//! or stream job) replaces a whole generation at once, so readers never see
//! a half-loaded dataset.
//!
//! [`Laser`] is the single-node store. The rest of the crate turns it into
//! a distributed serving tier on `simnet`: [`route::ShardMap`] partitions
//! the key space over replica groups, [`server::LaserShardServer`] hosts
//! one shard replica per node (ingesting committed stream writes from the
//! Zeus observer feed and bulk loads via PackageVessel), and
//! [`client::LaserClient`] routes reads with a read-through cache, hedged
//! requests, and stale-cache degradation. Gatekeeper evaluates `laser()`
//! restraints against any [`LaserBackend`], so the same rules run against
//! the in-process store or values resolved through the client.

use std::collections::{HashMap, VecDeque};

pub mod client;
pub mod deploy;
pub mod feed;
pub mod metrics;
pub mod msg;
pub mod route;
pub mod server;

/// Read-cost units (arbitrary but fixed, used by the Gatekeeper optimizer
/// and by cost accounting in experiments).
pub mod cost {
    /// Cost of a memory-tier hit.
    pub const MEMORY_HIT: u64 = 1;
    /// Cost of a flash-tier read.
    pub const FLASH_READ: u64 = 25;
    /// Cost of a miss (key absent — still pays a flash probe).
    pub const MISS: u64 = 25;
}

/// Cumulative read statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaserStats {
    /// Reads served from the memory tier.
    pub memory_hits: u64,
    /// Reads served from the flash tier.
    pub flash_reads: u64,
    /// Reads for absent keys.
    pub misses: u64,
    /// Total cost units spent.
    pub cost_units: u64,
}

/// One generation of a named dataset.
#[derive(Debug, Clone, Default)]
struct Dataset {
    generation: u64,
    entries: HashMap<String, f64>,
}

/// The Laser store.
///
/// # Examples
///
/// ```
/// use laser::Laser;
///
/// let mut laser = Laser::new(2);
/// laser.load_dataset("trending", vec![("proj-42".into(), 0.9)]);
/// assert_eq!(laser.get("trending", "proj-42"), Some(0.9));
/// assert_eq!(laser.get("trending", "proj-7"), None);
/// ```
#[derive(Debug, Clone)]
pub struct Laser {
    datasets: HashMap<String, Dataset>,
    /// Bounded memory tier: (dataset, key) → (generation, value).
    memory: HashMap<(String, String), (u64, f64)>,
    memory_cap: usize,
    /// Insertion order for FIFO eviction of the memory tier.
    memory_order: VecDeque<(String, String)>,
    stats: LaserStats,
}

impl Laser {
    /// Creates a store whose memory tier holds up to `memory_cap` entries.
    pub fn new(memory_cap: usize) -> Laser {
        Laser {
            datasets: HashMap::new(),
            memory: HashMap::new(),
            memory_cap,
            memory_order: VecDeque::new(),
            stats: LaserStats::default(),
        }
    }

    /// Atomically replaces the contents of `dataset` with `entries` (a
    /// batch-pipeline load). The dataset's generation increments; stale
    /// memory-tier entries from the previous generation are ignored on
    /// read.
    pub fn load_dataset(&mut self, dataset: &str, entries: Vec<(String, f64)>) {
        let d = self.datasets.entry(dataset.to_string()).or_default();
        d.generation += 1;
        d.entries = entries.into_iter().collect();
    }

    /// Incrementally upserts entries (a stream-pipeline load). Unlike
    /// [`Laser::load_dataset`], existing keys not mentioned are kept. The
    /// generation still increments so cached values refresh.
    pub fn stream_upsert(&mut self, dataset: &str, entries: Vec<(String, f64)>) {
        let d = self.datasets.entry(dataset.to_string()).or_default();
        d.generation += 1;
        for (k, v) in entries {
            d.entries.insert(k, v);
        }
    }

    /// Reads `key` from `dataset`, paying the tier-appropriate cost.
    pub fn get(&mut self, dataset: &str, key: &str) -> Option<f64> {
        let d = self.datasets.get(dataset)?;
        let generation = d.generation;
        let cache_key = (dataset.to_string(), key.to_string());
        if let Some(&(gen_cached, v)) = self.memory.get(&cache_key) {
            if gen_cached == generation {
                self.stats.memory_hits += 1;
                self.stats.cost_units += cost::MEMORY_HIT;
                return Some(v);
            }
        }
        match d.entries.get(key).copied() {
            Some(v) => {
                self.stats.flash_reads += 1;
                self.stats.cost_units += cost::FLASH_READ;
                self.memory_insert(cache_key, generation, v);
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                self.stats.cost_units += cost::MISS;
                None
            }
        }
    }

    /// Convenience for the Gatekeeper restraint: `get` on the conventional
    /// `"$project-$user_id"` key (§4).
    pub fn get_project_user(&mut self, dataset: &str, project: &str, user_id: u64) -> Option<f64> {
        self.get(dataset, &format!("{project}-{user_id}"))
    }

    /// Reads `key` from `dataset` without touching the memory tier or the
    /// statistics. For invariant checks and introspection; serving reads go
    /// through [`Laser::get`].
    pub fn peek(&self, dataset: &str, key: &str) -> Option<f64> {
        self.datasets.get(dataset)?.entries.get(key).copied()
    }

    /// Number of entries currently resident in the memory tier.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }

    /// Number of keys in `dataset`.
    pub fn dataset_len(&self, dataset: &str) -> usize {
        self.datasets
            .get(dataset)
            .map(|d| d.entries.len())
            .unwrap_or(0)
    }

    /// Current generation of `dataset` (0 if absent).
    pub fn generation(&self, dataset: &str) -> u64 {
        self.datasets
            .get(dataset)
            .map(|d| d.generation)
            .unwrap_or(0)
    }

    /// Read statistics so far.
    pub fn stats(&self) -> LaserStats {
        self.stats
    }

    fn memory_insert(&mut self, key: (String, String), generation: u64, v: f64) {
        if self.memory_cap == 0 {
            return;
        }
        if !self.memory.contains_key(&key) {
            if self.memory.len() >= self.memory_cap {
                // FIFO eviction keeps the implementation simple and
                // deterministic; hit-rate subtleties are not the point here.
                if let Some(evict) = self.memory_order.pop_front() {
                    self.memory.remove(&evict);
                }
            }
            self.memory_order.push_back(key.clone());
        }
        self.memory.insert(key, (generation, v));
    }
}

/// Anything a `laser()` restraint can read through.
///
/// Gatekeeper evaluates against this trait rather than the concrete
/// [`Laser`] store, so restraints run identically against the in-process
/// store (unit tests, microbenchmarks) and against values resolved through
/// the distributed [`client::LaserClient`] (a [`ResolvedBackend`]).
pub trait LaserBackend {
    /// Reads `key` from `dataset`.
    fn get(&mut self, dataset: &str, key: &str) -> Option<f64>;

    /// Reads the conventional `"$project-$user_id"` key (§4).
    fn get_project_user(&mut self, dataset: &str, project: &str, user_id: u64) -> Option<f64> {
        self.get(dataset, &format!("{project}-{user_id}"))
    }
}

impl LaserBackend for Laser {
    fn get(&mut self, dataset: &str, key: &str) -> Option<f64> {
        Laser::get(self, dataset, key)
    }
}

/// A [`LaserBackend`] answering from values resolved ahead of evaluation.
///
/// A frontend prefetches the keys a check needs through the
/// [`client::LaserClient`] (fresh, cached, or stale-degraded), deposits them
/// here, and evaluates the Gatekeeper project against this backend — the
/// restraint evaluation itself stays synchronous even though the store is
/// remote. `None` deposits record "the key was resolved and is absent",
/// which is distinct from a read nobody resolved (counted in
/// [`ResolvedBackend::unresolved`]).
#[derive(Debug, Clone, Default)]
pub struct ResolvedBackend {
    values: HashMap<(String, String), Option<f64>>,
    /// Reads for keys nobody deposited (a routing bug or a failed query
    /// with no stale cover).
    pub unresolved: u64,
}

impl ResolvedBackend {
    /// Creates an empty backend.
    pub fn new() -> ResolvedBackend {
        ResolvedBackend::default()
    }

    /// Deposits the resolved value for `(dataset, key)`.
    pub fn set(&mut self, dataset: &str, key: &str, value: Option<f64>) {
        self.values
            .insert((dataset.to_string(), key.to_string()), value);
    }

    /// Clears all deposited values (between checks).
    pub fn clear(&mut self) {
        self.values.clear();
    }
}

impl LaserBackend for ResolvedBackend {
    fn get(&mut self, dataset: &str, key: &str) -> Option<f64> {
        match self.values.get(&(dataset.to_string(), key.to_string())) {
            Some(v) => *v,
            None => {
                self.unresolved += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_hits_flash_then_memory() {
        let mut l = Laser::new(10);
        l.load_dataset("d", vec![("k".into(), 1.5)]);
        assert_eq!(l.get("d", "k"), Some(1.5));
        assert_eq!(l.get("d", "k"), Some(1.5));
        let s = l.stats();
        assert_eq!(s.flash_reads, 1);
        assert_eq!(s.memory_hits, 1);
        assert_eq!(s.cost_units, cost::FLASH_READ + cost::MEMORY_HIT);
    }

    #[test]
    fn miss_costs_a_probe() {
        let mut l = Laser::new(10);
        l.load_dataset("d", vec![]);
        assert_eq!(l.get("d", "nope"), None);
        assert_eq!(l.stats().misses, 1);
        // Unknown dataset is a cheap None (no probe — dataset routing is
        // in-memory metadata).
        assert_eq!(l.get("ghost", "k"), None);
        assert_eq!(l.stats().misses, 1);
    }

    #[test]
    fn batch_reload_replaces_atomically_and_invalidates_cache() {
        let mut l = Laser::new(10);
        l.load_dataset("d", vec![("a".into(), 1.0), ("b".into(), 2.0)]);
        assert_eq!(l.get("d", "a"), Some(1.0)); // cached now
        l.load_dataset("d", vec![("a".into(), 9.0)]);
        assert_eq!(l.get("d", "a"), Some(9.0), "stale cache must not serve");
        assert_eq!(l.get("d", "b"), None, "removed by batch reload");
        assert_eq!(l.generation("d"), 2);
    }

    #[test]
    fn stream_upsert_keeps_existing_keys() {
        let mut l = Laser::new(10);
        l.load_dataset("d", vec![("a".into(), 1.0)]);
        l.stream_upsert("d", vec![("b".into(), 2.0)]);
        assert_eq!(l.get("d", "a"), Some(1.0));
        assert_eq!(l.get("d", "b"), Some(2.0));
    }

    #[test]
    fn memory_tier_is_bounded() {
        let mut l = Laser::new(2);
        l.load_dataset(
            "d",
            vec![("a".into(), 1.0), ("b".into(), 2.0), ("c".into(), 3.0)],
        );
        l.get("d", "a");
        l.get("d", "b");
        l.get("d", "c"); // evicts "a"
        l.get("d", "a"); // flash again
        let s = l.stats();
        assert_eq!(s.flash_reads, 4);
        assert_eq!(s.memory_hits, 0);
    }

    #[test]
    fn project_user_key_convention() {
        let mut l = Laser::new(10);
        l.load_dataset("trending", vec![("ProjX-7".into(), 0.8)]);
        assert_eq!(l.get_project_user("trending", "ProjX", 7), Some(0.8));
        assert_eq!(l.get_project_user("trending", "ProjX", 8), None);
    }

    #[test]
    fn zero_capacity_memory_tier() {
        let mut l = Laser::new(0);
        l.load_dataset("d", vec![("a".into(), 1.0)]);
        l.get("d", "a");
        l.get("d", "a");
        assert_eq!(l.stats().flash_reads, 2);
        assert_eq!(l.memory_len(), 0);
    }

    #[test]
    fn eviction_at_exact_cap_boundary() {
        let mut l = Laser::new(2);
        l.load_dataset(
            "d",
            vec![("a".into(), 1.0), ("b".into(), 2.0), ("c".into(), 3.0)],
        );
        // Filling to exactly the cap evicts nothing.
        l.get("d", "a");
        l.get("d", "b");
        assert_eq!(l.memory_len(), 2);
        assert_eq!(l.get("d", "a"), Some(1.0));
        assert_eq!(l.get("d", "b"), Some(2.0));
        assert_eq!(l.stats().memory_hits, 2);
        // The cap+1-th distinct key evicts the oldest ("a"), specifically —
        // "b" must survive.
        l.get("d", "c");
        assert_eq!(l.memory_len(), 2);
        let before = l.stats();
        assert_eq!(l.get("d", "b"), Some(2.0));
        assert_eq!(l.get("d", "c"), Some(3.0));
        assert_eq!(l.stats().memory_hits, before.memory_hits + 2);
        assert_eq!(l.get("d", "a"), Some(1.0), "evicted key re-reads flash");
        assert_eq!(l.stats().flash_reads, before.flash_reads + 1);
    }

    #[test]
    fn refresh_of_resident_key_does_not_evict_or_duplicate() {
        let mut l = Laser::new(2);
        l.load_dataset("d", vec![("a".into(), 1.0), ("b".into(), 2.0)]);
        l.get("d", "a");
        l.get("d", "b");
        // A stale-generation re-read of a resident key refreshes it in
        // place: it pays a flash read, but must not evict its neighbor or
        // grow the FIFO order (which would double-evict "a" later).
        l.stream_upsert("d", vec![("a".into(), 9.0)]);
        assert_eq!(l.get("d", "a"), Some(9.0));
        assert_eq!(l.memory_len(), 2);
        assert_eq!(l.stats().flash_reads, 3);
        // "b" was untouched by the refresh; generation advanced though, so
        // its cached value is stale and promotion happens again.
        assert_eq!(l.get("d", "b"), Some(2.0));
        assert_eq!(l.stats().flash_reads, 4);
        // Both now hit memory at the current generation.
        l.get("d", "a");
        l.get("d", "b");
        let s = l.stats();
        assert_eq!(s.memory_hits, 2);
        assert_eq!(s.misses, 0);
        assert_eq!(s.cost_units, 4 * cost::FLASH_READ + 2 * cost::MEMORY_HIT);
    }

    #[test]
    fn promotion_accounting_across_generations() {
        let mut l = Laser::new(4);
        l.load_dataset("d", vec![("k".into(), 1.0)]);
        l.get("d", "k"); // flash + promote
        l.get("d", "k"); // memory
        l.load_dataset("d", vec![("k".into(), 2.0)]);
        l.get("d", "k"); // stale cache → flash + re-promote
        l.get("d", "k"); // memory
        let s = l.stats();
        assert_eq!((s.flash_reads, s.memory_hits, s.misses), (2, 2, 0));
        assert_eq!(l.memory_len(), 1, "re-promotion reuses the slot");
    }

    #[test]
    fn resolved_backend_distinguishes_absent_from_unresolved() {
        let mut b = ResolvedBackend::new();
        b.set("d", "proj-1", Some(0.9));
        b.set("d", "proj-2", None);
        assert_eq!(b.get("d", "proj-1"), Some(0.9));
        assert_eq!(b.get("d", "proj-2"), None);
        assert_eq!(b.unresolved, 0);
        assert_eq!(b.get_project_user("d", "proj", 3), None);
        assert_eq!(b.unresolved, 1);
        b.clear();
        b.get("d", "proj-1");
        assert_eq!(b.unresolved, 2);
    }

    #[test]
    fn laser_implements_backend() {
        let mut l = Laser::new(4);
        l.load_dataset("t", vec![("P-7".into(), 0.8)]);
        let b: &mut dyn LaserBackend = &mut l;
        assert_eq!(b.get_project_user("t", "P", 7), Some(0.8));
    }
}
