//! Wire messages between [`crate::client::LaserClient`] routers and
//! [`crate::server::LaserShardServer`] nodes.

use simnet::trace::TraceCtx;

/// Client ↔ shard-server protocol.
#[derive(Debug, Clone)]
pub enum LaserMsg {
    /// Read `keys` from `dataset`. Multi-key gets are answered atomically
    /// from one store snapshot (one handler invocation), which is what
    /// makes the bulk-generation atomicity invariant checkable end to end.
    Get {
        /// Client-chosen request id (replies are deduplicated on it).
        req: u64,
        /// Dataset name.
        dataset: String,
        /// Keys to read, in reply order.
        keys: Vec<String>,
        /// Optional causal trace.
        trace: Option<TraceCtx>,
    },
    /// Answer to a [`LaserMsg::Get`].
    GetReply {
        /// Echoed request id.
        req: u64,
        /// Echoed dataset name.
        dataset: String,
        /// The serving store's generation for `dataset` at read time. All
        /// `values` come from this single generation.
        generation: u64,
        /// One value per requested key.
        values: Vec<Option<f64>>,
        /// Trace continued from the request.
        trace: Option<TraceCtx>,
    },
}

impl LaserMsg {
    /// Approximate wire size in bytes (for the bandwidth model).
    pub fn wire_size(&self) -> u64 {
        match self {
            LaserMsg::Get { dataset, keys, .. } => {
                64 + dataset.len() as u64 + keys.iter().map(|k| k.len() as u64).sum::<u64>()
            }
            LaserMsg::GetReply {
                dataset, values, ..
            } => 64 + dataset.len() as u64 + 16 * values.len() as u64,
        }
    }
}
