//! The per-node Laser shard server.
//!
//! Each server hosts one replica of one shard: a [`Laser`] store holding
//! only the keys its shard owns (per the deployment's
//! [`crate::route::ShardMap`]), fed two ways:
//!
//! - **Stream ingestion**: the server subscribes to a Zeus observer for
//!   every stream dataset's `laser/<dataset>` path and applies committed
//!   full-state writes as `stream_upsert`s, deduplicated and ordered by
//!   zxid. Periodic re-subscription with the last applied zxid makes the
//!   feed self-healing — whatever a crash or partition swallowed, the
//!   observer replays the latest state on the next round trip.
//! - **Bulk loads**: a `laser-bulk/<dataset>` write carries only package
//!   metadata; the embedded PackageVessel agent fetches the content P2P,
//!   and the server activates the assembled generation with a single
//!   atomic `load_dataset` flip. Bulk datasets are replicated to every
//!   shard (they are read with multi-key probes that must see one
//!   generation), so no query can observe a mix of two generations.
//!
//! Reads arrive as [`LaserMsg::Get`] and are answered from one store
//! snapshot. A configurable response delay models a degraded replica for
//! tail-latency experiments.

use std::collections::HashMap;

use packagevessel::agent::PvAgentActor;
use packagevessel::types::{BulkMeta, PvMsg};
use simnet::ods;
use simnet::trace::TraceCtx;
use simnet::{Actor, Ctx, Message, NodeId, SimDuration};
use zeus::types::{Write, ZeusMsg, Zxid};

use crate::msg::LaserMsg;
use crate::route::ShardMap;
use crate::{feed, metrics, Laser};

/// Re-subscription / housekeeping period.
const RESUB_EVERY: SimDuration = SimDuration(2_000_000);
/// Housekeeping timer tags are `TAG_RESUB_BASE + epoch`; the epoch bumps on
/// recovery so a pre-crash timer that survives the outage cannot double the
/// housekeeping cadence.
const TAG_RESUB_BASE: u64 = 1 << 16;
/// Delayed-reply timer tags (degraded-replica mode).
const TAG_DELAY_BASE: u64 = 1 << 32;

/// Static configuration of one shard server.
#[derive(Debug, Clone)]
pub struct ShardServerConfig {
    /// The shard this server replicates.
    pub shard: u32,
    /// The deployment's shard map (for key-ownership filtering).
    pub map: ShardMap,
    /// The Zeus observer this server subscribes to for ingestion.
    pub observer: NodeId,
    /// Stream datasets to ingest (partitioned by key ownership).
    pub stream_datasets: Vec<String>,
    /// Bulk datasets to ingest (fully replicated).
    pub bulk_datasets: Vec<String>,
    /// Memory-tier capacity of the local store.
    pub memory_cap: usize,
    /// PackageVessel agent request window.
    pub pv_window: usize,
}

/// Driver commands posted to a shard server (audit repair).
#[derive(Debug, Clone)]
pub enum LaserCtl {
    /// Drop the ingestion cursor for `path` and re-subscribe from scratch.
    ///
    /// The repair verb for stale-generation drift: a server whose
    /// activation was rolled back (or lost) still advertises its *current*
    /// feed cursor on every housekeeping tick, so the observer never
    /// replays the metadata and the stale generation persists. Resync
    /// subscribes with `have = 0`, forcing a full replay — the embedded
    /// PackageVessel agent usually still holds the content, so the
    /// re-activation flip is immediate.
    Resync {
        /// The ingestion path (`laser/<ds>` or `laser-bulk/<ds>`).
        path: String,
    },
}

/// The shard server actor.
pub struct LaserShardServer {
    cfg: ShardServerConfig,
    store: Laser,
    pv: PvAgentActor,
    started: bool,
    resub_epoch: u64,
    /// Last applied zxid per ingestion path (dedup + re-subscription
    /// cursor).
    last_zxid: HashMap<String, Zxid>,
    /// Newest not-yet-activated bulk metadata per dataset.
    pending_bulk: HashMap<String, (BulkMeta, Option<TraceCtx>)>,
    /// Activated bulk version per dataset.
    activated: HashMap<String, u64>,
    /// Extra delay before answering gets (degraded-replica modeling).
    respond_delay: SimDuration,
    delayed: HashMap<u64, (NodeId, LaserMsg, Option<TraceCtx>)>,
    next_delay_token: u64,
}

impl LaserShardServer {
    /// Creates the server for `cfg`.
    pub fn new(cfg: ShardServerConfig) -> LaserShardServer {
        let store = Laser::new(cfg.memory_cap);
        let pv = PvAgentActor::new(cfg.pv_window);
        LaserShardServer {
            cfg,
            store,
            pv,
            started: false,
            resub_epoch: 0,
            last_zxid: HashMap::new(),
            pending_bulk: HashMap::new(),
            activated: HashMap::new(),
            respond_delay: SimDuration::ZERO,
            delayed: HashMap::new(),
            next_delay_token: 0,
        }
    }

    /// The shard this server replicates.
    pub fn shard(&self) -> u32 {
        self.cfg.shard
    }

    /// The local store (for invariant checks).
    pub fn store(&self) -> &Laser {
        &self.store
    }

    /// The activated bulk version of `dataset` (0 if none yet).
    pub fn activated_version(&self, dataset: &str) -> u64 {
        self.activated.get(dataset).copied().unwrap_or(0)
    }

    /// The last applied zxid for an ingestion `path`.
    pub fn last_applied(&self, path: &str) -> Zxid {
        self.last_zxid.get(path).copied().unwrap_or(Zxid::ZERO)
    }

    /// Sets the artificial response delay (degraded-replica modeling).
    pub fn set_response_delay(&mut self, delay: SimDuration) {
        self.respond_delay = delay;
    }

    /// Fault-seeding hook: rolls the activated generation of `dataset`
    /// back one version while *keeping the feed cursor current* — the
    /// protocol-invisible drift class. Housekeeping re-subscribes with the
    /// current cursor, the observer replays nothing, and the server keeps
    /// serving the stale generation until an audit notices the version gap
    /// and issues a [`LaserCtl::Resync`]. Returns whether there was an
    /// activation to roll back.
    pub fn seed_stale_activation(&mut self, dataset: &str) -> bool {
        match self.activated.get_mut(dataset) {
            Some(v) if *v > 0 => {
                *v -= 1;
                true
            }
            _ => false,
        }
    }

    fn resync_path(&mut self, ctx: &mut Ctx<'_>, path: String) {
        self.last_zxid.remove(&path);
        ctx.metrics().incr(metrics::RESYNCS, 1);
        let size = 64 + path.len() as u64;
        ctx.send_value(
            self.cfg.observer,
            size,
            ZeusMsg::Subscribe {
                path,
                have: Zxid::ZERO,
            },
        );
    }

    fn paths(&self) -> Vec<String> {
        self.cfg
            .stream_datasets
            .iter()
            .map(|d| feed::stream_path(d))
            .chain(self.cfg.bulk_datasets.iter().map(|d| feed::bulk_path(d)))
            .collect()
    }

    /// Subscribes (or re-subscribes) to the observer feed and re-drives any
    /// stalled bulk fetch. Runs at start, on every housekeeping tick, and
    /// on recovery — the observer replays the newest state per path beyond
    /// our cursor, which is all a full-state feed needs to converge.
    fn housekeeping(&mut self, ctx: &mut Ctx<'_>) {
        for path in self.paths() {
            let have = self.last_applied(&path);
            let size = 64 + path.len() as u64;
            ctx.send_value(self.cfg.observer, size, ZeusMsg::Subscribe { path, have });
        }
        self.pv.kick(ctx);
        // If the agent is idle, restart the newest pending bulk fetch (its
        // retry chain dies if the node was down when the timer fired).
        if self.pv.current_fetch().is_none() {
            let mut ds: Vec<&String> = self.pending_bulk.keys().collect();
            ds.sort();
            if let Some(ds) = ds.first() {
                let meta = self.pending_bulk[*ds].0.clone();
                self.feed_meta(ctx, meta);
            }
        }
        self.check_bulk_complete(ctx);
    }

    /// Hands bulk metadata to the embedded agent unless it is busy with a
    /// different config (the agent fetches one config at a time; feeding
    /// another would abandon the in-flight fetch and thrash).
    fn feed_meta(&mut self, ctx: &mut Ctx<'_>, meta: BulkMeta) {
        let ok = match self.pv.current_fetch() {
            None => true,
            Some(cur) => cur.config == meta.id.config,
        };
        if ok {
            let node = ctx.node();
            self.pv
                .on_message(ctx, node, Box::new(PvMsg::MetadataUpdate { meta }));
        }
    }

    fn handle_get(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: LaserMsg) {
        let LaserMsg::Get {
            req,
            dataset,
            keys,
            trace,
        } = msg
        else {
            return;
        };
        ctx.metrics().incr(metrics::SERVER_GETS, 1);
        ctx.ods_counter(ods::tiers::LASER, ods::series::GETS, 1.0);
        let tctx = trace
            .and_then(|t| {
                ctx.trace_hop(
                    t,
                    metrics::hops::SERVER_GET,
                    vec![("shard", self.cfg.shard.to_string())],
                )
            })
            .or(trace);
        // One snapshot: generation and values are read in a single handler
        // invocation, so a reply can never straddle a generation flip.
        let generation = self.store.generation(&dataset);
        let values: Vec<Option<f64>> = keys.iter().map(|k| self.store.get(&dataset, k)).collect();
        let reply = LaserMsg::GetReply {
            req,
            dataset,
            generation,
            values,
            trace: tctx,
        };
        if self.respond_delay > SimDuration::ZERO {
            let tag = TAG_DELAY_BASE + self.next_delay_token;
            self.next_delay_token += 1;
            self.delayed.insert(tag, (from, reply, tctx));
            ctx.set_timer(self.respond_delay, tag);
        } else {
            let size = reply.wire_size();
            ctx.send_traced(from, size, Box::new(reply), tctx);
        }
    }

    fn handle_feed(&mut self, ctx: &mut Ctx<'_>, msg: ZeusMsg) {
        match msg {
            ZeusMsg::Notify { write } => self.apply_write(ctx, write),
            ZeusMsg::NotifyBatch { writes } => {
                for w in writes {
                    self.apply_write(ctx, w);
                }
            }
            _ => {}
        }
    }

    fn apply_write(&mut self, ctx: &mut Ctx<'_>, w: Write) {
        if w.zxid <= self.last_applied(&w.path) {
            return;
        }
        self.last_zxid.insert(w.path.clone(), w.zxid);
        if let Some(ds) = w.path.strip_prefix("laser/") {
            if !self.cfg.stream_datasets.iter().any(|d| d == ds) {
                return;
            }
            // Partitioning happens here: of the full-state payload, this
            // replica keeps only the keys its shard owns.
            let shard = self.cfg.shard as usize;
            let mine: Vec<(String, f64)> = feed::parse_entries(&w.data)
                .into_iter()
                .filter(|(k, _)| self.cfg.map.shard_for(k) == shard)
                .collect();
            self.store.stream_upsert(ds, mine);
            ctx.metrics().incr(metrics::INGEST_APPLIED, 1);
            let lag = (ctx.now() - w.origin).as_secs_f64();
            ctx.metrics().sample(metrics::INGEST_LAG_S, lag);
            ctx.ods_sample(ods::tiers::LASER, ods::series::INGEST_LAG_S, lag);
            if let Some(t) = w.trace {
                ctx.trace_hop(
                    t,
                    metrics::hops::INGEST_APPLY,
                    vec![("shard", self.cfg.shard.to_string())],
                );
            }
        } else if let Some(ds) = w.path.strip_prefix("laser-bulk/") {
            if !self.cfg.bulk_datasets.iter().any(|d| d == ds) {
                return;
            }
            let Some(meta) = feed::parse_bulk_meta(ds, &w.data, w.origin) else {
                return;
            };
            if meta.id.version <= self.activated_version(ds) {
                return;
            }
            if let Some((have, _)) = self.pending_bulk.get(ds) {
                if have.id.version >= meta.id.version {
                    return;
                }
            }
            self.pending_bulk
                .insert(ds.to_string(), (meta.clone(), w.trace));
            self.feed_meta(ctx, meta);
            self.check_bulk_complete(ctx);
        }
    }

    /// Activates any pending bulk dataset whose content has fully arrived:
    /// one `load_dataset` call per generation — the atomic flip.
    fn check_bulk_complete(&mut self, ctx: &mut Ctx<'_>) {
        let mut ready: Vec<String> = self
            .pending_bulk
            .iter()
            .filter(|(_, (m, _))| self.pv.has(&m.id))
            .map(|(ds, _)| ds.clone())
            .collect();
        ready.sort();
        for ds in ready {
            let (meta, trace) = self.pending_bulk.remove(&ds).unwrap();
            if meta.id.version <= self.activated_version(&ds) {
                continue;
            }
            let Some(content) = self.pv.content_of(&meta.id) else {
                continue;
            };
            let entries = feed::parse_entries(&content);
            self.store.load_dataset(&ds, entries);
            self.activated.insert(ds.clone(), meta.id.version);
            ctx.metrics().incr(metrics::BULK_ACTIVATED, 1);
            let lag = (ctx.now() - meta.origin).as_secs_f64();
            ctx.metrics().sample(metrics::BULK_ACTIVATE_S, lag);
            if let Some(t) = trace {
                ctx.trace_hop(
                    t,
                    metrics::hops::BULK_ACTIVATE,
                    vec![
                        ("shard", self.cfg.shard.to_string()),
                        ("version", meta.id.version.to_string()),
                    ],
                );
            }
        }
    }
}

impl Actor for LaserShardServer {
    fn kind(&self) -> &'static str {
        "laser.server"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Installing over a previous actor (e.g. a default Zeus proxy)
        // dispatches a Start event per installation; run once.
        if self.started {
            return;
        }
        self.started = true;
        self.housekeeping(ctx);
        ctx.set_timer(RESUB_EVERY, TAG_RESUB_BASE + self.resub_epoch);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let msg = match msg.downcast::<LaserCtl>() {
            Ok(cmd) => {
                let LaserCtl::Resync { path } = *cmd;
                return self.resync_path(ctx, path);
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<LaserMsg>() {
            Ok(m) => return self.handle_get(ctx, from, *m),
            Err(m) => m,
        };
        let msg = match msg.downcast::<ZeusMsg>() {
            Ok(m) => return self.handle_feed(ctx, *m),
            Err(m) => m,
        };
        // Shared multicast fan-out frame: laser servers watch the same
        // observer feed as proxies, so a multicast group may include them.
        // Laser never leases (no frame counters), so the frame is simply
        // applied.
        let msg = match msg.downcast::<std::sync::Arc<zeus::types::NotifyFrame>>() {
            Ok(frame) => {
                for write in &frame.writes {
                    self.apply_write(ctx, write.clone());
                }
                return;
            }
            Err(m) => m,
        };
        // Everything else is PackageVessel traffic for the embedded agent.
        self.pv.on_message(ctx, from, msg);
        self.check_bulk_complete(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag >= TAG_DELAY_BASE {
            if let Some((to, reply, trace)) = self.delayed.remove(&tag) {
                let size = reply.wire_size();
                ctx.send_traced(to, size, Box::new(reply), trace);
            }
        } else if tag >= TAG_RESUB_BASE {
            if tag == TAG_RESUB_BASE + self.resub_epoch {
                self.housekeeping(ctx);
                ctx.set_timer(RESUB_EVERY, tag);
            }
        } else {
            self.pv.on_timer(ctx, tag);
            self.check_bulk_complete(ctx);
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        // Timers that fired while the node was down were skipped, so the
        // housekeeping chain is dead; start a new epoch (and invalidate any
        // pre-crash timer still in flight).
        self.resub_epoch += 1;
        self.housekeeping(ctx);
        ctx.set_timer(RESUB_EVERY, TAG_RESUB_BASE + self.resub_epoch);
    }
}
