//! The Laser client router.
//!
//! A [`LaserClient`] is a library embedded in a frontend actor (it is not
//! an actor itself — the host forwards replies and its timer tags). It
//! routes each get to the owning shard via the consistent-hash
//! [`ShardMap`], preferring a same-region, non-suspect replica; keeps a
//! read-through cache with TTL freshness; hedges slow requests to a
//! sibling replica after an adaptive delay derived from its own observed
//! p99; and degrades gracefully when a shard is unreachable — a deadline
//! expiry serves stale cache instead of failing, and marks the silent
//! replicas suspect so later queries fail over.
//!
//! Multi-key gets are cached as one atomic *bundle* per reply: assembling
//! a multi-key answer from per-key entries cached at different times could
//! mix two bulk generations, which the serving tier must never do.

use std::collections::{BTreeMap, HashMap};

use simnet::stats::Histogram;
use simnet::trace::TraceCtx;
use simnet::{Ctx, NodeId, RegionId, SimDuration, SimTime};

use crate::metrics;
use crate::msg::LaserMsg;
use crate::route::ShardMap;

/// First client timer tag; the host actor forwards all tags ≥ this.
pub const TAG_BASE: u64 = 1 << 40;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The deployment's shard map.
    pub map: ShardMap,
    /// Whether to hedge slow requests to a sibling replica.
    pub hedge: bool,
    /// Clamp bounds and pre-warm default for the adaptive hedge delay.
    pub hedge_floor: SimDuration,
    /// Upper clamp: fault-window samples inflate the observed p99, and an
    /// unclamped delay would stop hedging exactly when it matters.
    pub hedge_ceiling: SimDuration,
    /// Hedge delay used until enough latency samples accumulate.
    pub hedge_default: SimDuration,
    /// Latency samples required before the adaptive delay kicks in.
    pub min_latency_samples: u64,
    /// Deadline after which a query is served from stale cache (or fails).
    pub deadline: SimDuration,
    /// Freshness TTL of the read-through cache.
    pub cache_ttl: SimDuration,
    /// How long a deadline marks the silent replicas suspect.
    pub suspect_ttl: SimDuration,
    /// The client's home region (same-region replicas are preferred).
    pub home_region: RegionId,
}

impl ClientConfig {
    /// Defaults tuned for the datacenter network model.
    pub fn new(map: ShardMap, home_region: RegionId) -> ClientConfig {
        ClientConfig {
            map,
            hedge: true,
            hedge_floor: SimDuration::from_millis(5),
            hedge_ceiling: SimDuration::from_millis(25),
            hedge_default: SimDuration::from_millis(10),
            min_latency_samples: 32,
            deadline: SimDuration::from_millis(400),
            cache_ttl: SimDuration::from_millis(500),
            suspect_ttl: SimDuration::from_secs(2),
            home_region,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    generation: u64,
    value: Option<f64>,
    fresh_until: SimTime,
}

#[derive(Debug, Clone)]
struct Bundle {
    generation: u64,
    /// Values in the bundle's normalized (sorted-key) order.
    values: Vec<Option<f64>>,
    fresh_until: SimTime,
}

#[derive(Debug)]
struct Pending {
    dataset: String,
    keys: Vec<String>,
    shard: usize,
    targets: Vec<NodeId>,
    sent_at: SimTime,
    trace: Option<TraceCtx>,
}

/// How a completed query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// A shard server replied (possibly the hedge target).
    Fresh {
        /// The replica that answered first.
        from: NodeId,
        /// Whether the answer came from the hedge target.
        hedge_win: bool,
    },
    /// Answered from the fresh read-through cache, no network.
    Cache,
    /// Deadline expired; answered from stale cache (graceful degradation).
    Stale,
    /// Deadline expired and nothing was cached.
    Failed,
}

/// A finished query, delivered to the host actor.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Dataset queried.
    pub dataset: String,
    /// Keys queried, in request order.
    pub keys: Vec<String>,
    /// One value per key (request order).
    pub values: Vec<Option<f64>>,
    /// The store generation the values came from, when known (fresh and
    /// cached answers; stale bundles keep their fill generation).
    pub generation: Option<u64>,
    /// How the answer was produced.
    pub served: Served,
    /// Issue → completion latency.
    pub latency: SimDuration,
}

/// Cumulative client statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Queries issued.
    pub queries: u64,
    /// Answered from fresh cache.
    pub cache_answered: u64,
    /// Answered by a shard server.
    pub fresh: u64,
    /// Hedge requests sent.
    pub hedges: u64,
    /// Queries won by the hedge target.
    pub hedge_wins: u64,
    /// Deadline expiries served from stale cache.
    pub stale_served: u64,
    /// Deadline expiries with no cover.
    pub failed: u64,
}

/// The client router.
pub struct LaserClient {
    cfg: ClientConfig,
    next_req: u64,
    pending: HashMap<u64, Pending>,
    cache: HashMap<(String, String), CacheEntry>,
    bundles: HashMap<(String, Vec<String>), Bundle>,
    latency: Histogram,
    suspect_until: HashMap<NodeId, SimTime>,
    /// Per-shard hot-key counters.
    hot: Vec<BTreeMap<String, u64>>,
    stats: ClientStats,
}

impl LaserClient {
    /// Creates a client.
    pub fn new(cfg: ClientConfig) -> LaserClient {
        let shards = cfg.map.num_shards();
        LaserClient {
            cfg,
            next_req: 0,
            pending: HashMap::new(),
            cache: HashMap::new(),
            bundles: HashMap::new(),
            latency: Histogram::new(),
            suspect_until: HashMap::new(),
            hot: vec![BTreeMap::new(); shards],
            stats: ClientStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Hot-key counters of `shard` (deterministic order).
    pub fn hot_keys(&self, shard: usize) -> &BTreeMap<String, u64> {
        &self.hot[shard]
    }

    /// The `n` hottest keys across all shards: `(count, shard, key)`,
    /// hottest first, ties broken by shard then key.
    pub fn top_hot(&self, n: usize) -> Vec<(u64, usize, String)> {
        let mut all: Vec<(u64, usize, String)> = self
            .hot
            .iter()
            .enumerate()
            .flat_map(|(s, m)| m.iter().map(move |(k, &c)| (c, s, k.clone())))
            .collect();
        all.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        all.truncate(n);
        all
    }

    /// The current adaptive hedge delay.
    pub fn hedge_delay(&self) -> SimDuration {
        if self.latency.count() < self.cfg.min_latency_samples {
            return self.cfg.hedge_default;
        }
        let p99 = SimDuration::from_secs_f64(self.latency.quantile_secs(0.99));
        p99.max(self.cfg.hedge_floor).min(self.cfg.hedge_ceiling)
    }

    fn bundle_key(dataset: &str, keys: &[String]) -> (String, Vec<String>) {
        let mut sorted = keys.to_vec();
        sorted.sort();
        (dataset.to_string(), sorted)
    }

    /// Replicas of `shard` in preference order: home-region before remote,
    /// non-suspect before suspect, original order as the tiebreak.
    fn replica_order(&self, ctx: &Ctx<'_>, shard: usize, now: SimTime) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = self.cfg.map.replicas(shard).to_vec();
        let topo = ctx.topology();
        order.sort_by_key(|&n| {
            let suspect = self.suspect_until.get(&n).is_some_and(|&until| until > now);
            let remote = topo.placement(n).region != self.cfg.home_region;
            (suspect, remote)
        });
        order
    }

    /// Issues a query. Returns the completion immediately if the fresh
    /// cache covers every key; otherwise the completion arrives later
    /// through [`LaserClient::on_message`] or [`LaserClient::on_timer`].
    pub fn query(
        &mut self,
        ctx: &mut Ctx<'_>,
        dataset: &str,
        keys: Vec<String>,
        trace: Option<TraceCtx>,
    ) -> Option<Completion> {
        assert!(!keys.is_empty());
        let now = ctx.now();
        self.stats.queries += 1;
        ctx.metrics().incr(metrics::QUERIES, 1);
        let shard = self.cfg.map.shard_for(&keys[0]);
        for k in &keys {
            *self.hot[shard].entry(k.clone()).or_insert(0) += 1;
        }
        if let Some((values, generation)) = self.cached(dataset, &keys, now, true) {
            self.stats.cache_answered += 1;
            ctx.metrics().incr(metrics::CACHE_HITS, 1);
            return Some(Completion {
                dataset: dataset.to_string(),
                keys,
                values,
                generation: Some(generation),
                served: Served::Cache,
                latency: SimDuration::ZERO,
            });
        }
        let req = self.next_req;
        self.next_req += 1;
        let order = self.replica_order(ctx, shard, now);
        let primary = order[0];
        let msg = LaserMsg::Get {
            req,
            dataset: dataset.to_string(),
            keys: keys.clone(),
            trace,
        };
        let size = msg.wire_size();
        ctx.send_traced(primary, size, Box::new(msg), trace);
        self.pending.insert(
            req,
            Pending {
                dataset: dataset.to_string(),
                keys,
                shard,
                targets: vec![primary],
                sent_at: now,
                trace,
            },
        );
        if self.cfg.hedge && order.len() > 1 {
            ctx.set_timer(self.hedge_delay(), TAG_BASE + req * 2);
        }
        ctx.set_timer(self.cfg.deadline, TAG_BASE + req * 2 + 1);
        None
    }

    /// Looks the query up in the cache. `fresh_only` enforces the TTL;
    /// the stale path ignores it. Single-key queries use the per-key
    /// cache; multi-key queries use atomic bundles only.
    fn cached(
        &self,
        dataset: &str,
        keys: &[String],
        now: SimTime,
        fresh_only: bool,
    ) -> Option<(Vec<Option<f64>>, u64)> {
        if keys.len() == 1 {
            let e = self.cache.get(&(dataset.to_string(), keys[0].clone()))?;
            if fresh_only && e.fresh_until < now {
                return None;
            }
            return Some((vec![e.value], e.generation));
        }
        let bkey = LaserClient::bundle_key(dataset, keys);
        let b = self.bundles.get(&bkey)?;
        if fresh_only && b.fresh_until < now {
            return None;
        }
        let values = keys
            .iter()
            .map(|k| {
                let i = bkey.1.iter().position(|s| s == k).unwrap();
                b.values[i]
            })
            .collect();
        Some((values, b.generation))
    }

    /// Handles a client timer tag (the host forwards tags ≥ [`TAG_BASE`]).
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) -> Option<Completion> {
        if tag < TAG_BASE {
            return None;
        }
        let req = (tag - TAG_BASE) / 2;
        if (tag - TAG_BASE).is_multiple_of(2) {
            self.fire_hedge(ctx, req);
            return None;
        }
        self.fire_deadline(ctx, req)
    }

    fn fire_hedge(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let now = ctx.now();
        let Some(p) = self.pending.get(&req) else {
            return;
        };
        let order = self.replica_order(ctx, p.shard, now);
        let Some(&target) = order.iter().find(|n| !p.targets.contains(n)) else {
            return;
        };
        let msg = LaserMsg::Get {
            req,
            dataset: p.dataset.clone(),
            keys: p.keys.clone(),
            trace: p.trace,
        };
        let size = msg.wire_size();
        let trace = p.trace;
        ctx.send_traced(target, size, Box::new(msg), trace);
        self.pending.get_mut(&req).unwrap().targets.push(target);
        self.stats.hedges += 1;
        ctx.metrics().incr(metrics::HEDGES, 1);
    }

    fn fire_deadline(&mut self, ctx: &mut Ctx<'_>, req: u64) -> Option<Completion> {
        let now = ctx.now();
        let p = self.pending.remove(&req)?;
        // Every replica we asked stayed silent past the deadline: suspect
        // them all so the next queries fail over to a sibling.
        for &n in &p.targets {
            self.suspect_until.insert(n, now + self.cfg.suspect_ttl);
        }
        let latency = now - p.sent_at;
        self.latency.record_secs(latency.as_secs_f64());
        ctx.metrics()
            .sample(metrics::QUERY_S, latency.as_secs_f64());
        match self.cached(&p.dataset, &p.keys, now, false) {
            Some((values, generation)) => {
                self.stats.stale_served += 1;
                ctx.metrics().incr(metrics::STALE_SERVED, 1);
                Some(Completion {
                    dataset: p.dataset,
                    keys: p.keys,
                    values,
                    generation: Some(generation),
                    served: Served::Stale,
                    latency,
                })
            }
            None => {
                self.stats.failed += 1;
                ctx.metrics().incr(metrics::FAILED, 1);
                let values = vec![None; p.keys.len()];
                Some(Completion {
                    dataset: p.dataset,
                    keys: p.keys,
                    values,
                    generation: None,
                    served: Served::Failed,
                    latency,
                })
            }
        }
    }

    /// Handles a [`LaserMsg`] delivered to the host actor.
    pub fn on_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        msg: LaserMsg,
    ) -> Option<Completion> {
        let LaserMsg::GetReply {
            req,
            dataset,
            generation,
            values,
            ..
        } = msg
        else {
            return None;
        };
        let now = ctx.now();
        // A reply proves the replica is alive, whatever an earlier deadline
        // concluded.
        self.suspect_until.remove(&from);
        let Some(p) = self.pending.remove(&req) else {
            // Late reply: the deadline already answered this query from
            // stale cache, or the hedge lost the race and this is the
            // second answer. Unsuspecting the sender above is the useful
            // part; the first answer already refreshed the cache.
            return None;
        };
        self.fill_cache(&dataset, &p.keys, generation, &values, now);
        let latency = now - p.sent_at;
        self.latency.record_secs(latency.as_secs_f64());
        ctx.metrics()
            .sample(metrics::QUERY_S, latency.as_secs_f64());
        let hedge_win = p.targets.first() != Some(&from);
        if hedge_win {
            self.stats.hedge_wins += 1;
            ctx.metrics().incr(metrics::HEDGE_WINS, 1);
        }
        self.stats.fresh += 1;
        Some(Completion {
            dataset: p.dataset,
            keys: p.keys,
            values,
            generation: Some(generation),
            served: Served::Fresh { from, hedge_win },
            latency,
        })
    }

    fn fill_cache(
        &mut self,
        dataset: &str,
        keys: &[String],
        generation: u64,
        values: &[Option<f64>],
        now: SimTime,
    ) {
        if keys.len() != values.len() {
            return;
        }
        let fresh_until = now + self.cfg.cache_ttl;
        if keys.len() == 1 {
            self.cache.insert(
                (dataset.to_string(), keys[0].clone()),
                CacheEntry {
                    generation,
                    value: values[0],
                    fresh_until,
                },
            );
            return;
        }
        let bkey = LaserClient::bundle_key(dataset, keys);
        let sorted_values: Vec<Option<f64>> = bkey
            .1
            .iter()
            .map(|k| {
                let i = keys.iter().position(|s| s == k).unwrap();
                values[i]
            })
            .collect();
        self.bundles.insert(
            bkey,
            Bundle {
                generation,
                values: sorted_values,
                fresh_until,
            },
        );
    }
}
