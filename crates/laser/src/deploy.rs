//! Deployment of a Laser serving tier onto a simulated fleet.

use std::collections::VecDeque;

use simnet::{NodeId, Sim};

use crate::route::ShardMap;
use crate::server::{LaserShardServer, ShardServerConfig};

/// Configuration of a Laser tier.
#[derive(Debug, Clone)]
pub struct LaserDeployConfig {
    /// Number of shards.
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Candidate server nodes (e.g. carved from the Zeus proxy pool).
    pub candidates: Vec<NodeId>,
    /// Zeus observers the servers may subscribe to for ingestion; each
    /// server picks a same-region one when available.
    pub observers: Vec<NodeId>,
    /// Stream datasets (partitioned by key ownership).
    pub stream_datasets: Vec<String>,
    /// Bulk datasets (fully replicated, atomically activated).
    pub bulk_datasets: Vec<String>,
    /// Memory-tier capacity per server.
    pub memory_cap: usize,
    /// PackageVessel request window per server.
    pub pv_window: usize,
}

/// Handles to an installed Laser tier.
#[derive(Debug, Clone)]
pub struct LaserDeployment {
    /// The routing map clients share.
    pub map: ShardMap,
    /// Every server node, in shard-then-replica order.
    pub servers: Vec<NodeId>,
}

impl LaserDeployment {
    /// Installs shard servers on nodes drawn from `cfg.candidates`.
    ///
    /// Replica `r` of shard `s` prefers region `(s + r) % regions`, so the
    /// replicas of any shard land in different regions (a regional fault
    /// takes out at most one replica per shard) while shards collectively
    /// spread over all regions.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer candidates than `shards × replicas`, or
    /// if `observers` is empty.
    pub fn install(sim: &mut Sim, cfg: &LaserDeployConfig) -> LaserDeployment {
        assert!(cfg.shards > 0 && cfg.replicas > 0);
        assert!(!cfg.observers.is_empty(), "need at least one observer");
        let topo = sim.topology().clone();
        let nregions = topo.num_regions();
        let mut by_region: Vec<VecDeque<NodeId>> = vec![VecDeque::new(); nregions];
        for &n in &cfg.candidates {
            by_region[topo.placement(n).region.0 as usize].push_back(n);
        }
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); cfg.shards];
        for (s, group) in groups.iter_mut().enumerate() {
            for r in 0..cfg.replicas {
                let want = (s + r) % nregions;
                let node = by_region[want]
                    .pop_front()
                    .or_else(|| {
                        by_region
                            .iter_mut()
                            .find(|q| !q.is_empty())
                            .and_then(|q| q.pop_front())
                    })
                    .expect("not enough Laser candidate nodes");
                group.push(node);
            }
        }
        let map = ShardMap::new(groups.clone());
        let mut servers = Vec::new();
        for (s, group) in groups.iter().enumerate() {
            for &node in group {
                let region = topo.placement(node).region;
                let observer = cfg
                    .observers
                    .iter()
                    .copied()
                    .find(|&o| topo.placement(o).region == region)
                    .unwrap_or(cfg.observers[0]);
                sim.add_actor(
                    node,
                    Box::new(LaserShardServer::new(ShardServerConfig {
                        shard: s as u32,
                        map: map.clone(),
                        observer,
                        stream_datasets: cfg.stream_datasets.clone(),
                        bulk_datasets: cfg.bulk_datasets.clone(),
                        memory_cap: cfg.memory_cap,
                        pv_window: cfg.pv_window,
                    })),
                );
                servers.push(node);
            }
        }
        LaserDeployment { map, servers }
    }
}
