//! # gitstore — a from-scratch content-addressed version control store
//!
//! The Configerator paper (§3.1) stores both config source code and compiled
//! JSON configs in git; git's behaviour shapes two of the paper's central
//! results:
//!
//! * **Commit contention** (§3.6): a push from a stale clone is rejected
//!   even when the concurrent commits touch different files —
//!   [`clone::WorkClone::push`] reproduces the protocol, and the landing
//!   strip (in the `configerator` crate) builds on [`clone::Diff`] to avoid
//!   it.
//! * **Throughput vs repository size** (Fig 13): commit cost grows with the
//!   number of tracked files because the index is rewritten per commit —
//!   [`repo::Repository::commit`] has the same cost profile, and
//!   [`multirepo::MultiRepo`] implements the partitioned-namespace fix.
//!
//! Everything is implemented here from first principles: SHA-1
//! ([`sha1`]), git-compatible object hashing ([`object`]), an object
//! database ([`odb`]), Myers line diffs ([`diff`]), and history/snapshot
//! queries ([`repo`]).
//!
//! # Examples
//!
//! ```
//! use gitstore::prelude::*;
//!
//! let mut repo = Repository::new();
//! repo.commit("alice", "initial", 1, vec![Change::put("app/port.cinc", "PORT = 8089")])
//!     .unwrap();
//! repo.commit("bob", "bump", 2, vec![Change::put("app/port.cinc", "PORT = 9090")])
//!     .unwrap();
//! let head = repo.head().unwrap();
//! assert_eq!(repo.log(head).unwrap().len(), 2);
//! ```

pub mod clone;
pub mod diff;
pub mod multirepo;
pub mod object;
pub mod odb;
pub mod repo;
pub mod sha1;

/// Commonly used types.
pub mod prelude {
    pub use crate::clone::{Diff, PushError, WorkClone};
    pub use crate::diff::{diff_lines, diff_stat, DiffOp, DiffStat};
    pub use crate::multirepo::{MultiRepo, RepoId};
    pub use crate::object::{Commit, EntryKind, Object, ObjectId, Tree, TreeEntry};
    pub use crate::odb::Odb;
    pub use crate::repo::{Change, CommitOutcome, Error, PathChange, Repository};
}

pub use prelude::*;
