//! The repository: refs, an index mirroring `HEAD`, and commit machinery.
//!
//! The cost profile deliberately mirrors git's (§3.6 of the paper): building
//! tree objects is incremental (only directories touched by a change are
//! rehashed), but every commit serializes and hashes the *entire* index —
//! git reads and rewrites `.git/index` (one entry per tracked file) on each
//! commit, which is why commit latency grows with repository size (Fig 13).

use std::collections::BTreeMap;
use std::collections::HashSet;
use std::fmt;

use bytes::Bytes;

use crate::object::{Commit, EntryKind, Object, ObjectId, Tree, TreeEntry};
use crate::odb::Odb;
use crate::sha1::Sha1;

/// One staged modification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Change {
    /// Create or overwrite the file at `path`.
    Put {
        /// Slash-separated path, e.g. `"feed/ranker.cconf"`.
        path: String,
        /// New file contents.
        content: Bytes,
    },
    /// Remove the file at `path`.
    Delete {
        /// Slash-separated path of an existing file.
        path: String,
    },
}

impl Change {
    /// Convenience constructor for [`Change::Put`].
    pub fn put(path: impl Into<String>, content: impl Into<Bytes>) -> Change {
        Change::Put {
            path: path.into(),
            content: content.into(),
        }
    }

    /// Convenience constructor for [`Change::Delete`].
    pub fn delete(path: impl Into<String>) -> Change {
        Change::Delete { path: path.into() }
    }

    /// The path this change touches.
    pub fn path(&self) -> &str {
        match self {
            Change::Put { path, .. } | Change::Delete { path } => path,
        }
    }
}

/// Errors from repository operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A commit with no changes was requested.
    EmptyCommit,
    /// The path does not exist at the referenced snapshot.
    NotFound(String),
    /// The path is syntactically invalid or collides with a directory/file.
    InvalidPath(String),
    /// The referenced commit is not in the object database.
    UnknownCommit(ObjectId),
    /// Internal corruption: an object had an unexpected kind.
    Corrupt(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyCommit => write!(f, "empty commit"),
            Error::NotFound(p) => write!(f, "path not found: {p}"),
            Error::InvalidPath(p) => write!(f, "invalid path: {p}"),
            Error::UnknownCommit(c) => write!(f, "unknown commit: {c}"),
            Error::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Work accounting for one commit, consumed by the throughput benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Id of the new commit.
    pub id: ObjectId,
    /// Number of tracked files after the commit.
    pub files_total: usize,
    /// Bytes serialized and hashed for the index write (grows with
    /// repository size).
    pub index_bytes: usize,
    /// Tree objects rewritten (grows with the number of touched
    /// directories, not repository size).
    pub trees_written: usize,
    /// Blob objects written.
    pub blobs_written: usize,
}

/// How a path differs between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathChange {
    /// The changed path.
    pub path: String,
    /// Blob id on the old side, if present.
    pub old: Option<ObjectId>,
    /// Blob id on the new side, if present.
    pub new: Option<ObjectId>,
}

#[derive(Debug, Clone, Default)]
struct IndexDir {
    files: BTreeMap<String, ObjectId>,
    dirs: BTreeMap<String, IndexDir>,
    /// Tree object id of this directory as of the last write, cleared when
    /// any content underneath changes.
    cached: Option<ObjectId>,
}

impl IndexDir {
    fn is_empty(&self) -> bool {
        self.files.is_empty() && self.dirs.is_empty()
    }
}

/// A version-controlled store of configuration files.
///
/// # Examples
///
/// ```
/// use gitstore::repo::{Change, Repository};
///
/// let mut repo = Repository::new();
/// let out = repo
///     .commit("alice", "add config", 1, vec![Change::put("svc/app.json", "{}")])
///     .unwrap();
/// assert_eq!(out.files_total, 1);
/// let data = repo.read_head("svc/app.json").unwrap();
/// assert_eq!(&data[..], b"{}");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Repository {
    odb: Odb,
    refs: BTreeMap<String, ObjectId>,
    index: IndexDir,
    file_count: usize,
}

/// Name of the default branch.
pub const MAIN: &str = "main";

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Repository {
        Repository::default()
    }

    /// The current head commit, or `None` before the first commit.
    pub fn head(&self) -> Option<ObjectId> {
        self.refs.get(MAIN).copied()
    }

    /// Number of tracked files at head.
    pub fn file_count(&self) -> usize {
        self.file_count
    }

    /// The underlying object database.
    pub fn odb(&self) -> &Odb {
        &self.odb
    }

    /// Validates `changes` against the current head without applying them:
    /// path shape, file/directory collisions, and deletions of missing
    /// files, including interactions *within* the change set (a put
    /// followed by a colliding put, a delete of a path created earlier in
    /// the set). Cost is O(changes), independent of repository size.
    pub fn validate_changes(&self, changes: &[Change]) -> Result<(), Error> {
        if changes.is_empty() {
            return Err(Error::EmptyCommit);
        }
        let mut added: Vec<&str> = Vec::new();
        let mut removed: Vec<&str> = Vec::new();
        for c in changes {
            self.validate_change(c).or_else(|e| {
                // A change may be valid only relative to earlier changes in
                // the same set (e.g. deleting a path added above).
                match c {
                    Change::Delete { path } if added.contains(&path.as_str()) => Ok(()),
                    Change::Put { path, .. }
                        if matches!(e, Error::NotFound(_)) || removed.contains(&path.as_str()) =>
                    {
                        Ok(())
                    }
                    _ => Err(e),
                }
            })?;
            match c {
                Change::Put { path, .. } => added.push(path),
                Change::Delete { path } => removed.push(path),
            }
        }
        Ok(())
    }

    /// Creates a commit applying `changes` on top of the current head.
    ///
    /// All paths are validated before anything is applied; on error the
    /// repository is unchanged.
    pub fn commit(
        &mut self,
        author: &str,
        message: &str,
        timestamp: u64,
        changes: Vec<Change>,
    ) -> Result<CommitOutcome, Error> {
        self.validate_changes(&changes)?;
        let mut blobs_written = 0;
        for c in changes {
            match c {
                Change::Put { path, content } => {
                    let oid = self.odb.put(Object::Blob(content));
                    blobs_written += 1;
                    let existed = self.index_put(&path, oid);
                    if !existed {
                        self.file_count += 1;
                    }
                }
                Change::Delete { path } => {
                    self.index_delete(&path);
                    self.file_count -= 1;
                }
            }
        }
        // The O(total files) index write, as in git.
        let index_bytes = self.hash_index();
        let mut trees_written = 0;
        let mut index = std::mem::take(&mut self.index);
        let tree = Self::write_tree(&mut self.odb, &mut index, &mut trees_written);
        self.index = index;
        let commit = Commit {
            tree,
            parents: self.head().into_iter().collect(),
            author: author.to_string(),
            message: message.to_string(),
            timestamp,
        };
        let id = self.odb.put(Object::Commit(commit));
        self.refs.insert(MAIN.to_string(), id);
        Ok(CommitOutcome {
            id,
            files_total: self.file_count,
            index_bytes,
            trees_written,
            blobs_written,
        })
    }

    /// Reads a file at the given commit.
    pub fn read(&self, commit: ObjectId, path: &str) -> Result<Bytes, Error> {
        let c = self.commit_info(commit)?;
        let mut tree_oid = c.tree;
        let segments: Vec<&str> = path.split('/').collect();
        for (i, seg) in segments.iter().enumerate() {
            let tree = self.tree(tree_oid)?;
            let entry = tree
                .entries
                .iter()
                .find(|e| e.name == *seg)
                .ok_or_else(|| Error::NotFound(path.to_string()))?;
            let last = i == segments.len() - 1;
            match (last, entry.kind) {
                (true, EntryKind::Blob) => {
                    return match self.odb.get(entry.oid) {
                        Some(Object::Blob(b)) => Ok(b.clone()),
                        _ => Err(Error::Corrupt(format!("blob missing: {}", entry.oid))),
                    };
                }
                (false, EntryKind::Tree) => tree_oid = entry.oid,
                _ => return Err(Error::NotFound(path.to_string())),
            }
        }
        Err(Error::NotFound(path.to_string()))
    }

    /// Reads a file at the current head. Served from the in-memory head
    /// index (per-segment hash lookups) rather than a tree walk: head
    /// reads are the hot path of every compile-plan loader, and the tree
    /// walk's linear scan per directory made wide flat directories O(n)
    /// per read.
    pub fn read_head(&self, path: &str) -> Result<Bytes, Error> {
        let oid = self
            .index_lookup(path)
            .ok_or_else(|| Error::NotFound(path.to_string()))?;
        match self.odb.get(oid) {
            Some(Object::Blob(b)) => Ok(b.clone()),
            _ => Err(Error::Corrupt(format!("blob missing: {oid}"))),
        }
    }

    /// Returns whether `path` exists at head.
    pub fn exists(&self, path: &str) -> bool {
        self.index_lookup(path).is_some()
    }

    /// Returns the flat `path → blob id` listing of a commit's snapshot.
    pub fn snapshot(&self, commit: ObjectId) -> Result<BTreeMap<String, ObjectId>, Error> {
        let c = self.commit_info(commit)?;
        let mut out = BTreeMap::new();
        self.walk_tree(c.tree, String::new(), &mut out)?;
        Ok(out)
    }

    /// Returns commit metadata.
    pub fn commit_info(&self, commit: ObjectId) -> Result<&Commit, Error> {
        match self.odb.get(commit) {
            Some(Object::Commit(c)) => Ok(c),
            Some(_) => Err(Error::Corrupt(format!("not a commit: {commit}"))),
            None => Err(Error::UnknownCommit(commit)),
        }
    }

    /// Walks history from `from` to the root, following first parents.
    pub fn log(&self, from: ObjectId) -> Result<Vec<ObjectId>, Error> {
        let mut out = Vec::new();
        let mut cur = Some(from);
        while let Some(id) = cur {
            let c = self.commit_info(id)?;
            out.push(id);
            cur = c.parents.first().copied();
        }
        Ok(out)
    }

    /// Computes the paths that differ between commits `a` and `b`.
    ///
    /// Identical subtrees are skipped by object id, so the cost is
    /// proportional to the amount of change, not repository size.
    pub fn diff_commits(&self, a: ObjectId, b: ObjectId) -> Result<Vec<PathChange>, Error> {
        let ta = self.commit_info(a)?.tree;
        let tb = self.commit_info(b)?.tree;
        let mut out = Vec::new();
        self.diff_trees(Some(ta), Some(tb), String::new(), &mut out)?;
        Ok(out)
    }

    /// Computes the paths changed by `commit` relative to its first parent
    /// (everything, for a root commit).
    pub fn commit_changes(&self, commit: ObjectId) -> Result<Vec<PathChange>, Error> {
        let c = self.commit_info(commit)?;
        match c.parents.first() {
            Some(&p) => self.diff_commits(p, commit),
            None => {
                let snap = self.snapshot(commit)?;
                Ok(snap
                    .into_iter()
                    .map(|(path, oid)| PathChange {
                        path,
                        old: None,
                        new: Some(oid),
                    })
                    .collect())
            }
        }
    }

    /// Collects every path changed between `base` (exclusive) and the
    /// current head. With `base == None`, everything ever changed. Used by
    /// the landing strip's true-conflict check.
    pub fn paths_changed_since(&self, base: Option<ObjectId>) -> Result<HashSet<String>, Error> {
        let Some(head) = self.head() else {
            return Ok(HashSet::new());
        };
        let mut out = HashSet::new();
        let mut cur = Some(head);
        while let Some(id) = cur {
            if Some(id) == base {
                return Ok(out);
            }
            for ch in self.commit_changes(id)? {
                out.insert(ch.path);
            }
            cur = self.commit_info(id)?.parents.first().copied();
        }
        match base {
            // Walked to the root without meeting `base`: it is not an
            // ancestor of head.
            Some(b) => Err(Error::UnknownCommit(b)),
            None => Ok(out),
        }
    }

    fn tree(&self, oid: ObjectId) -> Result<&Tree, Error> {
        match self.odb.get(oid) {
            Some(Object::Tree(t)) => Ok(t),
            Some(_) => Err(Error::Corrupt(format!("not a tree: {oid}"))),
            None => Err(Error::Corrupt(format!("missing tree: {oid}"))),
        }
    }

    fn walk_tree(
        &self,
        oid: ObjectId,
        prefix: String,
        out: &mut BTreeMap<String, ObjectId>,
    ) -> Result<(), Error> {
        let tree = self.tree(oid)?.clone();
        for e in tree.entries {
            let path = if prefix.is_empty() {
                e.name.clone()
            } else {
                format!("{prefix}/{}", e.name)
            };
            match e.kind {
                EntryKind::Blob => {
                    out.insert(path, e.oid);
                }
                EntryKind::Tree => self.walk_tree(e.oid, path, out)?,
            }
        }
        Ok(())
    }

    fn diff_trees(
        &self,
        a: Option<ObjectId>,
        b: Option<ObjectId>,
        prefix: String,
        out: &mut Vec<PathChange>,
    ) -> Result<(), Error> {
        if a == b {
            return Ok(());
        }
        let empty = Tree::default();
        let ta = match a {
            Some(oid) => self.tree(oid)?.clone(),
            None => empty.clone(),
        };
        let tb = match b {
            Some(oid) => self.tree(oid)?.clone(),
            None => empty,
        };
        let names: std::collections::BTreeSet<&str> = ta
            .entries
            .iter()
            .chain(tb.entries.iter())
            .map(|e| e.name.as_str())
            .collect();
        for name in names {
            let ea = ta.entries.iter().find(|e| e.name == name);
            let eb = tb.entries.iter().find(|e| e.name == name);
            let path = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}/{name}")
            };
            match (ea, eb) {
                (Some(x), Some(y)) if x.oid == y.oid && x.kind == y.kind => {}
                _ => {
                    let sub = |e: Option<&TreeEntry>, k: EntryKind| {
                        e.filter(|e| e.kind == k).map(|e| e.oid)
                    };
                    let ba = sub(ea, EntryKind::Blob);
                    let bb = sub(eb, EntryKind::Blob);
                    if ba != bb {
                        out.push(PathChange {
                            path: path.clone(),
                            old: ba,
                            new: bb,
                        });
                    }
                    let da = sub(ea, EntryKind::Tree);
                    let db = sub(eb, EntryKind::Tree);
                    if da.is_some() || db.is_some() {
                        self.diff_trees(da, db, path, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_change(&self, c: &Change) -> Result<(), Error> {
        let path = c.path();
        if path.is_empty()
            || path.starts_with('/')
            || path.ends_with('/')
            || path.split('/').any(|s| s.is_empty())
        {
            return Err(Error::InvalidPath(path.to_string()));
        }
        match c {
            Change::Put { .. } => self.check_no_collision(path),
            Change::Delete { .. } => {
                if self.index_lookup(path).is_some() {
                    Ok(())
                } else {
                    Err(Error::NotFound(path.to_string()))
                }
            }
        }
    }

    /// Rejects a put whose path collides with an existing directory, or
    /// whose parent directories collide with existing files.
    fn check_no_collision(&self, path: &str) -> Result<(), Error> {
        let segments: Vec<&str> = path.split('/').collect();
        let mut dir = &self.index;
        for (i, seg) in segments.iter().enumerate() {
            let last = i == segments.len() - 1;
            if last {
                if dir.dirs.contains_key(*seg) {
                    return Err(Error::InvalidPath(path.to_string()));
                }
            } else {
                if dir.files.contains_key(*seg) {
                    return Err(Error::InvalidPath(path.to_string()));
                }
                match dir.dirs.get(*seg) {
                    Some(d) => dir = d,
                    None => return Ok(()),
                }
            }
        }
        Ok(())
    }

    fn index_lookup(&self, path: &str) -> Option<ObjectId> {
        let segments: Vec<&str> = path.split('/').collect();
        let mut dir = &self.index;
        for (i, seg) in segments.iter().enumerate() {
            if i == segments.len() - 1 {
                return dir.files.get(*seg).copied();
            }
            dir = dir.dirs.get(*seg)?;
        }
        None
    }

    /// Inserts `oid` at `path`, returning whether the file already existed.
    fn index_put(&mut self, path: &str, oid: ObjectId) -> bool {
        let segments: Vec<&str> = path.split('/').collect();
        let mut dir = &mut self.index;
        dir.cached = None;
        for seg in &segments[..segments.len() - 1] {
            dir = dir.dirs.entry(seg.to_string()).or_default();
            dir.cached = None;
        }
        dir.files
            .insert(segments[segments.len() - 1].to_string(), oid)
            .is_some()
    }

    fn index_delete(&mut self, path: &str) {
        fn rec(dir: &mut IndexDir, segments: &[&str]) {
            dir.cached = None;
            if segments.len() == 1 {
                dir.files.remove(segments[0]);
            } else if let Some(child) = dir.dirs.get_mut(segments[0]) {
                rec(child, &segments[1..]);
                if child.is_empty() {
                    dir.dirs.remove(segments[0]);
                }
            }
        }
        let segments: Vec<&str> = path.split('/').collect();
        rec(&mut self.index, &segments);
    }

    /// Serializes the whole index (every tracked path and blob id) and
    /// hashes it, mirroring git's `.git/index` rewrite. Returns the number
    /// of bytes hashed.
    fn hash_index(&self) -> usize {
        fn walk(dir: &IndexDir, prefix: &mut String, h: &mut Sha1, n: &mut usize) {
            for (name, oid) in &dir.files {
                h.update(prefix.as_bytes());
                h.update(name.as_bytes());
                h.update(&[0]);
                h.update(&oid.0);
                *n += prefix.len() + name.len() + 21;
            }
            for (name, child) in &dir.dirs {
                let saved = prefix.len();
                prefix.push_str(name);
                prefix.push('/');
                walk(child, prefix, h, n);
                prefix.truncate(saved);
            }
        }
        let mut h = Sha1::new();
        let mut n = 0;
        let mut prefix = String::new();
        walk(&self.index, &mut prefix, &mut h, &mut n);
        let _ = h.finalize();
        n
    }

    /// Writes tree objects for dirty directories bottom-up, reusing cached
    /// ids for clean subtrees.
    fn write_tree(odb: &mut Odb, dir: &mut IndexDir, written: &mut usize) -> ObjectId {
        if let Some(oid) = dir.cached {
            return oid;
        }
        let mut entries = Vec::with_capacity(dir.files.len() + dir.dirs.len());
        for (name, child) in dir.dirs.iter_mut() {
            let oid = Self::write_tree(odb, child, written);
            entries.push(TreeEntry {
                name: name.clone(),
                kind: EntryKind::Tree,
                oid,
            });
        }
        for (name, oid) in &dir.files {
            entries.push(TreeEntry {
                name: name.clone(),
                kind: EntryKind::Blob,
                oid: *oid,
            });
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let oid = odb.put(Object::Tree(Tree { entries }));
        *written += 1;
        dir.cached = Some(oid);
        oid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(path: &str, content: &str) -> Change {
        Change::put(path, content.to_string())
    }

    #[test]
    fn commit_and_read_back() {
        let mut r = Repository::new();
        r.commit(
            "a",
            "m",
            0,
            vec![put("x/y/z.json", "zzz"), put("top.json", "t")],
        )
        .unwrap();
        assert_eq!(&r.read_head("x/y/z.json").unwrap()[..], b"zzz");
        assert_eq!(&r.read_head("top.json").unwrap()[..], b"t");
        assert_eq!(r.file_count(), 2);
        assert!(r.exists("top.json"));
        assert!(!r.exists("x/y"));
    }

    #[test]
    fn empty_commit_rejected() {
        let mut r = Repository::new();
        assert_eq!(r.commit("a", "m", 0, vec![]), Err(Error::EmptyCommit));
    }

    #[test]
    fn invalid_paths_rejected() {
        let mut r = Repository::new();
        for bad in ["", "/x", "x/", "a//b"] {
            assert!(matches!(
                r.commit("a", "m", 0, vec![put(bad, "v")]),
                Err(Error::InvalidPath(_))
            ));
        }
    }

    #[test]
    fn file_dir_collisions_rejected() {
        let mut r = Repository::new();
        r.commit("a", "m", 0, vec![put("a/b", "v")]).unwrap();
        assert!(matches!(
            r.commit("a", "m", 1, vec![put("a", "v")]),
            Err(Error::InvalidPath(_))
        ));
        assert!(matches!(
            r.commit("a", "m", 1, vec![put("a/b/c", "v")]),
            Err(Error::InvalidPath(_))
        ));
    }

    #[test]
    fn delete_missing_rejected_and_repo_unchanged() {
        let mut r = Repository::new();
        r.commit("a", "m", 0, vec![put("a", "1")]).unwrap();
        let head = r.head();
        assert!(matches!(
            r.commit("a", "m", 1, vec![Change::delete("nope")]),
            Err(Error::NotFound(_))
        ));
        assert_eq!(r.head(), head);
    }

    #[test]
    fn delete_prunes_empty_dirs() {
        let mut r = Repository::new();
        r.commit("a", "m", 0, vec![put("d/e/f", "1"), put("top", "2")])
            .unwrap();
        r.commit("a", "m", 1, vec![Change::delete("d/e/f")])
            .unwrap();
        assert_eq!(r.file_count(), 1);
        assert!(matches!(r.read_head("d/e/f"), Err(Error::NotFound(_))));
        let snap = r.snapshot(r.head().unwrap()).unwrap();
        assert_eq!(snap.len(), 1);
        assert!(snap.contains_key("top"));
    }

    #[test]
    fn history_walk() {
        let mut r = Repository::new();
        let c1 = r.commit("a", "one", 0, vec![put("f", "1")]).unwrap().id;
        let c2 = r.commit("a", "two", 1, vec![put("f", "2")]).unwrap().id;
        assert_eq!(r.log(c2).unwrap(), vec![c2, c1]);
        assert_eq!(r.commit_info(c2).unwrap().parents, vec![c1]);
        // Old snapshot still readable.
        assert_eq!(&r.read(c1, "f").unwrap()[..], b"1");
        assert_eq!(&r.read(c2, "f").unwrap()[..], b"2");
    }

    #[test]
    fn diff_commits_reports_changed_paths_only() {
        let mut r = Repository::new();
        let c1 = r
            .commit(
                "a",
                "m",
                0,
                vec![put("a/one", "1"), put("b/two", "2"), put("c", "3")],
            )
            .unwrap()
            .id;
        let c2 = r
            .commit(
                "a",
                "m",
                1,
                vec![put("a/one", "1x"), Change::delete("c"), put("d/new", "4")],
            )
            .unwrap()
            .id;
        let mut paths: Vec<String> = r
            .diff_commits(c1, c2)
            .unwrap()
            .into_iter()
            .map(|c| c.path)
            .collect();
        paths.sort();
        assert_eq!(paths, vec!["a/one", "c", "d/new"]);
    }

    #[test]
    fn commit_changes_of_root_lists_everything() {
        let mut r = Repository::new();
        let c1 = r
            .commit("a", "m", 0, vec![put("x", "1"), put("y", "2")])
            .unwrap()
            .id;
        let ch = r.commit_changes(c1).unwrap();
        assert_eq!(ch.len(), 2);
        assert!(ch.iter().all(|c| c.old.is_none()));
    }

    #[test]
    fn paths_changed_since_tracks_multiple_commits() {
        let mut r = Repository::new();
        let base = r.commit("a", "m", 0, vec![put("a", "1")]).unwrap().id;
        r.commit("a", "m", 1, vec![put("b", "2")]).unwrap();
        r.commit("a", "m", 2, vec![put("c", "3")]).unwrap();
        let changed = r.paths_changed_since(Some(base)).unwrap();
        assert_eq!(changed.len(), 2);
        assert!(changed.contains("b") && changed.contains("c"));
        // base == head → empty set.
        let head = r.head();
        assert!(r.paths_changed_since(head).unwrap().is_empty());
    }

    #[test]
    fn paths_changed_since_unknown_base_errors() {
        let mut r = Repository::new();
        r.commit("a", "m", 0, vec![put("a", "1")]).unwrap();
        let ghost = Object::Blob(Bytes::from_static(b"ghost")).id();
        assert!(r.paths_changed_since(Some(ghost)).is_err());
    }

    #[test]
    fn index_bytes_grow_with_repo_while_trees_do_not() {
        let mut r = Repository::new();
        // Seed 100 files across 10 directories.
        let seed: Vec<Change> = (0..100)
            .map(|i| put(&format!("d{}/f{}", i % 10, i), "v"))
            .collect();
        r.commit("a", "seed", 0, seed).unwrap();
        let small = r.commit("a", "m", 1, vec![put("d0/f0", "v2")]).unwrap();
        // Grow to 1000 files.
        let grow: Vec<Change> = (100..1000)
            .map(|i| put(&format!("d{}/f{}", i % 10, i), "v"))
            .collect();
        r.commit("a", "grow", 2, grow).unwrap();
        let big = r.commit("a", "m", 3, vec![put("d0/f0", "v3")]).unwrap();
        assert!(big.index_bytes > small.index_bytes * 5);
        // Tree writes stay proportional to touched dirs (root + d0).
        assert_eq!(small.trees_written, 2);
        assert_eq!(big.trees_written, 2);
    }

    #[test]
    fn identical_snapshots_share_objects() {
        let mut r = Repository::new();
        let c1 = r.commit("a", "m", 0, vec![put("f", "1")]).unwrap().id;
        let c2 = r.commit("a", "m", 1, vec![put("f", "2")]).unwrap().id;
        let c3 = r.commit("a", "m", 2, vec![put("f", "1")]).unwrap().id;
        let t1 = r.commit_info(c1).unwrap().tree;
        let t3 = r.commit_info(c3).unwrap().tree;
        assert_eq!(t1, t3, "same snapshot → same tree id");
        assert_ne!(c1, c3, "but distinct commits");
        let _ = c2;
    }
}
