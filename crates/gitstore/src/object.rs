//! Object model: blobs, trees, and commits, addressed by content hash.
//!
//! The serialization format mirrors git's loose-object layout
//! (`"<type> <len>\0<payload>"`) so that identical content always hashes to
//! the same [`ObjectId`] regardless of how it was produced.

use std::fmt;

use bytes::Bytes;

use crate::sha1::{self, Sha1};

/// A 20-byte content hash identifying an object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub [u8; 20]);

impl ObjectId {
    /// Renders the id as 40 hex characters.
    pub fn to_hex(&self) -> String {
        sha1::to_hex(&self.0)
    }

    /// Returns a short 8-character prefix, as shown in UIs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({})", self.short())
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// The kind of object a tree entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A file.
    Blob,
    /// A subdirectory.
    Tree,
}

/// One entry of a [`Tree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeEntry {
    /// Entry name within the directory (no slashes).
    pub name: String,
    /// Whether this is a file or a subdirectory.
    pub kind: EntryKind,
    /// The object the entry points at.
    pub oid: ObjectId,
}

/// A directory: a sorted list of named entries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tree {
    /// Entries sorted by name.
    pub entries: Vec<TreeEntry>,
}

/// A commit: a snapshot plus history metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// Root tree of the snapshot.
    pub tree: ObjectId,
    /// Parent commits (empty for the root commit).
    pub parents: Vec<ObjectId>,
    /// Author identity.
    pub author: String,
    /// Commit message.
    pub message: String,
    /// Commit timestamp, in seconds (caller-defined epoch).
    pub timestamp: u64,
}

/// Any object storable in the object database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Object {
    /// File contents.
    Blob(Bytes),
    /// A directory.
    Tree(Tree),
    /// A commit.
    Commit(Commit),
}

impl Object {
    /// Serializes the object into its canonical byte form.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, payload) = match self {
            Object::Blob(b) => ("blob", b.to_vec()),
            Object::Tree(t) => ("tree", encode_tree(t)),
            Object::Commit(c) => ("commit", encode_commit(c)),
        };
        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(kind.as_bytes());
        out.push(b' ');
        out.extend_from_slice(payload.len().to_string().as_bytes());
        out.push(0);
        out.extend_from_slice(&payload);
        out
    }

    /// Computes the object's content id.
    pub fn id(&self) -> ObjectId {
        let mut h = Sha1::new();
        h.update(&self.encode());
        ObjectId(h.finalize())
    }

    /// Approximate in-memory size of the object in bytes, used for store
    /// accounting.
    pub fn size(&self) -> usize {
        match self {
            Object::Blob(b) => b.len(),
            Object::Tree(t) => t.entries.iter().map(|e| e.name.len() + 21).sum::<usize>(),
            Object::Commit(c) => c.author.len() + c.message.len() + 21 * (1 + c.parents.len()) + 8,
        }
    }
}

fn encode_tree(t: &Tree) -> Vec<u8> {
    debug_assert!(
        t.entries.windows(2).all(|w| w[0].name < w[1].name),
        "tree entries must be sorted and unique"
    );
    let mut out = Vec::new();
    for e in &t.entries {
        let mode: &[u8] = match e.kind {
            EntryKind::Blob => b"100644",
            EntryKind::Tree => b"40000",
        };
        out.extend_from_slice(mode);
        out.push(b' ');
        out.extend_from_slice(e.name.as_bytes());
        out.push(0);
        out.extend_from_slice(&e.oid.0);
    }
    out
}

fn encode_commit(c: &Commit) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"tree ");
    out.extend_from_slice(c.tree.to_hex().as_bytes());
    out.push(b'\n');
    for p in &c.parents {
        out.extend_from_slice(b"parent ");
        out.extend_from_slice(p.to_hex().as_bytes());
        out.push(b'\n');
    }
    out.extend_from_slice(b"author ");
    out.extend_from_slice(c.author.as_bytes());
    out.extend_from_slice(b" ");
    out.extend_from_slice(c.timestamp.to_string().as_bytes());
    out.extend_from_slice(b"\n\n");
    out.extend_from_slice(c.message.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(s: &str) -> Object {
        Object::Blob(Bytes::copy_from_slice(s.as_bytes()))
    }

    #[test]
    fn blob_id_matches_git() {
        // `echo -n "hello" | git hash-object --stdin` == this.
        assert_eq!(
            blob("hello").id().to_hex(),
            "b6fc4c620b67d95f953a5c1c1230aaab5db5a1b0"
        );
        assert_eq!(
            blob("").id().to_hex(),
            "e69de29bb2d1d6434b8b29ae775ad8c2e48c5391"
        );
    }

    #[test]
    fn same_content_same_id() {
        assert_eq!(blob("x").id(), blob("x").id());
        assert_ne!(blob("x").id(), blob("y").id());
    }

    #[test]
    fn tree_id_depends_on_entries() {
        let b = blob("f").id();
        let t1 = Object::Tree(Tree {
            entries: vec![TreeEntry {
                name: "a".into(),
                kind: EntryKind::Blob,
                oid: b,
            }],
        });
        let t2 = Object::Tree(Tree {
            entries: vec![TreeEntry {
                name: "b".into(),
                kind: EntryKind::Blob,
                oid: b,
            }],
        });
        assert_ne!(t1.id(), t2.id());
    }

    #[test]
    fn commit_encoding_includes_parents() {
        let tree = blob("t").id();
        let c1 = Object::Commit(Commit {
            tree,
            parents: vec![],
            author: "alice".into(),
            message: "init".into(),
            timestamp: 100,
        });
        let c2 = Object::Commit(Commit {
            tree,
            parents: vec![c1.id()],
            author: "alice".into(),
            message: "init".into(),
            timestamp: 100,
        });
        assert_ne!(c1.id(), c2.id());
    }

    #[test]
    fn short_id_is_prefix() {
        let id = blob("hello").id();
        assert!(id.to_hex().starts_with(&id.short()));
        assert_eq!(id.short().len(), 8);
    }
}
