//! Partitioned multi-repository namespace.
//!
//! Section 3.6: to scale commit throughput beyond what one git repository
//! can accept, Configerator migrates to "multiple smaller git repositories
//! that collectively serve a partitioned global name space" — files under
//! different path prefixes (e.g. `/feed`, `/tao`) live in different
//! repositories that accept commits concurrently, and a metadata table maps
//! paths to repositories. [`MultiRepo`] implements that routing layer,
//! including incremental repository addition and prefix migration (which,
//! as in the paper, "only requires updating the metadata").

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::object::ObjectId;
use crate::repo::{Change, CommitOutcome, Error, Repository};

/// Identifier of a repository within a [`MultiRepo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RepoId(pub usize);

/// A partitioned global namespace over multiple repositories.
///
/// Routing is by longest matching path prefix; the root prefix `""` always
/// routes to the initial repository, so every path is routable.
///
/// # Examples
///
/// ```
/// use gitstore::multirepo::MultiRepo;
/// use gitstore::repo::Change;
///
/// let mut m = MultiRepo::new();
/// let feed = m.add_repo("feed/");
/// let tao = m.add_repo("tao/");
/// m.commit("alice", "m", 0, vec![
///     Change::put("feed/ranker.json", "{}"),
///     Change::put("tao/topology.json", "{}"),
///     Change::put("misc.json", "{}"),
/// ]).unwrap();
/// assert_eq!(m.route("feed/ranker.json"), feed);
/// assert_eq!(m.route("tao/topology.json"), tao);
/// assert_eq!(m.repo(feed).file_count(), 1);
/// assert_eq!(m.repo(m.route("misc.json")).file_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MultiRepo {
    /// Prefix → repository, checked longest-prefix-first.
    routes: BTreeMap<String, RepoId>,
    repos: Vec<Repository>,
}

impl Default for MultiRepo {
    fn default() -> MultiRepo {
        MultiRepo::new()
    }
}

impl MultiRepo {
    /// Creates a namespace with a single root repository.
    pub fn new() -> MultiRepo {
        let mut routes = BTreeMap::new();
        routes.insert(String::new(), RepoId(0));
        MultiRepo {
            routes,
            repos: vec![Repository::new()],
        }
    }

    /// Adds an empty repository serving `prefix` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is already routed.
    pub fn add_repo(&mut self, prefix: &str) -> RepoId {
        assert!(
            !self.routes.contains_key(prefix),
            "prefix already routed: {prefix:?}"
        );
        let id = RepoId(self.repos.len());
        self.repos.push(Repository::new());
        self.routes.insert(prefix.to_string(), id);
        id
    }

    /// Number of repositories.
    pub fn num_repos(&self) -> usize {
        self.repos.len()
    }

    /// The routing table (prefix → repository).
    pub fn routes(&self) -> &BTreeMap<String, RepoId> {
        &self.routes
    }

    /// Routes `path` to its repository by longest matching prefix.
    pub fn route(&self, path: &str) -> RepoId {
        self.routes
            .iter()
            .filter(|(prefix, _)| path.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, id)| *id)
            .expect("root route always matches")
    }

    /// Shared access to a repository.
    pub fn repo(&self, id: RepoId) -> &Repository {
        &self.repos[id.0]
    }

    /// Mutable access to a repository (for per-partition landing strips).
    pub fn repo_mut(&mut self, id: RepoId) -> &mut Repository {
        &mut self.repos[id.0]
    }

    /// Commits `changes`, split by route. Each affected repository receives
    /// one commit; commits in distinct repositories are independent (this is
    /// what allows concurrent commits in the paper's partitioned design).
    ///
    /// Note: unlike a single repository, a multi-repo commit spanning
    /// partitions is not atomic; the paper accepts this and keeps dependent
    /// configs in one repository when atomicity matters.
    pub fn commit(
        &mut self,
        author: &str,
        message: &str,
        timestamp: u64,
        changes: Vec<Change>,
    ) -> Result<Vec<(RepoId, CommitOutcome)>, Error> {
        if changes.is_empty() {
            return Err(Error::EmptyCommit);
        }
        let mut by_repo: BTreeMap<RepoId, Vec<Change>> = BTreeMap::new();
        for c in changes {
            by_repo.entry(self.route(c.path())).or_default().push(c);
        }
        // Validate everything up front so a failure leaves all partitions
        // untouched. (Validation is O(changes), not O(repository) — this
        // is on the Fig 13 hot path.)
        for (&id, group) in &by_repo {
            self.repos[id.0].validate_changes(group)?;
        }
        let mut out = Vec::new();
        for (id, group) in by_repo {
            let o = self.repos[id.0].commit(author, message, timestamp, group)?;
            out.push((id, o));
        }
        Ok(out)
    }

    /// Reads `path` at the head of its routed repository.
    pub fn read_head(&self, path: &str) -> Result<Bytes, Error> {
        self.repo(self.route(path)).read_head(path)
    }

    /// Returns whether `path` exists at head.
    pub fn exists(&self, path: &str) -> bool {
        self.repo(self.route(path)).exists(path)
    }

    /// Total files across all repositories.
    pub fn file_count(&self) -> usize {
        self.repos.iter().map(Repository::file_count).sum()
    }

    /// Heads of all repositories, in repository order.
    pub fn heads(&self) -> Vec<Option<ObjectId>> {
        self.repos.iter().map(Repository::head).collect()
    }

    /// Migrates every file under `prefix` into a new repository, as the
    /// paper does when one repository grows too large. File contents are
    /// unchanged; only routing metadata and the two repositories' heads
    /// move. Returns the new repository's id.
    pub fn migrate_prefix(
        &mut self,
        prefix: &str,
        author: &str,
        timestamp: u64,
    ) -> Result<RepoId, Error> {
        let src_id = self.route(prefix);
        let src = &self.repos[src_id.0];
        let moved: Vec<(String, Bytes)> = match src.head() {
            Some(head) => src
                .snapshot(head)?
                .into_keys()
                .filter(|p| p.starts_with(prefix))
                .map(|p| {
                    let data = src.read(head, &p)?;
                    Ok((p, data))
                })
                .collect::<Result<_, Error>>()?,
            None => Vec::new(),
        };
        let new_id = self.add_repo(prefix);
        if !moved.is_empty() {
            let puts: Vec<Change> = moved
                .iter()
                .map(|(p, d)| Change::put(p.clone(), d.clone()))
                .collect();
            self.repos[new_id.0].commit(author, &format!("migrate {prefix}"), timestamp, puts)?;
            let dels: Vec<Change> = moved
                .iter()
                .map(|(p, _)| Change::delete(p.clone()))
                .collect();
            self.repos[src_id.0].commit(
                author,
                &format!("migrated {prefix} out"),
                timestamp,
                dels,
            )?;
        }
        Ok(new_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let mut m = MultiRepo::new();
        let feed = m.add_repo("feed/");
        let feed_ml = m.add_repo("feed/ml/");
        assert_eq!(m.route("feed/a"), feed);
        assert_eq!(m.route("feed/ml/model"), feed_ml);
        assert_eq!(m.route("other"), RepoId(0));
    }

    #[test]
    fn commit_splits_by_route() {
        let mut m = MultiRepo::new();
        let feed = m.add_repo("feed/");
        let out = m
            .commit(
                "a",
                "m",
                0,
                vec![Change::put("feed/x", "1"), Change::put("root", "2")],
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(m.repo(feed).file_count(), 1);
        assert_eq!(m.repo(RepoId(0)).file_count(), 1);
        assert_eq!(m.file_count(), 2);
    }

    #[test]
    fn failed_commit_leaves_all_partitions_untouched() {
        let mut m = MultiRepo::new();
        m.add_repo("feed/");
        m.commit("a", "m", 0, vec![Change::put("feed/x", "1")])
            .unwrap();
        let heads = m.heads();
        let err = m.commit(
            "a",
            "m",
            1,
            vec![Change::put("feed/y", "2"), Change::delete("missing")],
        );
        assert!(err.is_err());
        assert_eq!(m.heads(), heads, "no partition advanced");
    }

    #[test]
    fn migrate_prefix_moves_files_and_rewires_routing() {
        let mut m = MultiRepo::new();
        m.commit(
            "a",
            "m",
            0,
            vec![
                Change::put("tao/one", "1"),
                Change::put("tao/two", "2"),
                Change::put("feed/x", "3"),
            ],
        )
        .unwrap();
        let tao = m.migrate_prefix("tao/", "admin", 10).unwrap();
        assert_eq!(m.route("tao/one"), tao);
        assert_eq!(m.repo(tao).file_count(), 2);
        assert_eq!(m.repo(RepoId(0)).file_count(), 1);
        // Contents unchanged after migration.
        assert_eq!(&m.read_head("tao/one").unwrap()[..], b"1");
        assert_eq!(&m.read_head("feed/x").unwrap()[..], b"3");
    }

    #[test]
    fn duplicate_prefix_panics() {
        let mut m = MultiRepo::new();
        m.add_repo("x/");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.add_repo("x/");
        }));
        assert!(r.is_err());
    }
}
