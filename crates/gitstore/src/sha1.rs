//! A self-contained SHA-1 implementation.
//!
//! gitstore addresses objects by SHA-1, like git. SHA-1 is used here purely
//! as a content-addressing function (as in git), not for adversarial
//! collision resistance.

/// Incremental SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use gitstore::sha1::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(
///     gitstore::sha1::to_hex(&digest),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Sha1 {
        Sha1::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha1 {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append: bypass update's total_len bookkeeping.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Hashes `data` in one shot.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// Renders a digest as lowercase hex.
pub fn to_hex(digest: &[u8; 20]) -> String {
    let mut s = String::with_capacity(40);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // Known-answer tests from FIPS 180-1 and common vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            to_hex(&sha1(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            to_hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(
            to_hex(&sha1(msg)),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha1(&msg)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u16)
            .map(|b| (b % 251) as u8)
            .cycle()
            .take(10_000)
            .collect();
        let one = sha1(&data);
        for chunk_size in [1usize, 3, 63, 64, 65, 1000] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finalize(), one, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise padding around the 56/64-byte block boundaries.
        for len in 50..70 {
            let data = vec![b'x'; len];
            let d1 = sha1(&data);
            let mut h = Sha1::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
