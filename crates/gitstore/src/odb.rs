//! The object database: a content-addressed store of [`Object`]s.

use std::collections::HashMap;

use crate::object::{Object, ObjectId};

/// In-memory content-addressed object store.
///
/// Writing the same content twice is free (deduplicated by id), exactly as
/// in git's object database.
#[derive(Debug, Default, Clone)]
pub struct Odb {
    objects: HashMap<ObjectId, Object>,
    total_bytes: usize,
}

impl Odb {
    /// Creates an empty store.
    pub fn new() -> Odb {
        Odb::default()
    }

    /// Inserts `obj`, returning its id. Duplicate content is deduplicated.
    pub fn put(&mut self, obj: Object) -> ObjectId {
        let id = obj.id();
        if !self.objects.contains_key(&id) {
            self.total_bytes += obj.size();
            self.objects.insert(id, obj);
        }
        id
    }

    /// Looks up an object by id.
    pub fn get(&self, id: ObjectId) -> Option<&Object> {
        self.objects.get(&id)
    }

    /// Returns whether `id` is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Number of distinct objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Approximate total payload bytes stored (post-deduplication).
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn put_get_round_trip() {
        let mut odb = Odb::new();
        let obj = Object::Blob(Bytes::from_static(b"content"));
        let id = odb.put(obj.clone());
        assert_eq!(odb.get(id), Some(&obj));
        assert!(odb.contains(id));
        assert_eq!(odb.len(), 1);
    }

    #[test]
    fn duplicate_content_deduplicates() {
        let mut odb = Odb::new();
        let id1 = odb.put(Object::Blob(Bytes::from_static(b"same")));
        let id2 = odb.put(Object::Blob(Bytes::from_static(b"same")));
        assert_eq!(id1, id2);
        assert_eq!(odb.len(), 1);
        assert_eq!(odb.total_bytes(), 4);
    }

    #[test]
    fn missing_lookup_is_none() {
        let odb = Odb::new();
        let ghost = Object::Blob(Bytes::from_static(b"ghost")).id();
        assert!(odb.get(ghost).is_none());
        assert!(odb.is_empty());
    }
}
