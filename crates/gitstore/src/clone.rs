//! Working clones and the stale-push behaviour that causes commit
//! contention.
//!
//! Section 3.6 of the paper: when an engineer pushes a diff, git first
//! checks that the local clone is up to date with the shared repository —
//! even if the two diffs touch *different files*, a push from a stale clone
//! is rejected and the engineer must sync (which "may take 10s of seconds")
//! and retry. [`WorkClone::push`] reproduces exactly that protocol; the
//! landing strip (in the `configerator` crate) exists to avoid it.

use std::fmt;

use crate::object::ObjectId;
use crate::repo::{Change, CommitOutcome, Error, Repository};

/// A proposed change set based on a specific remote head, i.e. a "diff" in
/// the paper's terminology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff {
    /// The remote head the author's clone was synced to when the diff was
    /// produced (`None` for a diff against the empty repository).
    pub base: Option<ObjectId>,
    /// Author identity.
    pub author: String,
    /// Commit message.
    pub message: String,
    /// The staged changes.
    pub changes: Vec<Change>,
}

impl Diff {
    /// Returns the set of paths this diff touches.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.changes.iter().map(Change::path)
    }
}

/// Why a push was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// The clone is stale: the remote head moved since the last sync. The
    /// author must sync and retry (git's behaviour even when the concurrent
    /// commits touch unrelated files).
    Stale {
        /// The remote's current head.
        remote_head: Option<ObjectId>,
    },
    /// The underlying commit failed (invalid path, delete of missing file…).
    Commit(Error),
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Stale { remote_head } => match remote_head {
                Some(h) => write!(f, "stale clone: remote head moved to {}", h.short()),
                None => write!(f, "stale clone: remote head moved"),
            },
            PushError::Commit(e) => write!(f, "commit failed: {e}"),
        }
    }
}

impl std::error::Error for PushError {}

/// An engineer's local clone of the shared repository.
///
/// # Examples
///
/// ```
/// use gitstore::clone::{PushError, WorkClone};
/// use gitstore::repo::{Change, Repository};
///
/// let mut shared = Repository::new();
/// let mut alice = WorkClone::of(&shared);
/// let mut bob = WorkClone::of(&shared);
///
/// alice.stage(Change::put("a.json", "1"));
/// alice.push(&mut shared, "alice", "add a", 10).unwrap();
///
/// // Bob's clone is now stale — even though he touches a different file.
/// bob.stage(Change::put("b.json", "2"));
/// assert!(matches!(
///     bob.push(&mut shared, "bob", "add b", 11),
///     Err(PushError::Stale { .. })
/// ));
///
/// // After syncing, the push succeeds.
/// bob.sync(&shared);
/// bob.push(&mut shared, "bob", "add b", 12).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct WorkClone {
    base: Option<ObjectId>,
    staged: Vec<Change>,
}

impl WorkClone {
    /// Clones the shared repository at its current head.
    pub fn of(repo: &Repository) -> WorkClone {
        WorkClone {
            base: repo.head(),
            staged: Vec::new(),
        }
    }

    /// The remote head this clone last synced to.
    pub fn base(&self) -> Option<ObjectId> {
        self.base
    }

    /// Stages a change in the working copy.
    pub fn stage(&mut self, change: Change) {
        self.staged.push(change);
    }

    /// Number of staged changes.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Brings the clone up to date with the shared repository. Staged
    /// changes are kept (they will be committed on top of the new base).
    pub fn sync(&mut self, repo: &Repository) {
        self.base = repo.head();
    }

    /// Returns whether the clone is up to date with `repo`.
    pub fn is_fresh(&self, repo: &Repository) -> bool {
        self.base == repo.head()
    }

    /// Packages the staged changes as a [`Diff`] (for submission to a
    /// landing strip) without clearing them.
    pub fn diff(&self, author: &str, message: &str) -> Diff {
        Diff {
            base: self.base,
            author: author.to_string(),
            message: message.to_string(),
            changes: self.staged.clone(),
        }
    }

    /// Pushes the staged changes directly to the shared repository.
    ///
    /// Fails with [`PushError::Stale`] if the remote head moved since the
    /// last [`WorkClone::sync`], regardless of which files changed. On
    /// success the staged changes are cleared and the clone is synced to the
    /// new head.
    pub fn push(
        &mut self,
        repo: &mut Repository,
        author: &str,
        message: &str,
        timestamp: u64,
    ) -> Result<CommitOutcome, PushError> {
        if repo.head() != self.base {
            return Err(PushError::Stale {
                remote_head: repo.head(),
            });
        }
        let changes = std::mem::take(&mut self.staged);
        match repo.commit(author, message, timestamp, changes.clone()) {
            Ok(out) => {
                self.base = Some(out.id);
                Ok(out)
            }
            Err(e) => {
                self.staged = changes;
                Err(PushError::Commit(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_disjoint_pushes_still_conflict() {
        let mut shared = Repository::new();
        let mut a = WorkClone::of(&shared);
        let mut b = WorkClone::of(&shared);
        a.stage(Change::put("x", "1"));
        b.stage(Change::put("y", "2"));
        a.push(&mut shared, "a", "m", 0).unwrap();
        let err = b.push(&mut shared, "b", "m", 1).unwrap_err();
        assert!(matches!(
            err,
            PushError::Stale {
                remote_head: Some(_)
            }
        ));
        // Staged changes survive the failed push.
        assert_eq!(b.staged_len(), 1);
        b.sync(&shared);
        b.push(&mut shared, "b", "m", 2).unwrap();
        assert_eq!(shared.file_count(), 2);
    }

    #[test]
    fn failed_commit_keeps_staged_changes_and_base() {
        let mut shared = Repository::new();
        let mut a = WorkClone::of(&shared);
        a.stage(Change::delete("missing"));
        let err = a.push(&mut shared, "a", "m", 0).unwrap_err();
        assert!(matches!(err, PushError::Commit(Error::NotFound(_))));
        assert_eq!(a.staged_len(), 1);
        assert!(a.is_fresh(&shared));
    }

    #[test]
    fn successful_push_clears_staging_and_advances_base() {
        let mut shared = Repository::new();
        let mut a = WorkClone::of(&shared);
        a.stage(Change::put("x", "1"));
        let out = a.push(&mut shared, "a", "m", 0).unwrap();
        assert_eq!(a.staged_len(), 0);
        assert_eq!(a.base(), Some(out.id));
        assert!(a.is_fresh(&shared));
    }

    #[test]
    fn diff_packages_base_and_paths() {
        let mut shared = Repository::new();
        shared
            .commit("a", "seed", 0, vec![Change::put("s", "0")])
            .unwrap();
        let mut c = WorkClone::of(&shared);
        c.stage(Change::put("p/q", "1"));
        c.stage(Change::delete("s"));
        let d = c.diff("alice", "msg");
        assert_eq!(d.base, shared.head());
        let paths: Vec<&str> = d.paths().collect();
        assert_eq!(paths, vec!["p/q", "s"]);
    }
}
