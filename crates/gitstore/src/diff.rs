//! Line-oriented diffing (Myers algorithm).
//!
//! Used by the review pipeline, by the landing strip's true-conflict check,
//! and by the Table 2 reproduction ("number of line changes in a config
//! update"), which follows the paper's Unix-`diff` line-counting convention:
//! adding or deleting a line counts as one line change, so modifying a line
//! counts as two.

/// One operation of a line diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOp<'a> {
    /// A line present in both sides.
    Equal(&'a str),
    /// A line only in the new side.
    Insert(&'a str),
    /// A line only in the old side.
    Delete(&'a str),
}

/// Statistics of a diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiffStat {
    /// Lines inserted.
    pub inserted: usize,
    /// Lines deleted.
    pub deleted: usize,
}

impl DiffStat {
    /// Total line changes in the paper's convention (insertions plus
    /// deletions).
    pub fn line_changes(&self) -> usize {
        self.inserted + self.deleted
    }
}

/// Computes the line diff between `old` and `new` using Myers' O(ND)
/// algorithm.
///
/// # Examples
///
/// ```
/// use gitstore::diff::{diff_lines, DiffOp};
///
/// let ops = diff_lines("a\nb\nc", "a\nx\nc");
/// assert!(ops.contains(&DiffOp::Delete("b")));
/// assert!(ops.contains(&DiffOp::Insert("x")));
/// ```
pub fn diff_lines<'a>(old: &'a str, new: &'a str) -> Vec<DiffOp<'a>> {
    let a: Vec<&str> = split_lines(old);
    let b: Vec<&str> = split_lines(new);
    let trace = myers_trace(&a, &b);
    backtrack(&a, &b, &trace)
}

/// Computes only the insert/delete counts between `old` and `new`.
pub fn diff_stat(old: &str, new: &str) -> DiffStat {
    let mut stat = DiffStat::default();
    for op in diff_lines(old, new) {
        match op {
            DiffOp::Insert(_) => stat.inserted += 1,
            DiffOp::Delete(_) => stat.deleted += 1,
            DiffOp::Equal(_) => {}
        }
    }
    stat
}

/// Renders a diff in a compact unified-like text form (no hunk headers).
pub fn render(ops: &[DiffOp<'_>]) -> String {
    let mut out = String::new();
    for op in ops {
        match op {
            DiffOp::Equal(l) => {
                out.push(' ');
                out.push_str(l);
            }
            DiffOp::Insert(l) => {
                out.push('+');
                out.push_str(l);
            }
            DiffOp::Delete(l) => {
                out.push('-');
                out.push_str(l);
            }
        }
        out.push('\n');
    }
    out
}

fn split_lines(s: &str) -> Vec<&str> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.lines().collect()
    }
}

/// Runs the forward pass of Myers' algorithm, returning the trace of `V`
/// arrays for backtracking.
fn myers_trace(a: &[&str], b: &[&str]) -> Vec<Vec<isize>> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    let max = n + m;
    let offset = max;
    let mut v = vec![0isize; (2 * max + 1).max(1) as usize];
    let mut trace = Vec::new();
    if max == 0 {
        return trace;
    }
    for d in 0..=max {
        trace.push(v.clone());
        let mut k = -d;
        while k <= d {
            let idx = (k + offset) as usize;
            let mut x = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
                v[idx + 1]
            } else {
                v[idx - 1] + 1
            };
            let mut y = x - k;
            while x < n && y < m && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                trace.push(v.clone());
                return trace;
            }
            k += 2;
        }
    }
    trace
}

fn backtrack<'a>(a: &[&'a str], b: &[&'a str], trace: &[Vec<isize>]) -> Vec<DiffOp<'a>> {
    let mut ops = Vec::new();
    let n = a.len() as isize;
    let m = b.len() as isize;
    if trace.is_empty() {
        return ops;
    }
    let offset = n + m;
    let mut x = n;
    let mut y = m;
    // Walk the D-path trace backwards from the end state.
    for d in (0..trace.len().saturating_sub(1)).rev() {
        let v = &trace[d];
        let k = x - y;
        let idx = (k + offset) as usize;
        let prev_k = if k == -(d as isize) || (k != d as isize && v[idx - 1] < v[idx + 1]) {
            k + 1
        } else {
            k - 1
        };
        let prev_x = v[(prev_k + offset) as usize];
        let prev_y = prev_x - prev_k;
        while x > prev_x && y > prev_y {
            ops.push(DiffOp::Equal(a[(x - 1) as usize]));
            x -= 1;
            y -= 1;
        }
        if d == 0 {
            break;
        }
        if x == prev_x {
            ops.push(DiffOp::Insert(b[(y - 1) as usize]));
            y -= 1;
        } else {
            ops.push(DiffOp::Delete(a[(x - 1) as usize]));
            x -= 1;
        }
    }
    // Any remaining prefix is a common run reached at d == 0.
    while x > 0 && y > 0 {
        ops.push(DiffOp::Equal(a[(x - 1) as usize]));
        x -= 1;
        y -= 1;
    }
    while x > 0 {
        ops.push(DiffOp::Delete(a[(x - 1) as usize]));
        x -= 1;
    }
    while y > 0 {
        ops.push(DiffOp::Insert(b[(y - 1) as usize]));
        y -= 1;
    }
    ops.reverse();
    ops
}

/// Applies a diff to `old`, reconstructing the new text. Used in tests to
/// validate the diff round-trip property.
pub fn apply(ops: &[DiffOp<'_>]) -> String {
    let mut lines = Vec::new();
    for op in ops {
        match op {
            DiffOp::Equal(l) | DiffOp::Insert(l) => lines.push(*l),
            DiffOp::Delete(_) => {}
        }
    }
    lines.join("\n")
}

/// Reconstructs the old text from a diff.
pub fn apply_reverse(ops: &[DiffOp<'_>]) -> String {
    let mut lines = Vec::new();
    for op in ops {
        match op {
            DiffOp::Equal(l) | DiffOp::Delete(l) => lines.push(*l),
            DiffOp::Insert(_) => {}
        }
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(old: &str, new: &str) {
        let ops = diff_lines(old, new);
        assert_eq!(apply(&ops), new, "forward apply {old:?} -> {new:?}");
        assert_eq!(apply_reverse(&ops), old, "reverse apply {old:?} -> {new:?}");
    }

    #[test]
    fn identical_inputs_are_all_equal() {
        let ops = diff_lines("a\nb", "a\nb");
        assert!(ops.iter().all(|o| matches!(o, DiffOp::Equal(_))));
        assert_eq!(diff_stat("a\nb", "a\nb").line_changes(), 0);
    }

    #[test]
    fn single_line_modification_counts_two() {
        // The paper: modifying an existing line = delete + add = 2 changes.
        let s = diff_stat("a\nb\nc", "a\nB\nc");
        assert_eq!(s.inserted, 1);
        assert_eq!(s.deleted, 1);
        assert_eq!(s.line_changes(), 2);
    }

    #[test]
    fn pure_insertions_and_deletions() {
        assert_eq!(diff_stat("", "a\nb").inserted, 2);
        assert_eq!(diff_stat("a\nb", "").deleted, 2);
        assert_eq!(diff_stat("a", "a\nb\nc").inserted, 2);
    }

    #[test]
    fn round_trip_assorted() {
        check("", "");
        check("a", "");
        check("", "a");
        check("a\nb\nc", "c\nb\na");
        check("x\ny\nz", "x\nq\nz\nw");
        check("1\n2\n3\n4\n5", "0\n2\n4\n6");
    }

    #[test]
    fn render_marks_lines() {
        let ops = diff_lines("a", "b");
        let text = render(&ops);
        assert!(text.contains("-a"));
        assert!(text.contains("+b"));
    }

    #[test]
    fn diff_is_minimal_for_simple_cases() {
        // Myers produces a shortest edit script.
        let s = diff_stat("a\nb\nc\nd", "a\nc\nd");
        assert_eq!(s.line_changes(), 1);
        let s = diff_stat("a\nb\nc", "a\nx\ny\nc");
        assert_eq!(s.line_changes(), 3);
    }
}
