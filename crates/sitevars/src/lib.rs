//! # sitevars — the easy-mode config shim for frontend products
//!
//! Reproduction of Sitevars (§3.2 of *Holistic Configuration Management at
//! Facebook*, SOSP 2015): "a shim layer on top of Configerator to support
//! simple configs used by frontend PHP products. It provides configurable
//! name-value pairs. The value is a PHP expression." Here the value is a
//! CDSL expression (evaluated by [`cdsl::interp::eval_expression`]).
//!
//! The paper's safety mechanisms are all present:
//!
//! * an optional **checker** per sitevar (`def check(value): require(...)`)
//!   verifies invariants on every update, like the validator in Figure 2;
//! * because the value language is weakly typed, the store **infers a data
//!   type from historical values** — whether a string field is a JSON
//!   string, a timestamp string, or a general string — and "if a sitevar
//!   update deviates from the inferred data type, the UI displays a warning
//!   message to the engineer" (§3.2). Updates with warnings still succeed;
//!   checkers, by contrast, are hard failures.

use std::collections::BTreeMap;
use std::fmt;

use cdsl::interp::{eval_expression, Interp, Limits};
use cdsl::value::Value;
use cdsl::{CdslError, Loader};

/// The inferred type of a sitevar's value, refined for strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferredType {
    /// Boolean.
    Bool,
    /// Integer.
    Int,
    /// Float.
    Float,
    /// List.
    List,
    /// Dict / object.
    Dict,
    /// A string that parses as JSON (object or array).
    JsonString,
    /// A string that looks like a timestamp (ISO date or epoch seconds).
    TimestampString,
    /// Any other string.
    GeneralString,
    /// Null.
    Null,
}

/// Classifies a value, refining string values per the paper's inference.
pub fn classify(v: &Value) -> InferredType {
    match v {
        Value::Bool(_) => InferredType::Bool,
        Value::Int(_) => InferredType::Int,
        Value::Float(_) => InferredType::Float,
        Value::List(_) => InferredType::List,
        Value::Dict(_) | Value::Struct(_) => InferredType::Dict,
        Value::Null => InferredType::Null,
        Value::Str(s) => classify_string(s),
        _ => InferredType::GeneralString,
    }
}

fn classify_string(s: &str) -> InferredType {
    let t = s.trim();
    if (t.starts_with('{') || t.starts_with('['))
        && serde_json::from_str::<serde_json::Value>(t).is_ok()
    {
        return InferredType::JsonString;
    }
    if looks_like_timestamp(t) {
        return InferredType::TimestampString;
    }
    InferredType::GeneralString
}

fn looks_like_timestamp(t: &str) -> bool {
    // Epoch seconds or milliseconds.
    if (t.len() == 10 || t.len() == 13) && t.chars().all(|c| c.is_ascii_digit()) {
        return true;
    }
    // ISO-like date: YYYY-MM-DD optionally followed by time.
    let b = t.as_bytes();
    if t.len() >= 10
        && b[0..4].iter().all(u8::is_ascii_digit)
        && b[4] == b'-'
        && b[5..7].iter().all(u8::is_ascii_digit)
        && b[7] == b'-'
        && b[8..10].iter().all(u8::is_ascii_digit)
    {
        return true;
    }
    false
}

/// Errors from sitevar operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SitevarError {
    /// The value expression failed to parse or evaluate.
    Expr(CdslError),
    /// The sitevar's checker rejected the new value.
    CheckFailed(String),
    /// The checker source itself is broken.
    BadChecker(CdslError),
    /// Unknown sitevar.
    NotFound(String),
}

impl fmt::Display for SitevarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SitevarError::Expr(e) => write!(f, "expression error: {e}"),
            SitevarError::CheckFailed(m) => write!(f, "checker rejected update: {m}"),
            SitevarError::BadChecker(e) => write!(f, "broken checker: {e}"),
            SitevarError::NotFound(n) => write!(f, "no such sitevar: {n}"),
        }
    }
}

impl std::error::Error for SitevarError {}

/// A warning surfaced to the engineer (the paper's UI warning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeWarning {
    /// The sitevar name.
    pub name: String,
    /// The type inferred from history.
    pub inferred: InferredType,
    /// The type of the new value.
    pub got: InferredType,
}

impl fmt::Display for TypeWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sitevar {}: update is {:?} but history suggests {:?}",
            self.name, self.got, self.inferred
        )
    }
}

/// One sitevar: expression source, evaluated value, history, checker.
#[derive(Debug, Clone)]
pub struct Sitevar {
    /// Sitevar name.
    pub name: String,
    /// The value expression source.
    pub expr: String,
    /// The evaluated value.
    pub value: Value,
    /// Types of historical values (most recent last).
    pub history: Vec<InferredType>,
    /// Optional checker source defining `check(value)`.
    pub checker: Option<String>,
    /// Number of updates over the sitevar's lifetime.
    pub updates: u64,
}

/// The sitevar store.
///
/// # Examples
///
/// ```
/// use sitevars::SitevarStore;
///
/// let mut store = SitevarStore::new();
/// store.set("max_upload_mb", "25").unwrap();
/// store.set("max_upload_mb", "50").unwrap();
/// assert_eq!(store.get("max_upload_mb").unwrap().to_json(), "50");
///
/// // A type deviation warns but does not fail (§3.2).
/// let out = store.set("max_upload_mb", "\"a lot\"").unwrap();
/// assert_eq!(out.warnings.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SitevarStore {
    vars: BTreeMap<String, Sitevar>,
}

/// Result of a successful update.
#[derive(Debug, Clone)]
pub struct SetOutcome {
    /// The evaluated new value.
    pub value: Value,
    /// Type-deviation warnings (empty when the update matches history).
    pub warnings: Vec<TypeWarning>,
}

impl SitevarStore {
    /// Creates an empty store.
    pub fn new() -> SitevarStore {
        SitevarStore::default()
    }

    /// Creates or updates a sitevar from an expression. Runs the checker
    /// (hard failure) and type inference (soft warning).
    pub fn set(&mut self, name: &str, expr: &str) -> Result<SetOutcome, SitevarError> {
        let value = eval_expression(expr).map_err(SitevarError::Expr)?;
        let checker = self.vars.get(name).and_then(|v| v.checker.clone());
        if let Some(src) = &checker {
            run_checker(src, &value)?;
        }
        let got = classify(&value);
        let mut warnings = Vec::new();
        if let Some(existing) = self.vars.get(name) {
            if let Some(inferred) = infer_from_history(&existing.history) {
                if inferred != got {
                    warnings.push(TypeWarning {
                        name: name.to_string(),
                        inferred,
                        got,
                    });
                }
            }
        }
        let entry = self
            .vars
            .entry(name.to_string())
            .or_insert_with(|| Sitevar {
                name: name.to_string(),
                expr: String::new(),
                value: Value::Null,
                history: Vec::new(),
                checker: None,
                updates: 0,
            });
        entry.expr = expr.to_string();
        entry.value = value.clone();
        entry.history.push(got);
        entry.updates += 1;
        Ok(SetOutcome { value, warnings })
    }

    /// Attaches a checker (`def check(value): ...`) to a sitevar. The
    /// checker is validated against the current value immediately.
    pub fn set_checker(&mut self, name: &str, checker_src: &str) -> Result<(), SitevarError> {
        let var = self
            .vars
            .get_mut(name)
            .ok_or_else(|| SitevarError::NotFound(name.to_string()))?;
        let current = var.value.clone();
        run_checker(checker_src, &current)?;
        var.checker = Some(checker_src.to_string());
        Ok(())
    }

    /// Reads a sitevar's evaluated value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name).map(|v| &v.value)
    }

    /// Full sitevar record.
    pub fn info(&self, name: &str) -> Option<&Sitevar> {
        self.vars.get(name)
    }

    /// The type inferred from a sitevar's history, if consistent.
    pub fn inferred_type(&self, name: &str) -> Option<InferredType> {
        self.vars
            .get(name)
            .and_then(|v| infer_from_history(&v.history))
    }

    /// Number of sitevars.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over all sitevars.
    pub fn iter(&self) -> impl Iterator<Item = &Sitevar> {
        self.vars.values()
    }
}

/// Infers the historical type: `Some(t)` if every historical value had the
/// same type, else `None` (mixed history — no warning basis).
fn infer_from_history(history: &[InferredType]) -> Option<InferredType> {
    let first = *history.first()?;
    history.iter().all(|t| *t == first).then_some(first)
}

fn run_checker(src: &str, value: &Value) -> Result<(), SitevarError> {
    let mut loader: BTreeMap<String, String> = BTreeMap::new();
    loader.insert("<checker>".to_string(), src.to_string());
    let mut interp = Interp::new(&loader as &dyn Loader, Limits::default());
    let module = interp
        .run_module("<checker>")
        .map_err(SitevarError::BadChecker)?;
    match interp.call_global(module, "check", std::slice::from_ref(value)) {
        Ok(_) => Ok(()),
        Err(e) if e.is_validation() => Err(SitevarError::CheckFailed(e.message().to_string())),
        Err(e) => Err(SitevarError::BadChecker(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_expression_values() {
        let mut s = SitevarStore::new();
        s.set("limit", "10 * 5").unwrap();
        assert_eq!(s.get("limit").unwrap().to_json(), "50");
        s.set("flags", "{\"dark_mode\": true}").unwrap();
        assert_eq!(s.get("flags").unwrap().to_json(), r#"{"dark_mode":true}"#);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn broken_expression_is_rejected() {
        let mut s = SitevarStore::new();
        assert!(matches!(s.set("x", "1 +"), Err(SitevarError::Expr(_))));
        assert!(matches!(
            s.set("x", "undefined_name"),
            Err(SitevarError::Expr(_))
        ));
        assert!(s.get("x").is_none(), "failed set must not create the var");
    }

    #[test]
    fn checker_blocks_bad_updates() {
        let mut s = SitevarStore::new();
        s.set("rate", "100").unwrap();
        s.set_checker(
            "rate",
            "def check(value):\n    require(value > 0, \"rate must be positive\")",
        )
        .unwrap();
        assert!(matches!(
            s.set("rate", "-5"),
            Err(SitevarError::CheckFailed(m)) if m.contains("positive")
        ));
        // Value unchanged after rejected update.
        assert_eq!(s.get("rate").unwrap().to_json(), "100");
        assert!(s.set("rate", "200").is_ok());
    }

    #[test]
    fn checker_must_accept_current_value() {
        let mut s = SitevarStore::new();
        s.set("rate", "-1").unwrap();
        let err = s.set_checker(
            "rate",
            "def check(value):\n    require(value > 0, \"positive\")",
        );
        assert!(matches!(err, Err(SitevarError::CheckFailed(_))));
    }

    #[test]
    fn checker_on_missing_sitevar() {
        let mut s = SitevarStore::new();
        assert!(matches!(
            s.set_checker("ghost", "def check(value):\n    require(true)"),
            Err(SitevarError::NotFound(_))
        ));
    }

    #[test]
    fn type_inference_warns_on_deviation() {
        let mut s = SitevarStore::new();
        s.set("n", "1").unwrap();
        s.set("n", "2").unwrap();
        assert_eq!(s.inferred_type("n"), Some(InferredType::Int));
        let out = s.set("n", "\"three\"").unwrap();
        assert_eq!(out.warnings.len(), 1);
        assert_eq!(out.warnings[0].inferred, InferredType::Int);
        assert_eq!(out.warnings[0].got, InferredType::GeneralString);
        // History is now mixed → no inference, no further warnings.
        assert_eq!(s.inferred_type("n"), None);
        assert!(s.set("n", "4").unwrap().warnings.is_empty());
    }

    #[test]
    fn string_refinement_json_timestamp_general() {
        assert_eq!(
            classify(&Value::str("{\"a\": 1}")),
            InferredType::JsonString
        );
        assert_eq!(classify(&Value::str("[1,2]")), InferredType::JsonString);
        assert_eq!(
            classify(&Value::str("{not json")),
            InferredType::GeneralString
        );
        assert_eq!(
            classify(&Value::str("2015-10-04 09:00:00")),
            InferredType::TimestampString
        );
        assert_eq!(
            classify(&Value::str("1443945600")),
            InferredType::TimestampString
        );
        assert_eq!(classify(&Value::str("hello")), InferredType::GeneralString);
    }

    #[test]
    fn json_string_vs_general_string_deviation_warns() {
        // The paper's example: "If so, it further infers whether it is a
        // JSON string, a timestamp string, or a general string."
        let mut s = SitevarStore::new();
        s.set("cfg", "\"{\\\"a\\\": 1}\"").unwrap();
        s.set("cfg", "\"{\\\"a\\\": 2}\"").unwrap();
        let out = s.set("cfg", "\"oops not json\"").unwrap();
        assert_eq!(out.warnings.len(), 1);
        assert_eq!(out.warnings[0].inferred, InferredType::JsonString);
    }

    #[test]
    fn update_counter_and_history_tracked() {
        let mut s = SitevarStore::new();
        s.set("v", "1").unwrap();
        s.set("v", "2").unwrap();
        s.set("v", "3.5").unwrap();
        let info = s.info("v").unwrap();
        assert_eq!(info.updates, 3);
        assert_eq!(
            info.history,
            vec![InferredType::Int, InferredType::Int, InferredType::Float]
        );
    }
}
