//! # configerator — holistic configuration management
//!
//! The core of the reproduction of *Holistic Configuration Management at
//! Facebook* (SOSP 2015): the tool suite of Figure 3, built on the
//! substrates in the sibling crates (`cdsl` for configuration-as-code,
//! `gitstore` for version control, `zeus` + `simnet` for distribution).
//!
//! * [`service`] — the config repository: sources + compiled JSON in one
//!   commit, the compiler pipeline, and the dependency service.
//! * [`review`] — Phabricator-style code review and Sandcastle CI.
//! * [`canary`] — the automated canary service with phased testing,
//!   healthcheck predicates, and automatic rollback.
//! * [`rollout`] — the fleet-integrated rollout state machine: phase-gated
//!   blast radius, incremental cohort-health verdicts, and the durable
//!   mutator-landed revert path.
//! * [`landing`] — the landing strip that serializes commits and rejects
//!   only true conflicts (§3.6).
//! * [`tailer`] — the git tailer extracting committed config changes for
//!   distribution, and the lease-coordinated [`tailer::TailerGroup`] that
//!   keeps extraction running across tailer failures without duplicating
//!   or losing updates.
//! * [`mutator`] — the programmatic API used by automation tools.
//! * [`stack`] — the multi-region facade wiring everything together, with
//!   master failover (§3.7) and an in-process subscription bus.
//!
//! # Examples
//!
//! ```
//! use std::collections::BTreeMap;
//! use configerator::stack::Stack;
//!
//! let mut stack = Stack::new(2);
//! let mut changes = BTreeMap::new();
//! changes.insert(
//!     "cache/job.cconf".to_string(),
//!     Some("export_if_last({\"memory_mb\": 1024})".to_string()),
//! );
//! let id = stack.propose("alice", "tune cache", changes);
//! stack.approve(id, "bob").unwrap();
//! let out = stack.ship(id, None).unwrap();
//! assert_eq!(out.distributed, vec!["cache/job"]);
//! ```

pub mod canary;
pub mod landing;
pub mod metrics;
pub mod mutator;
pub mod review;
pub mod risk;
pub mod rollout;
pub mod service;
pub mod stack;
pub mod tailer;

pub use canary::{CanaryOutcome, CanaryService, CanarySpec, FleetModel, SyntheticFleet};
pub use landing::{LandError, LandingStrip, SourceDiff};
pub use mutator::Mutator;
pub use review::{Phabricator, ReviewPolicy, Sandcastle, TestReport};
pub use risk::{RiskAssessment, RiskModel, RiskSignal};
pub use rollout::{
    evaluate_phase, land_revert, land_source_revert, placement_diverse_cohort,
    previous_raw_content, previous_source_content, CohortHealth, PhaseVerdict, Rollout,
    RolloutPhase, RolloutSpec, RolloutVerdict,
};
pub use service::{
    Artifact, CommitReport, CompileFailure, CompileOptions, CompileStats, ConfigeratorService,
    DependencyService, ServiceError,
};
pub use stack::{ShipError, ShipOutcome, Stack};
pub use tailer::{ConfigUpdate, GitTailer, TailerError, TailerGroup, TailerLease};
