//! The automated canary service.
//!
//! "The canary service automatically tests a new config on a subset of
//! production machines that serve live traffic. ... A config is associated
//! with a canary spec that describes how to automate testing the config in
//! production. The spec defines multiple testing phases. For example, in
//! phase 1, test on 20 servers; in phase 2, test in a full cluster with
//! thousands of servers. For each phase, it specifies the testing target
//! servers, the healthcheck metrics, and the predicates that decide
//! whether the test passes or fails. For example, the click-through rate
//! (CTR) collected from the servers using the new config should not be
//! more than x% lower than the CTR collected from the servers still using
//! the old config" (§3.3).
//!
//! The production fleet is abstracted behind [`FleetModel`]; experiments
//! plug in [`SyntheticFleet`], whose config-effect hooks reproduce the
//! §6.4 incident classes (including load-dependent Type II errors that
//! only appear when the deployed fraction is large — the reason the paper
//! "added a canary phase to test a new config on thousands of servers in a
//! cluster").

use crate::metrics::health;
use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// A model of the production fleet's health under a config.
pub trait FleetModel {
    /// Total servers available.
    fn num_servers(&self) -> usize;

    /// Samples `metric` on `server`. `config` is the config content the
    /// server currently runs (`None` = the old/baseline config), and
    /// `deployed_fraction` is the fraction of the fleet running the new
    /// config (load-coupled effects depend on it).
    fn sample(
        &mut self,
        server: usize,
        config: Option<&str>,
        deployed_fraction: f64,
        metric: &str,
    ) -> f64;
}

/// A pass/fail predicate over canary-vs-control metric means.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthPredicate {
    /// Canary mean must not exceed control mean by more than this relative
    /// fraction (e.g. error rates, latency).
    MaxRelativeIncrease {
        /// Metric name.
        metric: String,
        /// Allowed relative increase (0.05 = 5%).
        limit: f64,
    },
    /// Canary mean must not fall below control mean by more than this
    /// relative fraction (e.g. the paper's CTR example).
    MaxRelativeDecrease {
        /// Metric name.
        metric: String,
        /// Allowed relative decrease.
        limit: f64,
    },
    /// Canary mean must stay under an absolute ceiling.
    MaxAbsolute {
        /// Metric name.
        metric: String,
        /// Ceiling.
        limit: f64,
    },
}

impl HealthPredicate {
    /// The metric this predicate reads.
    pub fn metric(&self) -> &str {
        match self {
            HealthPredicate::MaxRelativeIncrease { metric, .. }
            | HealthPredicate::MaxRelativeDecrease { metric, .. }
            | HealthPredicate::MaxAbsolute { metric, .. } => metric,
        }
    }

    /// Evaluates the predicate given canary and control means.
    pub fn holds(&self, canary_mean: f64, control_mean: f64) -> bool {
        match self {
            HealthPredicate::MaxRelativeIncrease { limit, .. } => {
                if control_mean.abs() < f64::EPSILON {
                    canary_mean <= *limit
                } else {
                    (canary_mean - control_mean) / control_mean.abs() <= *limit
                }
            }
            HealthPredicate::MaxRelativeDecrease { limit, .. } => {
                if control_mean.abs() < f64::EPSILON {
                    true
                } else {
                    (control_mean - canary_mean) / control_mean.abs() <= *limit
                }
            }
            HealthPredicate::MaxAbsolute { limit, .. } => canary_mean <= *limit,
        }
    }
}

/// One canary phase.
#[derive(Debug, Clone)]
pub struct CanaryPhase {
    /// Phase name.
    pub name: String,
    /// Number of canary servers.
    pub servers: usize,
    /// Health samples collected per server.
    pub samples_per_server: usize,
    /// Pass/fail predicates.
    pub predicates: Vec<HealthPredicate>,
}

/// A config's canary spec.
#[derive(Debug, Clone)]
pub struct CanarySpec {
    /// Phases run in order; any failure aborts.
    pub phases: Vec<CanaryPhase>,
}

impl CanarySpec {
    /// The paper's default shape: phase 1 on 20 servers, phase 2 on a full
    /// cluster of `cluster_size` servers, with error-rate and latency
    /// guards.
    pub fn standard(cluster_size: usize) -> CanarySpec {
        let predicates = vec![
            HealthPredicate::MaxRelativeIncrease {
                metric: health::ERROR_RATE.into(),
                limit: 0.25,
            },
            HealthPredicate::MaxRelativeIncrease {
                metric: health::LATENCY_MS.into(),
                limit: 0.25,
            },
            HealthPredicate::MaxRelativeDecrease {
                metric: "ctr".into(),
                limit: 0.10,
            },
        ];
        CanarySpec {
            phases: vec![
                CanaryPhase {
                    name: "phase1-20-servers".into(),
                    servers: 20,
                    samples_per_server: 10,
                    predicates: predicates.clone(),
                },
                CanaryPhase {
                    name: "phase2-cluster".into(),
                    servers: cluster_size,
                    samples_per_server: 4,
                    predicates,
                },
            ],
        }
    }
}

/// Result of one phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Phase name.
    pub name: String,
    /// Whether every predicate held.
    pub passed: bool,
    /// Per-predicate detail: (metric, canary mean, control mean, held).
    pub details: Vec<(String, f64, f64, bool)>,
}

/// Outcome of a full canary run.
#[derive(Debug, Clone)]
pub struct CanaryOutcome {
    /// Results of the phases that ran.
    pub phases: Vec<PhaseResult>,
    /// Whether the config may proceed to full deployment.
    pub passed: bool,
}

/// The canary service.
#[derive(Debug, Default)]
pub struct CanaryService;

impl CanaryService {
    /// Runs `spec` for `config` against `fleet`: in each phase the first
    /// `servers` machines run the new config while an equal-sized control
    /// group keeps the old one; predicate failures abort the run (the
    /// automatic rollback of §3.3 — the config never proceeds).
    pub fn run(
        &self,
        spec: &CanarySpec,
        config: &str,
        fleet: &mut dyn FleetModel,
    ) -> CanaryOutcome {
        let total = fleet.num_servers();
        let mut phases = Vec::new();
        for phase in &spec.phases {
            let n = phase.servers.min(total / 2).max(1);
            let deployed_fraction = n as f64 / total as f64;
            let mut canary_means: HashMap<&str, f64> = HashMap::new();
            let mut control_means: HashMap<&str, f64> = HashMap::new();
            for pred in &phase.predicates {
                let metric = pred.metric();
                if canary_means.contains_key(metric) {
                    continue;
                }
                let mut csum = 0.0;
                let mut xsum = 0.0;
                let mut count = 0usize;
                for s in 0..n {
                    for _ in 0..phase.samples_per_server {
                        csum += fleet.sample(s, Some(config), deployed_fraction, metric);
                        // Control group: servers from the other end.
                        xsum += fleet.sample(total - 1 - s, None, deployed_fraction, metric);
                        count += 1;
                    }
                }
                canary_means.insert(metric, csum / count as f64);
                control_means.insert(metric, xsum / count as f64);
            }
            let mut details = Vec::new();
            let mut passed = true;
            for pred in &phase.predicates {
                let m = pred.metric();
                let c = canary_means[m];
                let x = control_means[m];
                let held = pred.holds(c, x);
                passed &= held;
                details.push((m.to_string(), c, x, held));
            }
            let phase_passed = passed;
            phases.push(PhaseResult {
                name: phase.name.clone(),
                passed: phase_passed,
                details,
            });
            if !phase_passed {
                return CanaryOutcome {
                    phases,
                    passed: false,
                };
            }
        }
        CanaryOutcome {
            phases,
            passed: true,
        }
    }
}

/// The effect a config has on one metric.
pub type ConfigEffect = Box<dyn Fn(&str, &str, f64) -> f64>;

/// A synthetic production fleet with baseline metrics, noise, and
/// pluggable config effects.
pub struct SyntheticFleet {
    servers: usize,
    baselines: HashMap<String, f64>,
    noise_frac: f64,
    rng: SmallRng,
    /// `(config, metric, deployed_fraction) → additive delta`.
    effects: Vec<ConfigEffect>,
}

impl SyntheticFleet {
    /// Creates a fleet of `servers` machines with standard baselines:
    /// `error_rate` 0.01, `latency_ms` 100, `ctr` 0.05.
    pub fn new(servers: usize, seed: u64) -> SyntheticFleet {
        let mut baselines = HashMap::new();
        baselines.insert(health::ERROR_RATE.to_string(), 0.01);
        baselines.insert(health::LATENCY_MS.to_string(), 100.0);
        baselines.insert("ctr".to_string(), 0.05);
        SyntheticFleet {
            servers,
            baselines,
            noise_frac: 0.02,
            rng: SmallRng::seed_from_u64(seed),
            effects: Vec::new(),
        }
    }

    /// Sets a metric baseline.
    pub fn set_baseline(&mut self, metric: &str, value: f64) {
        self.baselines.insert(metric.to_string(), value);
    }

    /// Registers a config effect: `f(config, metric, deployed_fraction)`
    /// returns an additive delta applied to servers running the config.
    pub fn add_effect(&mut self, f: impl Fn(&str, &str, f64) -> f64 + 'static) {
        self.effects.push(Box::new(f));
    }
}

impl FleetModel for SyntheticFleet {
    fn num_servers(&self) -> usize {
        self.servers
    }

    fn sample(
        &mut self,
        _server: usize,
        config: Option<&str>,
        deployed_fraction: f64,
        metric: &str,
    ) -> f64 {
        let base = self.baselines.get(metric).copied().unwrap_or(0.0);
        let noise = base * self.noise_frac * (self.rng.gen::<f64>() * 2.0 - 1.0);
        let mut v = base + noise;
        if let Some(cfg) = config {
            for e in &self.effects {
                v += e(cfg, metric, deployed_fraction);
            }
        }
        v.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_config_passes_all_phases() {
        let mut fleet = SyntheticFleet::new(5000, 1);
        let spec = CanarySpec::standard(2000);
        let out = CanaryService.run(&spec, "{\"v\":1}", &mut fleet);
        assert!(out.passed);
        assert_eq!(out.phases.len(), 2);
    }

    #[test]
    fn error_spew_caught_in_phase_one() {
        let mut fleet = SyntheticFleet::new(5000, 2);
        // The §6.4 log-spew incident: the config triggers errors
        // immediately, at any scale.
        fleet.add_effect(|cfg, metric, _| {
            if metric == health::ERROR_RATE && cfg.contains("\"bad\"") {
                0.05
            } else {
                0.0
            }
        });
        let spec = CanarySpec::standard(2000);
        let out = CanaryService.run(&spec, "{\"mode\":\"bad\"}", &mut fleet);
        assert!(!out.passed);
        assert_eq!(out.phases.len(), 1, "aborted in phase 1");
        assert!(!out.phases[0].passed);
        // A good config with the same fleet still passes.
        let ok = CanaryService.run(&spec, "{\"mode\":\"good\"}", &mut fleet);
        assert!(ok.passed);
    }

    #[test]
    fn load_coupled_regression_needs_the_cluster_phase() {
        // The §6.4 backend-overload incident: latency regresses only when
        // a substantial fraction of the fleet runs the config.
        let make_fleet = || {
            let mut fleet = SyntheticFleet::new(5000, 3);
            fleet.add_effect(|cfg, metric, frac| {
                if metric == health::LATENCY_MS && cfg.contains("rare_path") && frac > 0.05 {
                    2000.0 * frac
                } else {
                    0.0
                }
            });
            fleet
        };
        // Phase-1-only spec (the paper's original, insufficient spec).
        let small_only = CanarySpec {
            phases: vec![CanarySpec::standard(2000).phases[0].clone()],
        };
        let out = CanaryService.run(&small_only, "{\"use\":\"rare_path\"}", &mut make_fleet());
        assert!(out.passed, "20-server canary misses the load issue");
        // The standard spec with a cluster phase catches it.
        let full = CanarySpec::standard(2000);
        let out = CanaryService.run(&full, "{\"use\":\"rare_path\"}", &mut make_fleet());
        assert!(!out.passed, "cluster-scale phase must catch the load issue");
        assert_eq!(out.phases.len(), 2);
        assert!(out.phases[0].passed);
        assert!(!out.phases[1].passed);
    }

    #[test]
    fn ctr_decrease_predicate() {
        let mut fleet = SyntheticFleet::new(2000, 4);
        fleet.add_effect(|cfg, metric, _| {
            if metric == "ctr" && cfg.contains("ugly_ui") {
                -0.02
            } else {
                0.0
            }
        });
        let spec = CanarySpec::standard(500);
        let out = CanaryService.run(&spec, "{\"theme\":\"ugly_ui\"}", &mut fleet);
        assert!(!out.passed, "40% CTR drop exceeds the 10% allowance");
    }

    #[test]
    fn predicate_arithmetic() {
        let p = HealthPredicate::MaxRelativeIncrease {
            metric: "m".into(),
            limit: 0.25,
        };
        assert!(p.holds(1.2, 1.0));
        assert!(!p.holds(1.3, 1.0));
        let p = HealthPredicate::MaxRelativeDecrease {
            metric: "m".into(),
            limit: 0.10,
        };
        assert!(p.holds(0.95, 1.0));
        assert!(!p.holds(0.8, 1.0));
        let p = HealthPredicate::MaxAbsolute {
            metric: "m".into(),
            limit: 5.0,
        };
        assert!(p.holds(4.0, 0.0));
        assert!(!p.holds(6.0, 0.0));
    }
}
