//! The Mutator: programmatic config updates for automation tools.
//!
//! "Config changes can also be initiated ... programmatically by an
//! automation tool invoking the APIs provided by the Mutator component"
//! (§3.1). The usage statistics show why this matters: "about 89% of the
//! updates to raw configs are done by automation tools" (§6.1), and
//! automated commits are what keep the weekend commit rate at a third of
//! the weekday peak (§6.3).

use bytes::Bytes;

use crate::service::{CommitReport, ConfigeratorService, ServiceError};

/// A handle automation tools use to make config changes.
#[derive(Debug, Clone)]
pub struct Mutator {
    /// Tool identity, recorded as the commit author
    /// (`"mutator:<tool>"`).
    pub tool: String,
}

impl Mutator {
    /// Creates a mutator for `tool`.
    pub fn new(tool: &str) -> Mutator {
        Mutator {
            tool: tool.to_string(),
        }
    }

    /// The author string recorded on commits.
    pub fn author(&self) -> String {
        format!("mutator:{}", self.tool)
    }

    /// Reads, transforms, and writes back a raw config in one step (e.g.
    /// the traffic-shifting tools of §2 periodically rewriting weights).
    pub fn update_raw(
        &self,
        svc: &mut ConfigeratorService,
        name: &str,
        message: &str,
        f: impl FnOnce(Option<&str>) -> String,
    ) -> Result<CommitReport, ServiceError> {
        let current = svc.artifact(name).map(|a| a.json.clone());
        let next = f(current.as_deref());
        svc.commit_raw(&self.author(), message, name, Bytes::from(next))
    }

    /// Writes a source file directly (automation-owned config programs).
    pub fn set_source(
        &self,
        svc: &mut ConfigeratorService,
        path: &str,
        message: &str,
        content: &str,
    ) -> Result<CommitReport, ServiceError> {
        let mut changes = std::collections::BTreeMap::new();
        changes.insert(path.to_string(), Some(content.to_string()));
        svc.commit_source(&self.author(), message, changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_raw_read_modify_write() {
        let mut svc = ConfigeratorService::new();
        let m = Mutator::new("traffic-shifter");
        m.update_raw(&mut svc, "weights.json", "init", |cur| {
            assert!(cur.is_none());
            "{\"region_a\": 50}".to_string()
        })
        .unwrap();
        let report = m
            .update_raw(&mut svc, "weights.json", "shift", |cur| {
                assert_eq!(cur.unwrap(), "{\"region_a\": 50}");
                "{\"region_a\": 80}".to_string()
            })
            .unwrap();
        assert_eq!(report.updated_configs, vec!["weights.json"]);
        assert!(svc.artifact("weights.json").unwrap().json.contains("80"));
    }

    #[test]
    fn author_is_tagged_as_automation() {
        let m = Mutator::new("loadtest");
        assert_eq!(m.author(), "mutator:loadtest");
    }

    #[test]
    fn set_source_compiles_like_any_commit() {
        let mut svc = ConfigeratorService::new();
        let m = Mutator::new("gen");
        m.set_source(&mut svc, "auto.cconf", "gen", "export_if_last({\"x\": 1})")
            .unwrap();
        assert!(svc.artifact("auto").is_some());
        // Broken generated source is still rejected by the compiler.
        assert!(m
            .set_source(&mut svc, "auto.cconf", "gen", "export_if_last(")
            .is_err());
    }
}
