//! The Configerator service: version-controlled sources, the compiler
//! pipeline, and the dependency service.
//!
//! "The source code of config programs and generated JSON configs are
//! stored in a version control tool" (§3.1). A commit flows through this
//! service as follows:
//!
//! 1. the staged source changes are overlaid on the current source tree;
//! 2. the dependency service computes which config programs must be
//!    (re)compiled — the changed entry files plus every entry whose
//!    dependency set intersects the changed paths ("If APP_PORT in
//!    app_port.cinc is changed, the Configerator compiler automatically
//!    recompiles both app.cconf and firewall.cconf");
//! 3. every affected program is compiled and validated; any failure
//!    rejects the whole commit, leaving the repository untouched;
//! 4. sources and regenerated JSON land in **one git commit**, "which
//!    ensures consistency".
//!
//! Raw configs (§6.1) — files not produced by the compiler, usually
//! written by automation tools — are stored and distributed unchanged.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

use bytes::Bytes;
use cdsl::compile::{CompiledConfig, Compiler};
use cdsl::interp::Loader;
use gitstore::multirepo::MultiRepo;
use gitstore::object::ObjectId;
use gitstore::repo::Change;

/// Where compiled artifacts live in the repository namespace.
pub const COMPILED_PREFIX: &str = "compiled/";
/// Where source files live.
pub const SOURCE_PREFIX: &str = "source/";
/// Where raw configs live.
pub const RAW_PREFIX: &str = "raw/";

/// Classifies a repository path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// A config program entry point (`.cconf`) — compiles to an artifact.
    Entry,
    /// A reusable module, schema, or validator.
    Support,
    /// A raw config.
    Raw,
    /// A compiled artifact (managed by the service, not user-writable).
    Compiled,
    /// Anything else.
    Other,
}

/// Classifies `path` by prefix and extension.
pub fn classify(path: &str) -> PathKind {
    if path.starts_with(COMPILED_PREFIX) {
        PathKind::Compiled
    } else if path.starts_with(RAW_PREFIX) {
        PathKind::Raw
    } else if path.starts_with(SOURCE_PREFIX) {
        if path.ends_with(".cconf") {
            PathKind::Entry
        } else {
            PathKind::Support
        }
    } else {
        PathKind::Other
    }
}

/// The distributable name of a config: for `source/a/b.cconf` it is
/// `a/b`; for `raw/x/y.json` it is `x/y.json`.
pub fn config_name(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix(SOURCE_PREFIX) {
        rest.strip_suffix(".cconf").map(str::to_string)
    } else {
        path.strip_prefix(RAW_PREFIX).map(|rest| rest.to_string())
    }
}

/// The repository path of a compiled artifact for config `name`.
pub fn compiled_path(name: &str) -> String {
    format!("{COMPILED_PREFIX}{name}.json")
}

/// Errors from the service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A change targets a path engineers may not write
    /// (e.g. `compiled/…`).
    ForbiddenPath(String),
    /// Compilation or validation of a config program failed.
    Compile {
        /// The entry that failed.
        entry: String,
        /// The compiler error.
        error: cdsl::CdslError,
    },
    /// The underlying store rejected the commit.
    Store(gitstore::repo::Error),
    /// The commit contained no changes.
    Empty,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ForbiddenPath(p) => write!(f, "path not writable: {p}"),
            ServiceError::Compile { entry, error } => {
                write!(f, "compiling {entry}: {error}")
            }
            ServiceError::Store(e) => write!(f, "store error: {e}"),
            ServiceError::Empty => write!(f, "empty commit"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A successful commit through the service.
#[derive(Debug, Clone)]
pub struct CommitReport {
    /// The resulting commit ids, one per affected repository partition.
    pub commits: Vec<ObjectId>,
    /// Config names whose compiled artifacts changed (to be distributed).
    pub updated_configs: Vec<String>,
    /// Entries recompiled because a dependency changed (not directly
    /// edited).
    pub ripple_recompiles: Vec<String>,
    /// Timestamp of the commit.
    pub timestamp: u64,
}

/// The dependency service (Figure 3): tracks, for every source path, which
/// entry configs depend on it. Dependencies are extracted by the compiler
/// from `import`/`schema` statements — never declared by hand.
#[derive(Debug, Clone, Default)]
pub struct DependencyService {
    /// dependency path → entry paths that depend on it.
    dependents: HashMap<String, BTreeSet<String>>,
    /// entry path → its dependency list.
    deps: HashMap<String, Vec<String>>,
}

impl DependencyService {
    /// Records the dependency list of `entry` (replacing any previous).
    pub fn update(&mut self, entry: &str, deps: Vec<String>) {
        if let Some(old) = self.deps.remove(entry) {
            for d in old {
                if let Some(set) = self.dependents.get_mut(&d) {
                    set.remove(entry);
                }
            }
        }
        for d in &deps {
            self.dependents
                .entry(d.clone())
                .or_default()
                .insert(entry.to_string());
        }
        self.deps.insert(entry.to_string(), deps);
    }

    /// Removes an entry entirely.
    pub fn remove(&mut self, entry: &str) {
        self.update(entry, Vec::new());
        self.deps.remove(entry);
    }

    /// Entries that depend on any of `paths`.
    pub fn dependents_of<'a>(&self, paths: impl IntoIterator<Item = &'a str>) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for p in paths {
            if let Some(set) = self.dependents.get(p) {
                out.extend(set.iter().cloned());
            }
        }
        out
    }

    /// The recorded dependency list of `entry`.
    pub fn deps_of(&self, entry: &str) -> Option<&[String]> {
        self.deps.get(entry).map(Vec::as_slice)
    }
}

/// A compiled artifact tracked by the service.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Config name (distribution path).
    pub name: String,
    /// Canonical JSON.
    pub json: String,
    /// Schema type, if the config is a struct.
    pub type_name: Option<String>,
}

/// Loader view over a base snapshot plus staged overlay.
struct OverlayLoader<'a> {
    base: &'a MultiRepo,
    overlay: &'a BTreeMap<String, Option<Bytes>>,
}

impl Loader for OverlayLoader<'_> {
    fn load(&self, path: &str) -> Option<String> {
        let full = format!("{SOURCE_PREFIX}{path}");
        if let Some(staged) = self.overlay.get(&full) {
            return staged
                .as_ref()
                .and_then(|b| String::from_utf8(b.to_vec()).ok());
        }
        self.base
            .read_head(&full)
            .ok()
            .and_then(|b| String::from_utf8(b.to_vec()).ok())
    }
}

/// The Configerator service for one region.
#[derive(Clone)]
pub struct ConfigeratorService {
    repo: MultiRepo,
    dependency: DependencyService,
    artifacts: BTreeMap<String, Artifact>,
    clock: u64,
}

impl Default for ConfigeratorService {
    fn default() -> ConfigeratorService {
        ConfigeratorService::new()
    }
}

impl ConfigeratorService {
    /// Creates an empty service with a single repository partition.
    pub fn new() -> ConfigeratorService {
        ConfigeratorService {
            repo: MultiRepo::new(),
            dependency: DependencyService::default(),
            artifacts: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Adds a repository partition for `prefix` (§3.6's partitioned
    /// namespace), e.g. `"source/feed/"`.
    pub fn add_partition(&mut self, prefix: &str) {
        self.repo.add_repo(prefix);
    }

    /// The underlying version-control store.
    pub fn repo(&self) -> &MultiRepo {
        &self.repo
    }

    /// The dependency service.
    pub fn dependency(&self) -> &DependencyService {
        &self.dependency
    }

    /// Advances and returns the logical clock (seconds).
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Sets the logical clock (for experiments replaying timed histories).
    pub fn set_clock(&mut self, t: u64) {
        self.clock = self.clock.max(t);
    }

    /// The compiled artifact for config `name`.
    pub fn artifact(&self, name: &str) -> Option<&Artifact> {
        self.artifacts.get(name)
    }

    /// Names of all distributable configs (compiled and raw).
    pub fn config_names(&self) -> Vec<String> {
        self.artifacts.keys().cloned().collect()
    }

    /// Reads the current source of `path` (without the `source/` prefix).
    pub fn read_source(&self, path: &str) -> Option<String> {
        self.repo
            .read_head(&format!("{SOURCE_PREFIX}{path}"))
            .ok()
            .and_then(|b| String::from_utf8(b.to_vec()).ok())
    }

    /// Dry-run: validates and compiles `changes` without committing.
    /// Returns the compile results for every affected entry. This is what
    /// Sandcastle and the manual-test path run against a proposed diff.
    pub fn check_changes(
        &self,
        changes: &BTreeMap<String, Option<String>>,
    ) -> Result<Vec<CompiledConfig>, ServiceError> {
        let (_, results, _) = self.plan(changes)?;
        Ok(results)
    }

    /// Shared front half of commit/check: builds the overlay, computes the
    /// compile set, and compiles.
    #[allow(clippy::type_complexity)]
    fn plan(
        &self,
        changes: &BTreeMap<String, Option<String>>,
    ) -> Result<
        (
            BTreeMap<String, Option<Bytes>>,
            Vec<CompiledConfig>,
            HashSet<String>,
        ),
        ServiceError,
    > {
        if changes.is_empty() {
            return Err(ServiceError::Empty);
        }
        // Build the overlay, keyed by full repository path.
        let mut overlay: BTreeMap<String, Option<Bytes>> = BTreeMap::new();
        for (path, content) in changes {
            let ok_shape = !path.is_empty()
                && !path.starts_with('/')
                && !path.ends_with('/')
                && path
                    .split('/')
                    .all(|s| !s.is_empty() && s != "." && s != "..");
            if !ok_shape {
                return Err(ServiceError::ForbiddenPath(path.clone()));
            }
            let full = format!("{SOURCE_PREFIX}{path}");
            match classify(&full) {
                PathKind::Entry | PathKind::Support => {}
                _ => return Err(ServiceError::ForbiddenPath(path.clone())),
            }
            overlay.insert(full, content.clone().map(Bytes::from));
        }

        // Which entries must compile: directly changed `.cconf` files plus
        // dependents of every changed path.
        let changed_paths: Vec<String> = changes.keys().cloned().collect();
        let mut to_compile: BTreeSet<String> = BTreeSet::new();
        let mut direct: HashSet<String> = HashSet::new();
        for p in &changed_paths {
            if p.ends_with(".cconf") && changes[p].is_some() {
                to_compile.insert(p.clone());
                direct.insert(p.clone());
            }
        }
        for dep_entry in self
            .dependency
            .dependents_of(changed_paths.iter().map(String::as_str))
        {
            // Skip entries being deleted in this very commit.
            let full = format!("{SOURCE_PREFIX}{dep_entry}");
            if overlay.get(&full).map(Option::is_some) != Some(false) {
                to_compile.insert(dep_entry);
            }
        }

        // Compile everything against the overlay view.
        let loader = OverlayLoader {
            base: &self.repo,
            overlay: &overlay,
        };
        let mut results: Vec<CompiledConfig> = Vec::new();
        {
            let compiler = Compiler::new(&loader);
            for entry in &to_compile {
                match compiler.compile(entry) {
                    Ok(out) => results.push(out),
                    Err(error) => {
                        return Err(ServiceError::Compile {
                            entry: entry.clone(),
                            error,
                        })
                    }
                }
            }
        }
        Ok((overlay, results, direct))
    }

    /// Commits source changes: validates, compiles, and lands sources plus
    /// regenerated JSON in one commit per affected partition.
    ///
    /// `changes` maps source paths (without the `source/` prefix) to new
    /// contents, or `None` to delete.
    pub fn commit_source(
        &mut self,
        author: &str,
        message: &str,
        changes: BTreeMap<String, Option<String>>,
    ) -> Result<CommitReport, ServiceError> {
        let (overlay, results, direct) = self.plan(&changes)?;

        // Assemble the git changes: sources plus compiled artifacts.
        let mut git_changes: Vec<Change> = Vec::new();
        for (full, content) in &overlay {
            match content {
                Some(bytes) => git_changes.push(Change::put(full.clone(), bytes.clone())),
                None => {
                    if self.repo.exists(full) {
                        git_changes.push(Change::delete(full.clone()));
                    }
                    // Deleting an entry also deletes its artifact.
                    if let Some(name) = config_name(full) {
                        let cpath = compiled_path(&name);
                        if self.repo.exists(&cpath) {
                            git_changes.push(Change::delete(cpath));
                        }
                    }
                }
            }
        }
        let mut updated = Vec::new();
        let mut ripple = Vec::new();
        for out in &results {
            let name = config_name(&format!("{SOURCE_PREFIX}{}", out.path))
                .expect("entry paths always map to names");
            let cpath = compiled_path(&name);
            let changed_artifact = self
                .artifacts
                .get(&name)
                .map(|a| a.json != out.json)
                .unwrap_or(true);
            if changed_artifact {
                git_changes.push(Change::put(cpath, out.json.clone()));
                updated.push(name.clone());
                if !direct.contains(&out.path) {
                    ripple.push(name.clone());
                }
            }
        }

        let ts = self.tick();
        let commits = self
            .repo
            .commit(author, message, ts, git_changes)
            .map_err(ServiceError::Store)?
            .into_iter()
            .map(|(_, o)| o.id)
            .collect();

        // Commit landed: update dependency maps and the artifact cache.
        for (path, content) in &changes {
            if path.ends_with(".cconf") && content.is_none() {
                self.dependency.remove(path);
                if let Some(name) = config_name(&format!("{SOURCE_PREFIX}{path}")) {
                    self.artifacts.remove(&name);
                }
            }
        }
        for out in results {
            self.dependency.update(&out.path, out.deps.clone());
            let name = config_name(&format!("{SOURCE_PREFIX}{}", out.path)).expect("entry");
            self.artifacts.insert(
                name.clone(),
                Artifact {
                    name,
                    json: out.json,
                    type_name: out.type_name,
                },
            );
        }
        Ok(CommitReport {
            commits,
            updated_configs: updated,
            ripple_recompiles: ripple,
            timestamp: ts,
        })
    }

    /// Commits a raw config (not compiler-produced; §6.1 reports most raw
    /// config updates come from automation tools).
    pub fn commit_raw(
        &mut self,
        author: &str,
        message: &str,
        name: &str,
        content: impl Into<Bytes>,
    ) -> Result<CommitReport, ServiceError> {
        let content = content.into();
        let path = format!("{RAW_PREFIX}{name}");
        let ts = self.tick();
        let json = String::from_utf8_lossy(&content).to_string();
        let commits = self
            .repo
            .commit(author, message, ts, vec![Change::put(path, content)])
            .map_err(ServiceError::Store)?
            .into_iter()
            .map(|(_, o)| o.id)
            .collect();
        self.artifacts.insert(
            name.to_string(),
            Artifact {
                name: name.to_string(),
                json,
                type_name: None,
            },
        );
        Ok(CommitReport {
            commits,
            updated_configs: vec![name.to_string()],
            ripple_recompiles: Vec::new(),
            timestamp: ts,
        })
    }

    /// Compiles `entry` against the current tree without committing (the
    /// manual-test / review preview path).
    pub fn preview(&self, entry: &str) -> Result<CompiledConfig, ServiceError> {
        let overlay = BTreeMap::new();
        let loader = OverlayLoader {
            base: &self.repo,
            overlay: &overlay,
        };
        Compiler::new(&loader)
            .compile(entry)
            .map_err(|error| ServiceError::Compile {
                entry: entry.to_string(),
                error,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn changes(pairs: &[(&str, &str)]) -> BTreeMap<String, Option<String>> {
        pairs
            .iter()
            .map(|(p, s)| (p.to_string(), Some(s.to_string())))
            .collect()
    }

    fn service_with_port_example() -> ConfigeratorService {
        let mut svc = ConfigeratorService::new();
        svc.commit_source(
            "alice",
            "seed",
            changes(&[
                ("shared/app_port.cinc", "APP_PORT = 8089"),
                (
                    "app.cconf",
                    "import \"shared/app_port.cinc\"\nexport_if_last({\"port\": APP_PORT})",
                ),
                (
                    "firewall.cconf",
                    "import \"shared/app_port.cinc\"\nexport_if_last({\"allow\": [APP_PORT]})",
                ),
            ]),
        )
        .unwrap();
        svc
    }

    #[test]
    fn commit_compiles_and_stores_artifacts() {
        let svc = service_with_port_example();
        assert_eq!(
            svc.artifact("app").unwrap().json.trim(),
            "{\n  \"port\": 8089\n}"
        );
        assert!(svc.artifact("firewall").unwrap().json.contains("8089"));
        // Sources and compiled JSON are both in git.
        assert!(svc.repo().exists("source/app.cconf"));
        assert!(svc.repo().exists("compiled/app.json"));
    }

    #[test]
    fn shared_module_change_recompiles_all_dependents_in_one_commit() {
        let mut svc = service_with_port_example();
        let report = svc
            .commit_source(
                "bob",
                "bump port",
                changes(&[("shared/app_port.cinc", "APP_PORT = 9090")]),
            )
            .unwrap();
        // Both dependents recompiled, atomically (single partition → one
        // commit id).
        let mut updated = report.updated_configs.clone();
        updated.sort();
        assert_eq!(updated, vec!["app", "firewall"]);
        assert_eq!(report.ripple_recompiles.len(), 2);
        assert_eq!(report.commits.len(), 1);
        assert!(svc.artifact("app").unwrap().json.contains("9090"));
        assert!(svc.artifact("firewall").unwrap().json.contains("9090"));
    }

    #[test]
    fn validator_failure_rejects_whole_commit() {
        let mut svc = ConfigeratorService::new();
        svc.commit_source(
            "alice",
            "seed",
            changes(&[
                (
                    "schemas/job.schema",
                    "struct Job { 1: string name 2: i64 mem = 64 }",
                ),
                (
                    "schemas/job.cvalidator",
                    "def validate(cfg):\n    require(cfg.mem >= 64, \"too small\")",
                ),
                (
                    "cache.cconf",
                    "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"c\" })",
                ),
            ]),
        )
        .unwrap();
        let heads = svc.repo().heads();
        // A schema-module edit that breaks the validator for the dependent
        // config rejects the commit entirely.
        let err = svc
            .commit_source(
                "bob",
                "bad",
                changes(&[(
                    "cache.cconf",
                    "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"c\", mem: 1 })",
                )]),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::Compile { .. }));
        assert_eq!(svc.repo().heads(), heads, "repository untouched");
        assert!(svc.artifact("cache").unwrap().json.contains("64"));
    }

    #[test]
    fn unchanged_artifacts_are_not_rewritten() {
        let mut svc = service_with_port_example();
        // A comment-only change to the shared module recompiles dependents
        // but produces identical JSON → nothing to distribute.
        let report = svc
            .commit_source(
                "bob",
                "comment",
                changes(&[("shared/app_port.cinc", "# note\nAPP_PORT = 8089")]),
            )
            .unwrap();
        assert!(report.updated_configs.is_empty());
    }

    #[test]
    fn deleting_entry_removes_artifact() {
        let mut svc = service_with_port_example();
        let mut ch = BTreeMap::new();
        ch.insert("firewall.cconf".to_string(), None);
        svc.commit_source("bob", "rm", ch).unwrap();
        assert!(svc.artifact("firewall").is_none());
        assert!(!svc.repo().exists("compiled/firewall.json"));
        assert!(!svc.repo().exists("source/firewall.cconf"));
        // The remaining dependent still recompiles on module changes.
        let report = svc
            .commit_source(
                "bob",
                "bump",
                changes(&[("shared/app_port.cinc", "APP_PORT = 7000")]),
            )
            .unwrap();
        assert_eq!(report.updated_configs, vec!["app"]);
    }

    #[test]
    fn raw_configs_distribute_verbatim() {
        let mut svc = ConfigeratorService::new();
        let report = svc
            .commit_raw("tool", "auto", "traffic/weights.json", "{\"w\": 3}")
            .unwrap();
        assert_eq!(report.updated_configs, vec!["traffic/weights.json"]);
        assert_eq!(
            svc.artifact("traffic/weights.json").unwrap().json,
            "{\"w\": 3}"
        );
    }

    #[test]
    fn forbidden_paths_rejected() {
        let mut svc = ConfigeratorService::new();
        let mut ch = BTreeMap::new();
        ch.insert("../etc/passwd".to_string(), Some("x".to_string()));
        // `classify` only admits source-tree paths.
        assert!(matches!(
            svc.commit_source("m", "x", ch),
            Err(ServiceError::ForbiddenPath(_))
        ));
    }

    #[test]
    fn dependency_service_bookkeeping() {
        let mut d = DependencyService::default();
        d.update("a.cconf", vec!["x.cinc".into(), "y.cinc".into()]);
        d.update("b.cconf", vec!["y.cinc".into()]);
        assert_eq!(d.dependents_of(["y.cinc"]).len(), 2);
        assert_eq!(d.dependents_of(["x.cinc"]).len(), 1);
        d.update("a.cconf", vec!["y.cinc".into()]);
        assert!(
            d.dependents_of(["x.cinc"]).is_empty(),
            "stale edges removed"
        );
        d.remove("b.cconf");
        assert_eq!(d.dependents_of(["y.cinc"]).len(), 1);
        assert_eq!(d.deps_of("a.cconf").unwrap(), &["y.cinc".to_string()]);
    }

    #[test]
    fn preview_compiles_without_committing() {
        let svc = service_with_port_example();
        let out = svc.preview("app.cconf").unwrap();
        assert!(out.json.contains("8089"));
        assert!(svc.preview("missing.cconf").is_err());
    }

    #[test]
    fn partitioned_namespace_commits_concurrently_routable() {
        let mut svc = ConfigeratorService::new();
        svc.add_partition("source/feed/");
        let report = svc
            .commit_source(
                "alice",
                "two partitions",
                changes(&[
                    ("feed/rank.cconf", "export_if_last({\"model\": 3})"),
                    ("misc.cconf", "export_if_last({\"v\": 1})"),
                ]),
            )
            .unwrap();
        assert_eq!(report.commits.len(), 2, "one commit per partition");
        assert!(svc.artifact("feed/rank").is_some());
        assert!(svc.artifact("misc").is_some());
    }
}
