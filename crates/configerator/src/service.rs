//! The Configerator service: version-controlled sources, the compiler
//! pipeline, and the dependency service.
//!
//! "The source code of config programs and generated JSON configs are
//! stored in a version control tool" (§3.1). A commit flows through this
//! service as follows:
//!
//! 1. the staged source changes are overlaid on the current source tree;
//! 2. the dependency service computes which config programs must be
//!    (re)compiled — the changed entry files plus every entry whose
//!    dependency set intersects the changed paths ("If APP_PORT in
//!    app_port.cinc is changed, the Configerator compiler automatically
//!    recompiles both app.cconf and firewall.cconf");
//! 3. every affected program is compiled and validated; any failure
//!    rejects the whole commit, leaving the repository untouched — and all
//!    failures in the batch are reported together, not just the first;
//! 4. sources and regenerated JSON land in **one git commit**, "which
//!    ensures consistency".
//!
//! # Incremental, parallel compilation
//!
//! The compile step is engineered for wide ripples (a popular `.cinc`
//! with thousands of dependents):
//!
//! * **Fingerprint skip** — every committed entry carries a fingerprint:
//!   a SHA-1 over the compiler version, the entry source, every recorded
//!   dependency source, and the probed-but-absent validator paths. During
//!   planning, a candidate whose fingerprint is unchanged is skipped and
//!   its stored artifact reused — byte-identical to a recompile by
//!   construction, because identical inputs compile to identical canonical
//!   JSON.
//! * **Shared parse cache** — all compiles share one content-addressed
//!   [`ParseCache`], so each module/schema/validator source is lexed and
//!   parsed once per batch *and* stays warm across commits (an edit simply
//!   misses on the new content).
//! * **Parallel execution** — remaining candidates compile on a scoped
//!   thread pool. Results are ordered by entry path and errors are
//!   collected and sorted, so the outcome is byte-for-byte deterministic
//!   regardless of worker count or cache state.
//!
//! Raw configs (§6.1) — files not produced by the compiler, usually
//! written by automation tools — are stored and distributed unchanged.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use bytes::Bytes;
use cdsl::compile::{CompiledConfig, Compiler, COMPILER_VERSION};
use cdsl::interp::Loader;
use cdsl::{content_key, CacheStats, ContentKey, ParseCache};
use gitstore::multirepo::MultiRepo;
use gitstore::object::ObjectId;
use gitstore::repo::Change;
use simnet::stats::Metrics;

use crate::metrics;

/// Where compiled artifacts live in the repository namespace.
pub const COMPILED_PREFIX: &str = "compiled/";
/// Where source files live.
pub const SOURCE_PREFIX: &str = "source/";
/// Where raw configs live.
pub const RAW_PREFIX: &str = "raw/";

/// Classifies a repository path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// A config program entry point (`.cconf`) — compiles to an artifact.
    Entry,
    /// A reusable module, schema, or validator.
    Support,
    /// A raw config.
    Raw,
    /// A compiled artifact (managed by the service, not user-writable).
    Compiled,
    /// Anything else.
    Other,
}

/// Classifies `path` by prefix and extension.
pub fn classify(path: &str) -> PathKind {
    if path.starts_with(COMPILED_PREFIX) {
        PathKind::Compiled
    } else if path.starts_with(RAW_PREFIX) {
        PathKind::Raw
    } else if path.starts_with(SOURCE_PREFIX) {
        if path.ends_with(".cconf") {
            PathKind::Entry
        } else {
            PathKind::Support
        }
    } else {
        PathKind::Other
    }
}

/// The distributable name of a config: for `source/a/b.cconf` it is
/// `a/b`; for `raw/x/y.json` it is `x/y.json`.
pub fn config_name(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix(SOURCE_PREFIX) {
        rest.strip_suffix(".cconf").map(str::to_string)
    } else {
        path.strip_prefix(RAW_PREFIX).map(|rest| rest.to_string())
    }
}

/// The repository path of a compiled artifact for config `name`.
pub fn compiled_path(name: &str) -> String {
    format!("{COMPILED_PREFIX}{name}.json")
}

/// One compile failure within a rejected batch.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileFailure {
    /// The entry that failed.
    pub entry: String,
    /// The compiler error.
    pub error: cdsl::CdslError,
}

impl fmt::Display for CompileFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compiling {}: {}", self.entry, self.error)
    }
}

/// Errors from the service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A change targets a path engineers may not write
    /// (e.g. `compiled/…`).
    ForbiddenPath(String),
    /// Compilation or validation of a single config program failed (the
    /// preview path).
    Compile {
        /// The entry that failed.
        entry: String,
        /// The compiler error.
        error: cdsl::CdslError,
    },
    /// One or more programs in a commit batch failed to compile or
    /// validate. Sorted by entry path; every failure in the batch is
    /// reported, not just the first.
    CompileMany(Vec<CompileFailure>),
    /// Static verification rejected the commit before anything compiled
    /// (the pre-commit gate; see [`cdsl::analysis`]).
    Verify(cdsl::VerifyReport),
    /// The underlying store rejected the commit.
    Store(gitstore::repo::Error),
    /// The commit contained no changes.
    Empty,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ForbiddenPath(p) => write!(f, "path not writable: {p}"),
            ServiceError::Compile { entry, error } => {
                write!(f, "compiling {entry}: {error}")
            }
            ServiceError::CompileMany(failures) => {
                write!(f, "{} config(s) failed to compile: ", failures.len())?;
                for (i, fail) in failures.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{fail}")?;
                }
                Ok(())
            }
            ServiceError::Verify(report) => {
                write!(
                    f,
                    "static verification rejected the commit: {} error(s)",
                    report.error_count()
                )?;
                for finding in report
                    .findings
                    .iter()
                    .filter(|x| x.severity == cdsl::Severity::Error)
                {
                    write!(f, "; {finding}")?;
                }
                Ok(())
            }
            ServiceError::Store(e) => write!(f, "store error: {e}"),
            ServiceError::Empty => write!(f, "empty commit"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Tuning knobs for the compile pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Worker threads for the compile step. `0` picks the machine's
    /// available parallelism (capped at 8); `1` compiles serially.
    pub workers: usize,
    /// Skip candidates whose fingerprint is unchanged, reusing the stored
    /// artifact.
    pub incremental: bool,
    /// Share parsed ASTs through the content-addressed [`ParseCache`].
    pub parse_cache: bool,
    /// Run the static verifier ([`cdsl::analysis`]) as a pre-commit gate:
    /// error findings reject the commit before anything compiles.
    pub verify: bool,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            workers: 0,
            incremental: true,
            parse_cache: true,
            verify: true,
        }
    }
}

impl CompileOptions {
    /// The pre-optimization pipeline: serial, no cache, no fingerprint
    /// skips, no static verification. Used as the baseline in benchmarks
    /// and differential tests.
    pub fn legacy() -> CompileOptions {
        CompileOptions {
            workers: 1,
            incremental: false,
            parse_cache: false,
            verify: false,
        }
    }
}

/// What the compile step of one plan did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Entries in the compile set (direct edits + dependency ripple).
    pub candidates: usize,
    /// Entries actually compiled.
    pub compiled: usize,
    /// Entries skipped by an unchanged fingerprint.
    pub skipped: usize,
    /// Parse-cache hits during this plan.
    pub parse_hits: u64,
    /// Parse-cache misses during this plan.
    pub parse_misses: u64,
    /// Total microseconds of compile work (summed across workers, so it
    /// can exceed wall-clock under parallelism).
    pub compile_us: u64,
    /// Wall-clock microseconds of the static verify pass (0 when the
    /// verify gate is off).
    pub verify_us: u64,
}

/// A successful commit through the service.
#[derive(Debug, Clone)]
pub struct CommitReport {
    /// The resulting commit ids, one per affected repository partition.
    pub commits: Vec<ObjectId>,
    /// Config names whose compiled artifacts changed (to be distributed).
    pub updated_configs: Vec<String>,
    /// Entries recompiled because a dependency changed (not directly
    /// edited).
    pub ripple_recompiles: Vec<String>,
    /// Entry paths actually compiled in this commit, sorted.
    pub recompiled_entries: Vec<String>,
    /// Entry paths skipped by an unchanged fingerprint, sorted.
    pub skipped_entries: Vec<String>,
    /// Compile-step statistics.
    pub stats: CompileStats,
    /// Timestamp of the commit.
    pub timestamp: u64,
}

/// The dependency service (Figure 3): tracks, for every source path, which
/// entry configs depend on it. Dependencies are extracted by the compiler
/// from `import`/`schema` statements — never declared by hand.
#[derive(Debug, Clone, Default)]
pub struct DependencyService {
    /// dependency path → entry paths that depend on it (includes probe
    /// edges: paths the compiler looked for but found absent).
    dependents: HashMap<String, BTreeSet<String>>,
    /// entry path → its dependency list.
    deps: HashMap<String, Vec<String>>,
    /// entry path → paths probed but absent when it last compiled.
    /// *Creating* one of these must recompile the entry, so they index
    /// into `dependents` too.
    probes: HashMap<String, Vec<String>>,
}

impl DependencyService {
    /// Records the dependency list of `entry` (replacing any previous).
    pub fn update(&mut self, entry: &str, deps: Vec<String>) {
        self.update_with_probes(entry, deps, Vec::new());
    }

    /// Records the dependency list of `entry` plus the paths its compile
    /// probed but found absent (conventionally `<schema>.cvalidator`
    /// candidates). Probe edges make *creating* such a file ripple into
    /// the entries that would pick it up.
    pub fn update_with_probes(&mut self, entry: &str, deps: Vec<String>, probed: Vec<String>) {
        let old_deps = self.deps.remove(entry).unwrap_or_default();
        let old_probes = self.probes.remove(entry).unwrap_or_default();
        for d in old_deps.iter().chain(old_probes.iter()) {
            if let Some(set) = self.dependents.get_mut(d) {
                set.remove(entry);
            }
        }
        for d in deps.iter().chain(probed.iter()) {
            self.dependents
                .entry(d.clone())
                .or_default()
                .insert(entry.to_string());
        }
        self.deps.insert(entry.to_string(), deps);
        if !probed.is_empty() {
            self.probes.insert(entry.to_string(), probed);
        }
    }

    /// Removes an entry entirely.
    pub fn remove(&mut self, entry: &str) {
        self.update_with_probes(entry, Vec::new(), Vec::new());
        self.deps.remove(entry);
    }

    /// Entries that depend on any of `paths` (including probe edges).
    pub fn dependents_of<'a>(&self, paths: impl IntoIterator<Item = &'a str>) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for p in paths {
            if let Some(set) = self.dependents.get(p) {
                out.extend(set.iter().cloned());
            }
        }
        out
    }

    /// The recorded dependency list of `entry` (real dependencies only,
    /// not probe edges).
    pub fn deps_of(&self, entry: &str) -> Option<&[String]> {
        self.deps.get(entry).map(Vec::as_slice)
    }

    /// The paths `entry` probed but found absent at its last compile.
    pub fn probes_of(&self, entry: &str) -> &[String] {
        self.probes.get(entry).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A compiled artifact tracked by the service.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Config name (distribution path).
    pub name: String,
    /// Canonical JSON.
    pub json: String,
    /// Schema type, if the config is a struct.
    pub type_name: Option<String>,
}

/// The compile record retained per entry for incremental planning.
#[derive(Debug, Clone)]
struct CompileRecord {
    /// The full compile result of the last landed commit.
    result: CompiledConfig,
    /// Fingerprint of the inputs that produced it (`None` disables
    /// skipping for this entry).
    fingerprint: Option<[u8; 20]>,
}

/// Loader view over a base snapshot plus staged overlay.
struct OverlayLoader<'a> {
    base: &'a MultiRepo,
    overlay: &'a BTreeMap<String, Option<Bytes>>,
}

impl Loader for OverlayLoader<'_> {
    fn load(&self, path: &str) -> Option<String> {
        let full = format!("{SOURCE_PREFIX}{path}");
        if let Some(staged) = self.overlay.get(&full) {
            return staged
                .as_ref()
                .and_then(|b| String::from_utf8(b.to_vec()).ok());
        }
        self.base
            .read_head(&full)
            .ok()
            .and_then(|b| String::from_utf8(b.to_vec()).ok())
    }
}

/// Memoized per-path content keys over one plan's overlay view: a shared
/// dependency (the hot `.cinc` of a wide ripple) is loaded and hashed
/// once per plan, not once per dependent entry.
struct SourceIndex<'a> {
    loader: &'a dyn Loader,
    keys: HashMap<String, Option<ContentKey>>,
}

impl<'a> SourceIndex<'a> {
    fn new(loader: &'a dyn Loader) -> SourceIndex<'a> {
        SourceIndex {
            loader,
            keys: HashMap::new(),
        }
    }

    /// The content key of `path`, or `None` if it does not exist.
    fn key(&mut self, path: &str) -> Option<ContentKey> {
        if let Some(k) = self.keys.get(path) {
            return *k;
        }
        let k = self.loader.load(path).map(|src| content_key(&src));
        self.keys.insert(path.to_string(), k);
        k
    }

    /// Computes the input fingerprint of a compiled entry: SHA-1 over the
    /// compiler version and the content key of the entry source, every
    /// dependency source (path + key, length-prefixed), and the
    /// probed-absent paths. Hashing keys instead of full contents commits
    /// to the same inputs while touching each distinct source once per
    /// plan. Returns `None` when an input is missing or a probed-absent
    /// path now exists — both mean "cannot prove freshness", which forces
    /// a recompile.
    fn fingerprint(&mut self, entry: &str, out: &CompiledConfig) -> Option<[u8; 20]> {
        fn feed(buf: &mut Vec<u8>, tag: u8, path: &str, key: ContentKey) {
            buf.push(tag);
            buf.extend_from_slice(&(path.len() as u64).to_le_bytes());
            buf.extend_from_slice(path.as_bytes());
            buf.extend_from_slice(&key.to_bytes());
        }
        let mut buf = Vec::with_capacity(8 + 40 * (1 + out.deps.len() + out.probed_absent.len()));
        buf.extend_from_slice(&COMPILER_VERSION.to_le_bytes());
        feed(&mut buf, 1, entry, self.key(entry)?);
        for dep in &out.deps {
            let key = self.key(dep)?;
            feed(&mut buf, 2, dep, key);
        }
        for probed in &out.probed_absent {
            if self.key(probed).is_some() {
                return None;
            }
            feed(&mut buf, 3, probed, ContentKey::default());
        }
        Some(gitstore::sha1::sha1(&buf))
    }
}

/// One entry's outcome within a plan.
struct PlannedEntry {
    out: CompiledConfig,
    fingerprint: Option<[u8; 20]>,
    skipped: bool,
    micros: u64,
}

/// The front half of a commit: overlay, compiled entries (ordered by
/// entry path), directly-edited set, and compile statistics.
struct PlanOutcome {
    overlay: BTreeMap<String, Option<Bytes>>,
    planned: Vec<PlannedEntry>,
    direct: HashSet<String>,
    stats: CompileStats,
}

/// The Configerator service for one region.
#[derive(Clone)]
pub struct ConfigeratorService {
    repo: MultiRepo,
    dependency: DependencyService,
    artifacts: BTreeMap<String, Artifact>,
    records: HashMap<String, CompileRecord>,
    options: CompileOptions,
    parse_cache: Arc<ParseCache>,
    verify_facts: Arc<cdsl::FactsCache>,
    metrics: Metrics,
    clock: u64,
}

impl Default for ConfigeratorService {
    fn default() -> ConfigeratorService {
        ConfigeratorService::new()
    }
}

impl ConfigeratorService {
    /// Creates an empty service with a single repository partition and the
    /// default (parallel, incremental, cached) compile options.
    pub fn new() -> ConfigeratorService {
        ConfigeratorService::with_options(CompileOptions::default())
    }

    /// Creates an empty service with explicit compile options.
    pub fn with_options(options: CompileOptions) -> ConfigeratorService {
        ConfigeratorService {
            repo: MultiRepo::new(),
            dependency: DependencyService::default(),
            artifacts: BTreeMap::new(),
            records: HashMap::new(),
            options,
            parse_cache: Arc::new(ParseCache::new()),
            verify_facts: Arc::new(cdsl::FactsCache::new()),
            metrics: Metrics::default(),
            clock: 0,
        }
    }

    /// Adds a repository partition for `prefix` (§3.6's partitioned
    /// namespace), e.g. `"source/feed/"`.
    pub fn add_partition(&mut self, prefix: &str) {
        self.repo.add_repo(prefix);
    }

    /// The underlying version-control store.
    pub fn repo(&self) -> &MultiRepo {
        &self.repo
    }

    /// The dependency service.
    pub fn dependency(&self) -> &DependencyService {
        &self.dependency
    }

    /// The current compile options.
    pub fn compile_options(&self) -> CompileOptions {
        self.options
    }

    /// Replaces the compile options (takes effect on the next plan).
    pub fn set_compile_options(&mut self, options: CompileOptions) {
        self.options = options;
    }

    /// Metrics recorded by the commit pipeline
    /// ([`metrics::COMPILE_US`] and friends).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Cumulative parse-cache counters.
    pub fn parse_cache_stats(&self) -> CacheStats {
        self.parse_cache.stats()
    }

    /// Advances and returns the logical clock (seconds).
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Sets the logical clock (for experiments replaying timed histories).
    pub fn set_clock(&mut self, t: u64) {
        self.clock = self.clock.max(t);
    }

    /// The compiled artifact for config `name`.
    pub fn artifact(&self, name: &str) -> Option<&Artifact> {
        self.artifacts.get(name)
    }

    /// Names of all distributable configs (compiled and raw).
    pub fn config_names(&self) -> Vec<String> {
        self.artifacts.keys().cloned().collect()
    }

    /// Reads the current source of `path` (without the `source/` prefix).
    pub fn read_source(&self, path: &str) -> Option<String> {
        self.repo
            .read_head(&format!("{SOURCE_PREFIX}{path}"))
            .ok()
            .and_then(|b| String::from_utf8(b.to_vec()).ok())
    }

    /// Dry-run: validates and compiles `changes` without committing.
    /// Returns the compile results for every affected entry (skipped
    /// candidates report their stored result). This is what Sandcastle
    /// and the manual-test path run against a proposed diff.
    pub fn check_changes(
        &self,
        changes: &BTreeMap<String, Option<String>>,
    ) -> Result<Vec<CompiledConfig>, ServiceError> {
        let outcome = self.plan(changes)?;
        Ok(outcome.planned.into_iter().map(|p| p.out).collect())
    }

    /// The worker count a plan will actually use for `candidates` entries.
    fn effective_workers(&self, candidates: usize) -> usize {
        if candidates <= 1 {
            return 1;
        }
        let configured = if self.options.workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(8)
        } else {
            self.options.workers
        };
        configured.clamp(1, candidates)
    }

    /// Shared front half of commit/check: builds the overlay, computes the
    /// compile set, skips fingerprint-fresh candidates, and compiles the
    /// rest (in parallel when configured). The outcome is deterministic —
    /// entries ordered by path, failures collected and sorted — regardless
    /// of worker count or cache state.
    fn plan(
        &self,
        changes: &BTreeMap<String, Option<String>>,
    ) -> Result<PlanOutcome, ServiceError> {
        if changes.is_empty() {
            return Err(ServiceError::Empty);
        }
        // Build the overlay, keyed by full repository path.
        let mut overlay: BTreeMap<String, Option<Bytes>> = BTreeMap::new();
        for (path, content) in changes {
            let ok_shape = !path.is_empty()
                && !path.starts_with('/')
                && !path.ends_with('/')
                && path
                    .split('/')
                    .all(|s| !s.is_empty() && s != "." && s != "..");
            if !ok_shape {
                return Err(ServiceError::ForbiddenPath(path.clone()));
            }
            let full = format!("{SOURCE_PREFIX}{path}");
            match classify(&full) {
                PathKind::Entry | PathKind::Support => {}
                _ => return Err(ServiceError::ForbiddenPath(path.clone())),
            }
            overlay.insert(full, content.clone().map(Bytes::from));
        }

        // Which entries must compile: directly changed `.cconf` files plus
        // dependents of every changed path.
        let changed_paths: Vec<String> = changes.keys().cloned().collect();
        let mut to_compile: BTreeSet<String> = BTreeSet::new();
        let mut direct: HashSet<String> = HashSet::new();
        for p in &changed_paths {
            if p.ends_with(".cconf") && changes[p].is_some() {
                to_compile.insert(p.clone());
                direct.insert(p.clone());
            }
        }
        for dep_entry in self
            .dependency
            .dependents_of(changed_paths.iter().map(String::as_str))
        {
            // Skip entries being deleted in this very commit.
            let full = format!("{SOURCE_PREFIX}{dep_entry}");
            if overlay.get(&full).map(Option::is_some) != Some(false) {
                to_compile.insert(dep_entry);
            }
        }

        let loader = OverlayLoader {
            base: &self.repo,
            overlay: &overlay,
        };
        // Entry order is fixed up front (BTreeSet iteration is sorted);
        // every later step addresses results by index into this list.
        let entries: Vec<String> = to_compile.into_iter().collect();
        let cache_before = self.parse_cache.stats();

        // Static verification gate: analyze every compile candidate
        // without executing it; error findings reject the commit before
        // any compile work happens. Module facts are content-addressed and
        // shared across plans, so a hot dependency is analyzed once.
        let mut verify_us = 0u64;
        if self.options.verify {
            // AST builds for the sources this commit changes are compile
            // work: the compile phase parses them whether or not the
            // verify gate exists, and the shared ParseCache hands one
            // pipeline's parse to the other. Warm those parses before the
            // verify timer so `verify_us` charges the analysis itself,
            // not the parse the plan owes anyway (a wide hot module
            // otherwise bills its whole reparse to the gate).
            if self.options.parse_cache {
                for p in &changed_paths {
                    if changes[p].is_none() {
                        continue;
                    }
                    if p.ends_with(".cconf") || p.ends_with(".cinc") || p.ends_with(".cvalidator") {
                        if let Some(src) = loader.load(p) {
                            let _ = self.parse_cache.module(&src, p);
                        }
                    } else if p.ends_with(".schema") {
                        if let Some(src) = loader.load(p) {
                            let _ = self.parse_cache.schema(&src, p);
                        }
                    }
                }
            }
            let verify_start = Instant::now();
            let mut verifier = cdsl::Verifier::new(&loader).with_facts_cache(&self.verify_facts);
            if self.options.parse_cache {
                verifier = verifier.with_parse_cache(&self.parse_cache);
            }
            let mut report = verifier.verify(&entries);
            verify_us = verify_start.elapsed().as_micros() as u64;
            if report.has_errors() {
                // Tortoise-style blast-radius hint: error findings in
                // files this commit did not touch are dependents the
                // change breaks.
                let broken: Vec<&str> = report
                    .findings
                    .iter()
                    .filter(|x| x.severity == cdsl::Severity::Error)
                    .map(|x| x.path.as_str())
                    .filter(|p| !changes.contains_key(*p))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                if !broken.is_empty() {
                    report.hints.push(format!(
                        "commit breaks dependent config(s): {}; minimal fix: keep the changed \
                         interface compatible or update the dependents in the same commit",
                        broken.join(", ")
                    ));
                    report.hints.sort();
                    report.hints.dedup();
                }
                return Err(ServiceError::Verify(report));
            }
        }

        // Incremental skip: candidates whose recorded fingerprint still
        // matches the overlay view reuse their stored result. The source
        // index memoizes per-path hashes, so a shared dependency is
        // loaded and hashed once for the whole plan.
        let mut index = SourceIndex::new(&loader);
        let mut slots: Vec<Option<PlannedEntry>> = Vec::with_capacity(entries.len());
        slots.resize_with(entries.len(), || None);
        let mut work: Vec<(usize, &str)> = Vec::new();
        for (i, entry) in entries.iter().enumerate() {
            if self.options.incremental {
                if let Some(rec) = self.records.get(entry) {
                    if let Some(stored) = rec.fingerprint {
                        if index.fingerprint(entry, &rec.result) == Some(stored) {
                            slots[i] = Some(PlannedEntry {
                                out: rec.result.clone(),
                                fingerprint: Some(stored),
                                skipped: true,
                                micros: 0,
                            });
                            continue;
                        }
                    }
                }
            }
            work.push((i, entry.as_str()));
        }

        // Compile the remaining candidates, serially or on a scoped pool.
        let cache = self.options.parse_cache.then_some(&*self.parse_cache);
        let compile_one = |entry: &str| {
            let start = Instant::now();
            let mut compiler = Compiler::new(&loader);
            if let Some(c) = cache {
                compiler = compiler.with_cache(c);
            }
            let res = compiler.compile(entry);
            (start.elapsed().as_micros() as u64, res)
        };
        let workers = self.effective_workers(work.len());
        let mut outcomes: Vec<(usize, u64, cdsl::Result<CompiledConfig>)> =
            Vec::with_capacity(work.len());
        if workers <= 1 {
            for (slot, entry) in &work {
                let (micros, res) = compile_one(entry);
                outcomes.push((*slot, micros, res));
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel();
            std::thread::scope(|s| {
                let next = &next;
                let work = &work;
                let compile_one = &compile_one;
                for _ in 0..workers {
                    let tx = tx.clone();
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(slot, entry)) = work.get(i) else {
                            break;
                        };
                        let (micros, res) = compile_one(entry);
                        if tx.send((slot, micros, res)).is_err() {
                            break;
                        }
                    });
                }
            });
            drop(tx);
            outcomes.extend(rx);
        }

        let mut failures: Vec<CompileFailure> = Vec::new();
        let mut compile_us = 0u64;
        for (slot, micros, res) in outcomes {
            compile_us += micros;
            match res {
                Ok(out) => {
                    let fp = index.fingerprint(&entries[slot], &out);
                    slots[slot] = Some(PlannedEntry {
                        out,
                        fingerprint: fp,
                        skipped: false,
                        micros,
                    });
                }
                Err(error) => failures.push(CompileFailure {
                    entry: entries[slot].clone(),
                    error,
                }),
            }
        }
        if !failures.is_empty() {
            failures.sort_by(|a, b| a.entry.cmp(&b.entry));
            return Err(ServiceError::CompileMany(failures));
        }

        let cache_delta = self.parse_cache.stats().since(cache_before);
        let stats = CompileStats {
            candidates: entries.len(),
            compiled: work.len(),
            skipped: entries.len() - work.len(),
            parse_hits: cache_delta.hits,
            parse_misses: cache_delta.misses,
            compile_us,
            verify_us,
        };
        let planned = slots
            .into_iter()
            .map(|p| p.expect("every candidate compiled or skipped"))
            .collect();
        Ok(PlanOutcome {
            overlay,
            planned,
            direct,
            stats,
        })
    }

    /// Commits source changes: validates, compiles, and lands sources plus
    /// regenerated JSON in one commit per affected partition.
    ///
    /// `changes` maps source paths (without the `source/` prefix) to new
    /// contents, or `None` to delete.
    pub fn commit_source(
        &mut self,
        author: &str,
        message: &str,
        changes: BTreeMap<String, Option<String>>,
    ) -> Result<CommitReport, ServiceError> {
        let PlanOutcome {
            overlay,
            planned,
            direct,
            stats,
        } = match self.plan(&changes) {
            Ok(outcome) => outcome,
            Err(err) => {
                if let ServiceError::CompileMany(failures) = &err {
                    self.metrics
                        .incr(metrics::COMPILE_ERRORS, failures.len() as u64);
                }
                if let ServiceError::Verify(report) = &err {
                    self.metrics.incr(metrics::VERIFY_REJECTED, 1);
                    if !report.hints.is_empty() {
                        self.metrics.incr(metrics::VERIFY_REPAIR_SUGGESTED, 1);
                    }
                }
                return Err(err);
            }
        };

        // Assemble the git changes: sources plus compiled artifacts.
        let mut git_changes: Vec<Change> = Vec::new();
        for (full, content) in &overlay {
            match content {
                Some(bytes) => git_changes.push(Change::put(full.clone(), bytes.clone())),
                None => {
                    if self.repo.exists(full) {
                        git_changes.push(Change::delete(full.clone()));
                    }
                    // Deleting an entry also deletes its artifact.
                    if let Some(name) = config_name(full) {
                        let cpath = compiled_path(&name);
                        if self.repo.exists(&cpath) {
                            git_changes.push(Change::delete(cpath));
                        }
                    }
                }
            }
        }
        let mut updated = Vec::new();
        let mut ripple = Vec::new();
        for p in &planned {
            let out = &p.out;
            let name = config_name(&format!("{SOURCE_PREFIX}{}", out.path))
                .expect("entry paths always map to names");
            let cpath = compiled_path(&name);
            let changed_artifact = self
                .artifacts
                .get(&name)
                .map(|a| a.json != out.json)
                .unwrap_or(true);
            if changed_artifact {
                git_changes.push(Change::put(cpath, out.json.clone()));
                updated.push(name.clone());
                if !direct.contains(&out.path) {
                    ripple.push(name.clone());
                }
            }
        }

        let ts = self.tick();
        let commits = self
            .repo
            .commit(author, message, ts, git_changes)
            .map_err(ServiceError::Store)?
            .into_iter()
            .map(|(_, o)| o.id)
            .collect();

        // Commit landed: update dependency maps, compile records, and the
        // artifact cache.
        for (path, content) in &changes {
            if path.ends_with(".cconf") && content.is_none() {
                self.dependency.remove(path);
                self.records.remove(path);
                if let Some(name) = config_name(&format!("{SOURCE_PREFIX}{path}")) {
                    self.artifacts.remove(&name);
                }
            }
        }
        let mut recompiled_entries = Vec::new();
        let mut skipped_entries = Vec::new();
        for p in planned {
            let out = p.out;
            if p.skipped {
                skipped_entries.push(out.path.clone());
            } else {
                recompiled_entries.push(out.path.clone());
                self.metrics
                    .sample(metrics::COMPILE_US, p.micros as f64 / 1e6);
            }
            self.dependency.update_with_probes(
                &out.path,
                out.deps.clone(),
                out.probed_absent.clone(),
            );
            let name = config_name(&format!("{SOURCE_PREFIX}{}", out.path)).expect("entry");
            self.artifacts.insert(
                name.clone(),
                Artifact {
                    name,
                    json: out.json.clone(),
                    type_name: out.type_name.clone(),
                },
            );
            self.records.insert(
                out.path.clone(),
                CompileRecord {
                    fingerprint: p.fingerprint,
                    result: out,
                },
            );
        }
        self.metrics.incr(metrics::COMMITS, 1);
        self.metrics
            .incr(metrics::ENTRIES_COMPILED, stats.compiled as u64);
        self.metrics
            .incr(metrics::FINGERPRINT_SKIPS, stats.skipped as u64);
        self.metrics
            .incr(metrics::PARSE_CACHE_HITS, stats.parse_hits);
        self.metrics
            .incr(metrics::PARSE_CACHE_MISSES, stats.parse_misses);
        if self.options.verify {
            self.metrics.incr(metrics::VERIFY_CLEAN, 1);
            self.metrics
                .sample(metrics::VERIFY_US, stats.verify_us as f64 / 1e6);
        }
        Ok(CommitReport {
            commits,
            updated_configs: updated,
            ripple_recompiles: ripple,
            recompiled_entries,
            skipped_entries,
            stats,
            timestamp: ts,
        })
    }

    /// Commits a raw config (not compiler-produced; §6.1 reports most raw
    /// config updates come from automation tools).
    pub fn commit_raw(
        &mut self,
        author: &str,
        message: &str,
        name: &str,
        content: impl Into<Bytes>,
    ) -> Result<CommitReport, ServiceError> {
        let content = content.into();
        let path = format!("{RAW_PREFIX}{name}");
        let ts = self.tick();
        let json = String::from_utf8_lossy(&content).to_string();
        let commits = self
            .repo
            .commit(author, message, ts, vec![Change::put(path, content)])
            .map_err(ServiceError::Store)?
            .into_iter()
            .map(|(_, o)| o.id)
            .collect();
        self.artifacts.insert(
            name.to_string(),
            Artifact {
                name: name.to_string(),
                json,
                type_name: None,
            },
        );
        self.metrics.incr(metrics::COMMITS, 1);
        Ok(CommitReport {
            commits,
            updated_configs: vec![name.to_string()],
            ripple_recompiles: Vec::new(),
            recompiled_entries: Vec::new(),
            skipped_entries: Vec::new(),
            stats: CompileStats::default(),
            timestamp: ts,
        })
    }

    /// Compiles `entry` against the current tree without committing (the
    /// manual-test / review preview path).
    pub fn preview(&self, entry: &str) -> Result<CompiledConfig, ServiceError> {
        let overlay = BTreeMap::new();
        let loader = OverlayLoader {
            base: &self.repo,
            overlay: &overlay,
        };
        let mut compiler = Compiler::new(&loader);
        if self.options.parse_cache {
            compiler = compiler.with_cache(&self.parse_cache);
        }
        compiler
            .compile(entry)
            .map_err(|error| ServiceError::Compile {
                entry: entry.to_string(),
                error,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn changes(pairs: &[(&str, &str)]) -> BTreeMap<String, Option<String>> {
        pairs
            .iter()
            .map(|(p, s)| (p.to_string(), Some(s.to_string())))
            .collect()
    }

    fn service_with_port_example() -> ConfigeratorService {
        let mut svc = ConfigeratorService::new();
        svc.commit_source(
            "alice",
            "seed",
            changes(&[
                ("shared/app_port.cinc", "APP_PORT = 8089"),
                (
                    "app.cconf",
                    "import \"shared/app_port.cinc\"\nexport_if_last({\"port\": APP_PORT})",
                ),
                (
                    "firewall.cconf",
                    "import \"shared/app_port.cinc\"\nexport_if_last({\"allow\": [APP_PORT]})",
                ),
            ]),
        )
        .unwrap();
        svc
    }

    #[test]
    fn commit_compiles_and_stores_artifacts() {
        let svc = service_with_port_example();
        assert_eq!(
            svc.artifact("app").unwrap().json.trim(),
            "{\n  \"port\": 8089\n}"
        );
        assert!(svc.artifact("firewall").unwrap().json.contains("8089"));
        // Sources and compiled JSON are both in git.
        assert!(svc.repo().exists("source/app.cconf"));
        assert!(svc.repo().exists("compiled/app.json"));
    }

    #[test]
    fn shared_module_change_recompiles_all_dependents_in_one_commit() {
        let mut svc = service_with_port_example();
        let report = svc
            .commit_source(
                "bob",
                "bump port",
                changes(&[("shared/app_port.cinc", "APP_PORT = 9090")]),
            )
            .unwrap();
        // Both dependents recompiled, atomically (single partition → one
        // commit id).
        let mut updated = report.updated_configs.clone();
        updated.sort();
        assert_eq!(updated, vec!["app", "firewall"]);
        assert_eq!(report.ripple_recompiles.len(), 2);
        assert_eq!(report.commits.len(), 1);
        assert!(svc.artifact("app").unwrap().json.contains("9090"));
        assert!(svc.artifact("firewall").unwrap().json.contains("9090"));
    }

    #[test]
    fn validator_failure_rejects_whole_commit() {
        let mut svc = ConfigeratorService::new();
        svc.commit_source(
            "alice",
            "seed",
            changes(&[
                (
                    "schemas/job.schema",
                    "struct Job { 1: string name 2: i64 mem = 64 }",
                ),
                (
                    "schemas/job.cvalidator",
                    "def validate(cfg):\n    require(cfg.mem >= 64, \"too small\")",
                ),
                (
                    "cache.cconf",
                    "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"c\" })",
                ),
            ]),
        )
        .unwrap();
        let heads = svc.repo().heads();
        // A schema-module edit that breaks the validator for the dependent
        // config rejects the commit entirely.
        let err = svc
            .commit_source(
                "bob",
                "bad",
                changes(&[(
                    "cache.cconf",
                    "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"c\", mem: 1 })",
                )]),
            )
            .unwrap_err();
        match err {
            ServiceError::CompileMany(failures) => {
                assert_eq!(failures.len(), 1);
                assert_eq!(failures[0].entry, "cache.cconf");
            }
            other => panic!("expected CompileMany, got {other:?}"),
        }
        assert_eq!(svc.repo().heads(), heads, "repository untouched");
        assert!(svc.artifact("cache").unwrap().json.contains("64"));
        assert_eq!(svc.metrics().counter(metrics::COMPILE_ERRORS), 1);
    }

    #[test]
    fn all_failures_in_a_batch_are_reported_sorted() {
        let mut svc = ConfigeratorService::new();
        svc.commit_source(
            "alice",
            "seed",
            changes(&[
                ("shared/n.cinc", "N = 1"),
                (
                    "b.cconf",
                    "import \"shared/n.cinc\"\nexport_if_last({\"n\": N})",
                ),
                (
                    "a.cconf",
                    "import \"shared/n.cinc\"\nexport_if_last({\"n\": N})",
                ),
            ]),
        )
        .unwrap();
        // Breaking the shared module breaks both dependents; every failure
        // is reported, ordered by entry path. (Verify off: this exercises
        // the compiler's own batch-failure path.)
        svc.set_compile_options(CompileOptions {
            verify: false,
            ..CompileOptions::default()
        });
        let err = svc
            .commit_source("bob", "break", changes(&[("shared/n.cinc", "N = ")]))
            .unwrap_err();
        match err {
            ServiceError::CompileMany(failures) => {
                let entries: Vec<&str> = failures.iter().map(|f| f.entry.as_str()).collect();
                assert_eq!(entries, vec!["a.cconf", "b.cconf"]);
            }
            other => panic!("expected CompileMany, got {other:?}"),
        }
        assert_eq!(svc.metrics().counter(metrics::COMPILE_ERRORS), 2);
    }

    #[test]
    fn verify_gate_rejects_dependency_break_with_repair_hint() {
        let mut svc = ConfigeratorService::new();
        svc.commit_source(
            "alice",
            "seed",
            changes(&[
                ("shared/n.cinc", "N = 1"),
                (
                    "b.cconf",
                    "import \"shared/n.cinc\"\nexport_if_last({\"n\": N})",
                ),
                (
                    "a.cconf",
                    "import \"shared/n.cinc\"\nexport_if_last({\"n\": N})",
                ),
            ]),
        )
        .unwrap();
        // Renaming the shared binding statically breaks both dependents:
        // the verifier rejects the commit before anything compiles and
        // names the blast radius in a repair hint.
        let err = svc
            .commit_source("bob", "rename", changes(&[("shared/n.cinc", "M = 1")]))
            .unwrap_err();
        match err {
            ServiceError::Verify(report) => {
                assert!(report.has_errors());
                let paths: Vec<&str> = report
                    .findings
                    .iter()
                    .filter(|f| f.severity == cdsl::Severity::Error)
                    .map(|f| f.path.as_str())
                    .collect();
                assert_eq!(paths, vec!["a.cconf", "b.cconf"]);
                assert!(report
                    .hints
                    .iter()
                    .any(|h| h.contains("breaks dependent config(s): a.cconf, b.cconf")));
            }
            other => panic!("expected Verify, got {other:?}"),
        }
        assert_eq!(svc.metrics().counter(metrics::VERIFY_REJECTED), 1);
        assert_eq!(svc.metrics().counter(metrics::VERIFY_REPAIR_SUGGESTED), 1);
        assert_eq!(svc.metrics().counter(metrics::COMPILE_ERRORS), 0);
        // The clean seed commit ticked the verify-clean counter.
        assert_eq!(svc.metrics().counter(metrics::VERIFY_CLEAN), 1);
    }

    #[test]
    fn verify_gate_rejects_schema_type_error_in_dead_branch() {
        let mut svc = ConfigeratorService::new();
        // The bad payload sits under a constant-false condition: the
        // compiler never executes it, but the verifier flags both the type
        // error and the dead export arm.
        let src = concat!(
            "schema \"schemas/job.schema\"\n",
            "if 1 > 2:\n",
            "    export_if_last(Job { name: \"j\", retries: \"many\" })\n",
            "else:\n",
            "    export_if_last(Job { name: \"j\", retries: 3 })\n",
        );
        let err = svc
            .commit_source(
                "bob",
                "sneaky",
                changes(&[
                    (
                        "schemas/job.schema",
                        "struct Job {\n  1: string name\n  2: i64 retries\n}",
                    ),
                    ("job.cconf", src),
                ]),
            )
            .unwrap_err();
        let ServiceError::Verify(report) = err else {
            panic!("expected Verify rejection");
        };
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == "schema-type" && f.message.contains("expected i64")));
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == "reachability" && f.message.contains("unreachable")));
    }

    #[test]
    fn unchanged_artifacts_are_not_rewritten() {
        let mut svc = service_with_port_example();
        // A comment-only change to the shared module recompiles dependents
        // but produces identical JSON → nothing to distribute.
        let report = svc
            .commit_source(
                "bob",
                "comment",
                changes(&[("shared/app_port.cinc", "# note\nAPP_PORT = 8089")]),
            )
            .unwrap();
        assert!(report.updated_configs.is_empty());
    }

    #[test]
    fn identical_rewrite_skips_by_fingerprint() {
        let mut svc = service_with_port_example();
        // Rewriting the shared module with byte-identical content leaves
        // every dependent's fingerprint unchanged → both are skipped, not
        // recompiled.
        let report = svc
            .commit_source(
                "tool",
                "no-op rewrite",
                changes(&[("shared/app_port.cinc", "APP_PORT = 8089")]),
            )
            .unwrap();
        assert_eq!(report.stats.candidates, 2);
        assert_eq!(report.stats.skipped, 2);
        assert_eq!(report.stats.compiled, 0);
        assert_eq!(
            report.skipped_entries,
            vec!["app.cconf".to_string(), "firewall.cconf".to_string()]
        );
        assert!(report.recompiled_entries.is_empty());
        assert!(report.updated_configs.is_empty());
        assert_eq!(svc.metrics().counter(metrics::FINGERPRINT_SKIPS), 2);
        // The artifacts are still intact and identical.
        assert!(svc.artifact("app").unwrap().json.contains("8089"));
    }

    #[test]
    fn legacy_options_never_skip() {
        let mut svc = ConfigeratorService::with_options(CompileOptions::legacy());
        svc.commit_source(
            "alice",
            "seed",
            changes(&[
                ("shared/app_port.cinc", "APP_PORT = 8089"),
                (
                    "app.cconf",
                    "import \"shared/app_port.cinc\"\nexport_if_last({\"port\": APP_PORT})",
                ),
            ]),
        )
        .unwrap();
        let report = svc
            .commit_source(
                "tool",
                "no-op rewrite",
                changes(&[("shared/app_port.cinc", "APP_PORT = 8089")]),
            )
            .unwrap();
        assert_eq!(report.stats.skipped, 0);
        assert_eq!(report.stats.compiled, 1);
        assert_eq!(report.stats.parse_hits, 0, "cache disabled");
    }

    #[test]
    fn parse_cache_shares_parses_within_and_across_commits() {
        let mut svc = service_with_port_example();
        let seed = svc.parse_cache_stats();
        // Both entries import the same module: compiling the seed commit
        // parsed it once and hit the cache once.
        assert!(seed.hits >= 1, "shared module parse reused");
        // An unrelated new entry importing the same (unchanged) module
        // hits the cache across commits.
        svc.commit_source(
            "carol",
            "new dependent",
            changes(&[(
                "lb.cconf",
                "import \"shared/app_port.cinc\"\nexport_if_last({\"lb\": APP_PORT})",
            )]),
        )
        .unwrap();
        let after = svc.parse_cache_stats().since(seed);
        assert!(after.hits >= 1, "unchanged module stayed warm");
    }

    #[test]
    fn creating_probed_validator_recompiles_dependents() {
        let mut svc = ConfigeratorService::new();
        svc.commit_source(
            "alice",
            "seed",
            changes(&[
                (
                    "schemas/job.schema",
                    "struct Job { 1: string name 2: i64 mem = 64 }",
                ),
                (
                    "cache.cconf",
                    "schema \"schemas/job.schema\"\nexport_if_last(Job { name: \"c\" })",
                ),
            ]),
        )
        .unwrap();
        // The compiler probed for the validator and found it absent; that
        // probe is indexed, so *creating* the file ripples.
        assert!(svc
            .dependency()
            .probes_of("cache.cconf")
            .contains(&"schemas/job.cvalidator".to_string()));
        let err = svc
            .commit_source(
                "bob",
                "add strict validator",
                changes(&[(
                    "schemas/job.cvalidator",
                    "def validate(cfg):\n    require(cfg.mem >= 128, \"too small\")",
                )]),
            )
            .unwrap_err();
        assert!(
            matches!(&err, ServiceError::CompileMany(f) if f[0].entry == "cache.cconf"),
            "new validator must re-check existing dependents, got {err:?}"
        );
    }

    #[test]
    fn parallel_and_serial_plans_agree() {
        let mut sources = vec![("shared/base.cinc".to_string(), "BASE = 10".to_string())];
        for i in 0..24 {
            sources.push((
                format!("entry{i:02}.cconf"),
                format!("import \"shared/base.cinc\"\nexport_if_last({{\"v\": BASE + {i}}})"),
            ));
        }
        let as_changes: BTreeMap<String, Option<String>> = sources
            .iter()
            .map(|(p, s)| (p.clone(), Some(s.clone())))
            .collect();
        let mut serial = ConfigeratorService::with_options(CompileOptions {
            workers: 1,
            ..CompileOptions::default()
        });
        let mut parallel = ConfigeratorService::with_options(CompileOptions {
            workers: 4,
            ..CompileOptions::default()
        });
        let a = serial
            .commit_source("alice", "seed", as_changes.clone())
            .unwrap();
        let b = parallel.commit_source("alice", "seed", as_changes).unwrap();
        assert_eq!(a.updated_configs, b.updated_configs);
        assert_eq!(a.recompiled_entries, b.recompiled_entries);
        for name in &a.updated_configs {
            assert_eq!(
                serial.artifact(name).unwrap().json,
                parallel.artifact(name).unwrap().json,
                "artifact {name} must be byte-identical across worker counts"
            );
        }
        // Errors also agree (collected and sorted, not first-wins).
        let bad = changes(&[("shared/base.cinc", "BASE = ")]);
        let ea = serial.commit_source("bob", "bad", bad.clone()).unwrap_err();
        let eb = parallel.commit_source("bob", "bad", bad).unwrap_err();
        assert_eq!(ea, eb);
    }

    #[test]
    fn deleting_entry_removes_artifact() {
        let mut svc = service_with_port_example();
        let mut ch = BTreeMap::new();
        ch.insert("firewall.cconf".to_string(), None);
        svc.commit_source("bob", "rm", ch).unwrap();
        assert!(svc.artifact("firewall").is_none());
        assert!(!svc.repo().exists("compiled/firewall.json"));
        assert!(!svc.repo().exists("source/firewall.cconf"));
        // The remaining dependent still recompiles on module changes.
        let report = svc
            .commit_source(
                "bob",
                "bump",
                changes(&[("shared/app_port.cinc", "APP_PORT = 7000")]),
            )
            .unwrap();
        assert_eq!(report.updated_configs, vec!["app"]);
    }

    #[test]
    fn raw_configs_distribute_verbatim() {
        let mut svc = ConfigeratorService::new();
        let report = svc
            .commit_raw("tool", "auto", "traffic/weights.json", "{\"w\": 3}")
            .unwrap();
        assert_eq!(report.updated_configs, vec!["traffic/weights.json"]);
        assert_eq!(
            svc.artifact("traffic/weights.json").unwrap().json,
            "{\"w\": 3}"
        );
    }

    #[test]
    fn forbidden_paths_rejected() {
        let mut svc = ConfigeratorService::new();
        let mut ch = BTreeMap::new();
        ch.insert("../etc/passwd".to_string(), Some("x".to_string()));
        // `classify` only admits source-tree paths.
        assert!(matches!(
            svc.commit_source("m", "x", ch),
            Err(ServiceError::ForbiddenPath(_))
        ));
    }

    #[test]
    fn dependency_service_bookkeeping() {
        let mut d = DependencyService::default();
        d.update("a.cconf", vec!["x.cinc".into(), "y.cinc".into()]);
        d.update("b.cconf", vec!["y.cinc".into()]);
        assert_eq!(d.dependents_of(["y.cinc"]).len(), 2);
        assert_eq!(d.dependents_of(["x.cinc"]).len(), 1);
        d.update("a.cconf", vec!["y.cinc".into()]);
        assert!(
            d.dependents_of(["x.cinc"]).is_empty(),
            "stale edges removed"
        );
        d.remove("b.cconf");
        assert_eq!(d.dependents_of(["y.cinc"]).len(), 1);
        assert_eq!(d.deps_of("a.cconf").unwrap(), &["y.cinc".to_string()]);
    }

    #[test]
    fn dependency_service_probe_edges() {
        let mut d = DependencyService::default();
        d.update_with_probes(
            "a.cconf",
            vec!["j.schema".into()],
            vec!["j.cvalidator".into()],
        );
        // Probe edges ripple like real dependencies…
        assert_eq!(d.dependents_of(["j.cvalidator"]).len(), 1);
        // …but are not reported as dependencies.
        assert_eq!(d.deps_of("a.cconf").unwrap(), &["j.schema".to_string()]);
        assert_eq!(d.probes_of("a.cconf"), &["j.cvalidator".to_string()]);
        // Replacing the record clears stale probe edges.
        d.update_with_probes("a.cconf", vec!["j.schema".into()], Vec::new());
        assert!(d.dependents_of(["j.cvalidator"]).is_empty());
        assert!(d.probes_of("a.cconf").is_empty());
    }

    #[test]
    fn preview_compiles_without_committing() {
        let svc = service_with_port_example();
        let out = svc.preview("app.cconf").unwrap();
        assert!(out.json.contains("8089"));
        assert!(svc.preview("missing.cconf").is_err());
    }

    #[test]
    fn partitioned_namespace_commits_concurrently_routable() {
        let mut svc = ConfigeratorService::new();
        svc.add_partition("source/feed/");
        let report = svc
            .commit_source(
                "alice",
                "two partitions",
                changes(&[
                    ("feed/rank.cconf", "export_if_last({\"model\": 3})"),
                    ("misc.cconf", "export_if_last({\"v\": 1})"),
                ]),
            )
            .unwrap();
        assert_eq!(report.commits.len(), 2, "one commit per partition");
        assert!(svc.artifact("feed/rank").is_some());
        assert!(svc.artifact("misc").is_some());
    }

    #[test]
    fn commit_metrics_recorded() {
        let svc = service_with_port_example();
        let m = svc.metrics();
        assert_eq!(m.counter(metrics::COMMITS), 1);
        assert_eq!(m.counter(metrics::ENTRIES_COMPILED), 2);
        assert_eq!(m.samples(metrics::COMPILE_US).len(), 2);
        assert!(m.counter(metrics::PARSE_CACHE_MISSES) >= 1);
        let text = m.export_prometheus();
        assert!(
            text.contains("configerator_entries_compiled") || text.contains("entries_compiled")
        );
    }
}
