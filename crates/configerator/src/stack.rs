//! The full configuration-management stack: review → CI → canary →
//! landing → distribution, with multi-region fault tolerance.
//!
//! This is the facade a product engineer (or automation tool) interacts
//! with, wiring together every component of Figure 3. It also implements
//! §3.7: "Every component in Figure 3 has built-in redundancy across
//! multiple regions. One region serves as the master. Each backup region
//! has its own copy of the git repository, and receives updates from the
//! master region. ... Configerator supports failover both within a region
//! and across regions."

use std::collections::{BTreeMap, HashMap};

use crate::canary::{CanaryOutcome, CanaryService, CanarySpec, FleetModel};
use crate::landing::{LandError, LandingStrip, SourceDiff};
use crate::review::{Phabricator, ReviewError, ReviewPolicy, Sandcastle};
use crate::risk::{RiskAssessment, RiskModel};
use crate::service::{CommitReport, ConfigeratorService};
use crate::tailer::{ConfigUpdate, GitTailer};

/// A subscriber callback invoked with each config update (the in-process
/// analogue of an application reading through the Configerator proxy).
pub type Subscriber = Box<dyn FnMut(&ConfigUpdate)>;

/// Why a ship attempt failed.
#[derive(Debug)]
pub enum ShipError {
    /// The review system refused (not approved, tests missing…).
    Review(ReviewError),
    /// Automated canary testing failed; the change never landed.
    Canary(Box<CanaryOutcome>),
    /// The landing strip bounced the diff.
    Land(LandError),
}

impl std::fmt::Display for ShipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShipError::Review(e) => write!(f, "review: {e}"),
            ShipError::Canary(o) => {
                let failed = o
                    .phases
                    .iter()
                    .find(|p| !p.passed)
                    .map(|p| p.name.as_str())
                    .unwrap_or("?");
                write!(f, "canary failed in {failed}")
            }
            ShipError::Land(e) => write!(f, "landing: {e}"),
        }
    }
}

impl std::error::Error for ShipError {}

/// A successful ship.
#[derive(Debug)]
pub struct ShipOutcome {
    /// The commit report from the master region.
    pub report: CommitReport,
    /// The canary outcome, if a canary ran.
    pub canary: Option<CanaryOutcome>,
    /// Config names distributed to subscribers.
    pub distributed: Vec<String>,
}

/// The multi-region configuration-management stack.
pub struct Stack {
    regions: Vec<ConfigeratorService>,
    region_ok: Vec<bool>,
    master: usize,
    /// The review system.
    pub phab: Phabricator,
    /// The CI sandbox.
    pub sandcastle: Sandcastle,
    /// The landing strip.
    pub landing: LandingStrip,
    /// The canary service.
    pub canary: CanaryService,
    tailer: GitTailer,
    canary_specs: HashMap<String, CanarySpec>,
    default_spec: Option<CanarySpec>,
    subscribers: HashMap<String, Vec<Subscriber>>,
    risk: RiskModel,
    risk_log: HashMap<u64, RiskAssessment>,
}

impl Stack {
    /// Creates a stack with `regions` replicas (≥ 1); region 0 starts as
    /// master.
    pub fn new(regions: usize) -> Stack {
        assert!(regions >= 1, "need at least one region");
        Stack {
            regions: (0..regions).map(|_| ConfigeratorService::new()).collect(),
            region_ok: vec![true; regions],
            master: 0,
            phab: Phabricator::new(),
            sandcastle: Sandcastle::new(),
            landing: LandingStrip::new(),
            canary: CanaryService,
            tailer: GitTailer::new(),
            canary_specs: HashMap::new(),
            default_spec: None,
            subscribers: HashMap::new(),
            risk: RiskModel::new(),
            risk_log: HashMap::new(),
        }
    }

    /// Overrides the review policy.
    pub fn set_policy(&mut self, policy: ReviewPolicy) {
        self.phab = Phabricator::with_policy(policy);
    }

    /// Sets the default canary spec applied to every shipped config.
    pub fn set_default_canary(&mut self, spec: CanarySpec) {
        self.default_spec = Some(spec);
    }

    /// Associates a canary spec with one config name.
    pub fn set_canary_spec(&mut self, config: &str, spec: CanarySpec) {
        self.canary_specs.insert(config.to_string(), spec);
    }

    /// The current master region's service.
    pub fn master(&self) -> &ConfigeratorService {
        &self.regions[self.master]
    }

    /// Mutable access to the master service (for Mutator-style automation
    /// writes; distribution still requires [`Stack::pump`]).
    pub fn master_mut(&mut self) -> &mut ConfigeratorService {
        &mut self.regions[self.master]
    }

    /// Index of the current master region.
    pub fn master_region(&self) -> usize {
        self.master
    }

    /// A backup region's service (for replication tests).
    pub fn region(&self, i: usize) -> &ConfigeratorService {
        &self.regions[i]
    }

    /// Fails a region. If it was the master, the first healthy region is
    /// promoted (§3.7's cross-region failover).
    ///
    /// # Panics
    ///
    /// Panics if no healthy region remains.
    pub fn fail_region(&mut self, i: usize) {
        self.region_ok[i] = false;
        if i == self.master {
            self.master = self
                .region_ok
                .iter()
                .position(|ok| *ok)
                .expect("at least one healthy region required");
            // The new master may be behind the failed one if the failure
            // raced a replication; tailer cursors are per-stack and carry
            // over (they track content, not region identity).
        }
    }

    /// Recovers a region by re-cloning from the current master.
    pub fn recover_region(&mut self, i: usize) {
        self.regions[i] = self.regions[self.master].clone();
        self.region_ok[i] = true;
    }

    /// Registers a subscriber for config `name`. The callback runs on
    /// every subsequent update of that config.
    pub fn subscribe(&mut self, name: &str, f: impl FnMut(&ConfigUpdate) + 'static) {
        self.subscribers
            .entry(name.to_string())
            .or_default()
            .push(Box::new(f));
    }

    /// Submits a diff: runs Sandcastle and opens a review with the report
    /// attached. Returns the review id.
    pub fn propose(
        &mut self,
        author: &str,
        message: &str,
        changes: BTreeMap<String, Option<String>>,
    ) -> u64 {
        let diff = SourceDiff::against(self.master(), author, message, changes);
        let report = self.sandcastle.run(self.master(), &diff);
        // Risk assessment (§8 future work, implemented): score the diff
        // against each touched config's history and attach it to the
        // review for the reviewer to see.
        let assessment = self.assess_risk(&diff);
        let id = self.phab.submit(diff);
        self.phab
            .attach_report(id, report)
            .expect("review just created");
        self.risk_log.insert(id, assessment);
        id
    }

    /// The risk assessment attached to a review at propose time.
    pub fn risk_of(&self, id: u64) -> Option<&RiskAssessment> {
        self.risk_log.get(&id)
    }

    /// Scores a diff: the maximum per-config risk across touched entries.
    fn assess_risk(&self, diff: &SourceDiff) -> RiskAssessment {
        let svc = self.master();
        let mut best = RiskAssessment {
            score: 0.0,
            signals: Vec::new(),
        };
        for (path, content) in &diff.changes {
            if !path.ends_with(".cconf") {
                continue;
            }
            let line_changes = match (svc.read_source(path), content) {
                (Some(old), Some(new)) => {
                    gitstore::diff::diff_stat(&old, new).line_changes() as u32
                }
                (None, Some(new)) => new.lines().count() as u32,
                (Some(old), None) => old.lines().count() as u32,
                (None, None) => 0,
            };
            let dependents = self
                .master()
                .dependency()
                .dependents_of([path.as_str()])
                .len();
            let a = self.risk.assess(
                path,
                self.clock_estimate(),
                line_changes,
                &diff.author,
                dependents,
            );
            if a.score > best.score {
                best = a;
            }
        }
        best
    }

    /// A monotone timestamp for the risk model (the landed-commit count).
    fn clock_estimate(&self) -> u64 {
        self.landing.stats().landed
    }

    /// Records an approval on a review.
    pub fn approve(&mut self, id: u64, reviewer: &str) -> Result<(), ReviewError> {
        self.phab.approve(id, reviewer)
    }

    /// Ships an approved review: canary-tests the change against `fleet`,
    /// lands it through the landing strip, replicates to backup regions,
    /// and distributes updates to subscribers.
    pub fn ship(
        &mut self,
        id: u64,
        fleet: Option<&mut dyn FleetModel>,
    ) -> Result<ShipOutcome, ShipError> {
        let diff = self.phab.take_for_landing(id).map_err(ShipError::Review)?;

        // Canary before commit: "If the new config passes all testing
        // phases, the canary service asks the remote Landing Strip to
        // commit the change into the master git repository" (§3.3).
        let canary_outcome = if let Some(fleet) = fleet {
            let compiled = self.regions[self.master]
                .check_changes(&diff.changes)
                .map_err(|e| ShipError::Land(LandError::Service(e)))?;
            let mut last = None;
            for cfg in &compiled {
                let name = crate::service::config_name(&format!(
                    "{}{}",
                    crate::service::SOURCE_PREFIX,
                    cfg.path
                ))
                .unwrap_or_else(|| cfg.path.clone());
                let spec = self
                    .canary_specs
                    .get(&name)
                    .or(self.default_spec.as_ref())
                    .cloned();
                if let Some(spec) = spec {
                    let outcome = self.canary.run(&spec, &cfg.json, fleet);
                    if !outcome.passed {
                        return Err(ShipError::Canary(Box::new(outcome)));
                    }
                    last = Some(outcome);
                }
            }
            last
        } else {
            None
        };

        self.landing.submit(diff);
        let result = self
            .landing
            .process_one(&mut self.regions[self.master])
            .expect("just submitted");
        let report = match result {
            Ok(r) => r,
            Err((_, e)) => return Err(ShipError::Land(e)),
        };
        self.phab.mark_landed(id).expect("review exists");
        // Feed the risk model with what actually landed.
        let landed = self.phab.review(id).expect("review exists");
        let ts = self.clock_estimate();
        for (path, content) in landed.diff.changes.clone() {
            if path.ends_with(".cconf") {
                let lines = content.map(|c| c.lines().count() as u32).unwrap_or(0);
                let author = landed.diff.author.clone();
                self.risk.record(&path, ts, lines, &author);
            }
        }
        self.replicate_last_commit();
        let distributed = self.pump();
        Ok(ShipOutcome {
            report,
            canary: canary_outcome,
            distributed,
        })
    }

    /// Replicates the master's current state to every healthy backup
    /// region ("each backup region ... receives updates from the master
    /// region", §3.7).
    fn replicate_last_commit(&mut self) {
        let master_state = self.regions[self.master].clone();
        for i in 0..self.regions.len() {
            if i != self.master && self.region_ok[i] {
                self.regions[i] = master_state.clone();
            }
        }
    }

    /// Drains the tailer and notifies subscribers. Returns the distributed
    /// config names. Call after direct `master_mut()` writes.
    pub fn pump(&mut self) -> Vec<String> {
        let updates = self.tailer.drain(&self.regions[self.master]);
        let mut names = Vec::new();
        for u in &updates {
            names.push(u.name.clone());
            if let Some(subs) = self.subscribers.get_mut(&u.name) {
                for s in subs {
                    s(u);
                }
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canary::SyntheticFleet;
    use crate::metrics::health;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn ch(pairs: &[(&str, &str)]) -> BTreeMap<String, Option<String>> {
        pairs
            .iter()
            .map(|(p, s)| (p.to_string(), Some(s.to_string())))
            .collect()
    }

    #[test]
    fn end_to_end_review_canary_land_distribute() {
        let mut stack = Stack::new(3);
        stack.set_default_canary(CanarySpec::standard(1000));
        let seen: Rc<RefCell<Vec<String>>> = Rc::default();
        let seen2 = seen.clone();
        stack.subscribe("gate", move |u| {
            seen2
                .borrow_mut()
                .push(String::from_utf8_lossy(&u.data).to_string());
        });

        let id = stack.propose(
            "alice",
            "launch",
            ch(&[("gate.cconf", "export_if_last({\"pct\": 10})")]),
        );
        stack.approve(id, "bob").unwrap();
        let mut fleet = SyntheticFleet::new(4000, 1);
        let out = stack.ship(id, Some(&mut fleet)).unwrap();
        assert_eq!(out.distributed, vec!["gate"]);
        assert!(out.canary.unwrap().passed);
        assert_eq!(seen.borrow().len(), 1);
        assert!(seen.borrow()[0].contains("10"));
        // Replicated to backups.
        for r in 1..3 {
            assert_eq!(
                stack.region(r).artifact("gate").unwrap().json,
                stack.master().artifact("gate").unwrap().json
            );
        }
    }

    #[test]
    fn canary_failure_blocks_the_commit() {
        let mut stack = Stack::new(1);
        stack.set_default_canary(CanarySpec::standard(1000));
        let id = stack.propose(
            "alice",
            "bad",
            ch(&[("gate.cconf", "export_if_last({\"mode\": \"bad\"})")]),
        );
        stack.approve(id, "bob").unwrap();
        let mut fleet = SyntheticFleet::new(4000, 2);
        fleet.add_effect(|cfg, metric, _| {
            if metric == health::ERROR_RATE && cfg.contains("bad") {
                0.5
            } else {
                0.0
            }
        });
        let err = stack.ship(id, Some(&mut fleet)).unwrap_err();
        assert!(matches!(err, ShipError::Canary(_)));
        assert!(stack.master().artifact("gate").is_none(), "never landed");
    }

    #[test]
    fn unapproved_ship_is_refused() {
        let mut stack = Stack::new(1);
        let id = stack.propose("alice", "x", ch(&[("a.cconf", "export_if_last(1)")]));
        assert!(matches!(
            stack.ship(id, None),
            Err(ShipError::Review(ReviewError::ApprovalRequired))
        ));
    }

    #[test]
    fn master_failover_promotes_replica_and_continues() {
        let mut stack = Stack::new(3);
        let id = stack.propose("alice", "one", ch(&[("a.cconf", "export_if_last(1)")]));
        stack.approve(id, "r").unwrap();
        stack.ship(id, None).unwrap();

        stack.fail_region(0);
        assert_eq!(stack.master_region(), 1);
        assert!(
            stack.master().artifact("a").is_some(),
            "replica has the data"
        );

        // Commits continue through the new master.
        let id = stack.propose("alice", "two", ch(&[("b.cconf", "export_if_last(2)")]));
        stack.approve(id, "r").unwrap();
        let out = stack.ship(id, None).unwrap();
        assert_eq!(out.distributed, vec!["b"]);

        // The failed region recovers and catches up.
        stack.recover_region(0);
        assert!(stack.region(0).artifact("b").is_some());
    }

    #[test]
    fn mutator_writes_distribute_via_pump() {
        let mut stack = Stack::new(1);
        let count = Rc::new(RefCell::new(0));
        let c2 = count.clone();
        stack.subscribe("traffic.json", move |_| *c2.borrow_mut() += 1);
        let m = crate::mutator::Mutator::new("shifter");
        m.update_raw(stack.master_mut(), "traffic.json", "shift", |_| {
            "{\"w\":1}".into()
        })
        .unwrap();
        let distributed = stack.pump();
        assert_eq!(distributed, vec!["traffic.json"]);
        assert_eq!(*count.borrow(), 1);
    }
}
