//! Fleet-integrated safe rollout: the phase-gated state machine behind the
//! canary pipeline, plus the durable revert path.
//!
//! [`crate::canary`] models the *verdict logic* of §3.3 against a
//! synthetic fleet sampled in-process. This module is the piece that lets
//! the same verdict logic gate a *real* (simulated) fleet: health samples
//! trickle in from canary and control cohorts as the distribution tier
//! actually delivers the staged artifact, so evaluation has to be
//! incremental — a phase cannot decide anything until both cohorts have
//! produced enough samples, and a crashed cohort simply keeps the phase in
//! [`PhaseVerdict::Wait`] rather than promoting or wedging a bad verdict.
//!
//! The rollback half is durable: "If the canary test fails, the canary
//! service rolls back the config change by updating the git repository"
//! (§3.3). [`land_revert`] walks the gitstore history to the last distinct
//! content of the config and lands the revert through the [`Mutator`], so
//! both the bad commit and its revert are permanent gitstore history —
//! the verdict is auditable, not just an in-memory abort.

use crate::metrics::health;
use std::collections::BTreeMap;

use crate::canary::HealthPredicate;
use crate::mutator::Mutator;
use crate::service::{CommitReport, ConfigeratorService, ServiceError, RAW_PREFIX, SOURCE_PREFIX};

/// One phase of a fleet rollout: a named blast radius plus the predicates
/// and sample floor that gate promotion past it.
#[derive(Debug, Clone)]
pub struct RolloutPhase {
    /// Phase name (e.g. `canary-4`, `cluster-0`, `fleet`).
    pub name: String,
    /// Samples required per metric, in *both* cohorts, before the phase
    /// may decide anything. Below this the verdict is
    /// [`PhaseVerdict::Wait`] — never an implicit pass.
    pub min_samples: u64,
    /// Pass/fail predicates over canary-vs-control means.
    pub predicates: Vec<HealthPredicate>,
}

/// A rollout spec: phases in blast-radius order.
#[derive(Debug, Clone)]
pub struct RolloutSpec {
    /// Phases run in order; a failure anywhere rolls the config back.
    pub phases: Vec<RolloutPhase>,
}

impl RolloutSpec {
    /// The paper's shape adapted to the simulated fleet: a handful of
    /// canary servers, then one cluster, each guarded by error-rate and
    /// latency ceilings relative to the control cohort.
    pub fn standard() -> RolloutSpec {
        let predicates = vec![
            HealthPredicate::MaxRelativeIncrease {
                metric: health::ERROR_RATE.into(),
                limit: 0.25,
            },
            HealthPredicate::MaxRelativeIncrease {
                metric: health::LATENCY_MS.into(),
                limit: 0.25,
            },
        ];
        RolloutSpec {
            phases: vec![
                RolloutPhase {
                    name: "canary".into(),
                    min_samples: 8,
                    predicates: predicates.clone(),
                },
                RolloutPhase {
                    name: "cluster".into(),
                    min_samples: 8,
                    predicates,
                },
            ],
        }
    }
}

/// Incrementally accumulated health samples for one cohort in one phase.
#[derive(Debug, Clone, Default)]
pub struct CohortHealth {
    /// `metric → (sum, count)`.
    metrics: BTreeMap<String, (f64, u64)>,
}

impl CohortHealth {
    /// Records one sample.
    pub fn record(&mut self, metric: &str, value: f64) {
        let e = self.metrics.entry(metric.to_string()).or_insert((0.0, 0));
        e.0 += value;
        e.1 += 1;
    }

    /// Samples seen for `metric`.
    pub fn count(&self, metric: &str) -> u64 {
        self.metrics.get(metric).map(|e| e.1).unwrap_or(0)
    }

    /// Mean of `metric`, if any samples exist.
    pub fn mean(&self, metric: &str) -> Option<f64> {
        self.metrics
            .get(metric)
            .filter(|e| e.1 > 0)
            .map(|e| e.0 / e.1 as f64)
    }
}

/// What a phase evaluation decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseVerdict {
    /// Every predicate held at the sample floor: widen the blast radius.
    Promote,
    /// A fully-sampled predicate failed: revert, now.
    Rollback,
    /// Not enough evidence yet (cohort still converging, crashed, or
    /// partitioned). Keep sampling; never promote on silence.
    Wait,
}

/// Per-predicate detail of one evaluation:
/// `(metric, canary mean, control mean, held)`.
pub type VerdictDetails = Vec<(String, f64, f64, bool)>;

/// Evaluates one phase against the accumulated cohort health.
///
/// Decision order is fail-fast, promote-conservative: a predicate that
/// *has* its sample floor in both cohorts and fails forces
/// [`PhaseVerdict::Rollback`] immediately (no point waiting out the rest);
/// otherwise any under-sampled predicate keeps the phase at
/// [`PhaseVerdict::Wait`]; only full evidence with every predicate holding
/// promotes.
pub fn evaluate_phase(
    phase: &RolloutPhase,
    canary: &CohortHealth,
    control: &CohortHealth,
) -> (PhaseVerdict, VerdictDetails) {
    let mut details = Vec::new();
    let mut waiting = false;
    let mut failed = false;
    for pred in &phase.predicates {
        let m = pred.metric();
        let sampled = canary.count(m) >= phase.min_samples && control.count(m) >= phase.min_samples;
        if !sampled {
            waiting = true;
            continue;
        }
        let c = canary.mean(m).unwrap_or(0.0);
        let x = control.mean(m).unwrap_or(0.0);
        let held = pred.holds(c, x);
        failed |= !held;
        details.push((m.to_string(), c, x, held));
    }
    let verdict = if failed {
        PhaseVerdict::Rollback
    } else if waiting {
        PhaseVerdict::Wait
    } else {
        PhaseVerdict::Promote
    };
    (verdict, details)
}

/// Result of one completed (promoted or failed) phase.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase name.
    pub name: String,
    /// The deciding verdict (never [`PhaseVerdict::Wait`]).
    pub verdict: PhaseVerdict,
    /// Per-predicate detail at decision time.
    pub details: VerdictDetails,
}

/// Terminal state of a rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutVerdict {
    /// Every phase promoted; the config reached the fleet.
    Promoted,
    /// A phase failed; the config was reverted.
    RolledBack,
}

/// One in-flight rollout: the staged config, the phase cursor, and the
/// health accumulators the driver feeds.
#[derive(Debug)]
pub struct Rollout {
    /// The config name being rolled out.
    pub name: String,
    spec: RolloutSpec,
    phase_idx: usize,
    canary: CohortHealth,
    control: CohortHealth,
    /// Completed-phase history.
    pub outcomes: Vec<PhaseOutcome>,
    /// Terminal verdict once decided.
    pub done: Option<RolloutVerdict>,
}

impl Rollout {
    /// Starts a rollout of `name` under `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no phases.
    pub fn new(name: &str, spec: RolloutSpec) -> Rollout {
        assert!(!spec.phases.is_empty(), "rollout needs at least one phase");
        Rollout {
            name: name.to_string(),
            spec,
            phase_idx: 0,
            canary: CohortHealth::default(),
            control: CohortHealth::default(),
            outcomes: Vec::new(),
            done: None,
        }
    }

    /// The phase currently gating the blast radius.
    pub fn phase(&self) -> &RolloutPhase {
        &self.spec.phases[self.phase_idx]
    }

    /// Zero-based index of the current phase.
    pub fn phase_index(&self) -> usize {
        self.phase_idx
    }

    /// Records a health sample from the cohort running the staged config.
    pub fn record_canary(&mut self, metric: &str, value: f64) {
        self.canary.record(metric, value);
    }

    /// Records a health sample from the control cohort (old config).
    pub fn record_control(&mut self, metric: &str, value: f64) {
        self.control.record(metric, value);
    }

    /// Evaluates the current phase and advances the state machine.
    ///
    /// On [`PhaseVerdict::Promote`] the phase cursor moves on (health
    /// accumulators reset — each blast radius earns its own evidence);
    /// promoting past the last phase sets [`RolloutVerdict::Promoted`].
    /// On [`PhaseVerdict::Rollback`] the rollout terminates as
    /// [`RolloutVerdict::RolledBack`]. Returns the verdict of this tick.
    pub fn tick(&mut self) -> PhaseVerdict {
        if self.done.is_some() {
            return PhaseVerdict::Wait;
        }
        let (verdict, details) = evaluate_phase(self.phase(), &self.canary, &self.control);
        match verdict {
            PhaseVerdict::Wait => {}
            decided => {
                self.outcomes.push(PhaseOutcome {
                    name: self.phase().name.clone(),
                    verdict: decided,
                    details,
                });
                if decided == PhaseVerdict::Rollback {
                    self.done = Some(RolloutVerdict::RolledBack);
                } else if self.phase_idx + 1 == self.spec.phases.len() {
                    self.done = Some(RolloutVerdict::Promoted);
                } else {
                    self.phase_idx += 1;
                    self.canary = CohortHealth::default();
                    self.control = CohortHealth::default();
                }
            }
        }
        verdict
    }
}

/// The first content of `full_path` distinct from its head value, walking
/// the first-parent history newest-first.
fn previous_content(svc: &ConfigeratorService, full_path: &str) -> Option<String> {
    let repo = svc.repo().repo(svc.repo().route(full_path));
    let head = repo.head()?;
    let current = repo.read(head, full_path).ok()?;
    for id in repo.log(head).ok()? {
        if let Ok(bytes) = repo.read(id, full_path) {
            if bytes != current {
                return Some(String::from_utf8_lossy(&bytes).into_owned());
            }
        }
    }
    None
}

/// The content `raw/<name>` held before its current head value: the first
/// distinct content reachable down the first-parent history. `None` when
/// the config has never had a different value (nothing to revert to).
pub fn previous_raw_content(svc: &ConfigeratorService, name: &str) -> Option<String> {
    previous_content(svc, &format!("{RAW_PREFIX}{name}"))
}

/// [`previous_raw_content`] for source files: the content
/// `source/<path>` held before its current head value.
pub fn previous_source_content(svc: &ConfigeratorService, path: &str) -> Option<String> {
    previous_content(svc, &format!("{SOURCE_PREFIX}{path}"))
}

/// Lands a revert of raw config `name` to its previous content, as a
/// mutator commit — the durable half of auto-rollback. The revert is a
/// regular commit (new history, not history rewriting), so gitstore
/// permanently records both the bad change and the canary's verdict on it.
pub fn land_revert(
    svc: &mut ConfigeratorService,
    mutator: &Mutator,
    name: &str,
    reason: &str,
) -> Result<CommitReport, ServiceError> {
    // A config that never had a different value has nothing to revert to;
    // surface that as an empty-change rejection rather than silently
    // re-committing the bad bytes.
    let previous = previous_raw_content(svc, name).ok_or(ServiceError::Empty)?;
    mutator.update_raw(svc, name, &format!("Revert {name}: {reason}"), move |_| {
        previous
    })
}

/// [`land_revert`] for a source-file config: lands the previous source
/// content as a mutator commit, which recompiles the artifact back to its
/// pre-rollout state.
pub fn land_source_revert(
    svc: &mut ConfigeratorService,
    mutator: &Mutator,
    path: &str,
    reason: &str,
) -> Result<CommitReport, ServiceError> {
    let previous = previous_source_content(svc, path).ok_or(ServiceError::Empty)?;
    mutator.set_source(svc, path, &format!("Revert {path}: {reason}"), &previous)
}

/// Picks a canary cohort of (up to) `n` nodes spread across as many
/// clusters and regions as the candidate set allows, instead of "first N
/// of cluster 0": one node per cluster, visiting regions round-robin
/// (region 0's first cluster, region 1's first cluster, …, region 0's
/// second cluster, …), then a second node per cluster, and so on.
/// Deterministic in the candidate order; returns all candidates if
/// `n >= candidates.len()`.
pub fn placement_diverse_cohort(
    topo: &simnet::Topology,
    candidates: &[simnet::NodeId],
    n: usize,
) -> Vec<simnet::NodeId> {
    use std::collections::VecDeque;
    // Group candidates by (region, cluster), preserving candidate order
    // within each cluster. BTreeMap keys give regions ascending and
    // clusters ascending within a region.
    let mut grouped: BTreeMap<(u16, u32), VecDeque<simnet::NodeId>> = BTreeMap::new();
    for &node in candidates {
        let p = topo.placement(node);
        grouped
            .entry((p.region.0, p.cluster.0))
            .or_default()
            .push_back(node);
    }
    // Interleave cluster queues across regions: every region's first
    // cluster before any region's second.
    let mut per_region: BTreeMap<u16, Vec<VecDeque<simnet::NodeId>>> = BTreeMap::new();
    for ((region, _), queue) in grouped {
        per_region.entry(region).or_default().push(queue);
    }
    let mut region_lists: Vec<Vec<VecDeque<simnet::NodeId>>> = per_region.into_values().collect();
    let max_clusters = region_lists.iter().map(Vec::len).max().unwrap_or(0);
    let mut queues: Vec<VecDeque<simnet::NodeId>> = Vec::new();
    for ci in 0..max_clusters {
        for region in &mut region_lists {
            if ci < region.len() {
                queues.push(std::mem::take(&mut region[ci]));
            }
        }
    }
    // One node per cluster per pass until the cohort is full.
    let mut cohort = Vec::with_capacity(n.min(candidates.len()));
    while cohort.len() < n {
        let mut progressed = false;
        for queue in &mut queues {
            if cohort.len() >= n {
                break;
            }
            if let Some(node) = queue.pop_front() {
                cohort.push(node);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    cohort
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(min_samples: u64) -> RolloutSpec {
        let mut s = RolloutSpec::standard();
        for p in &mut s.phases {
            p.min_samples = min_samples;
        }
        s
    }

    fn feed(r: &mut Rollout, n: u64, canary_err: f64) {
        for _ in 0..n {
            r.record_canary(health::ERROR_RATE, canary_err);
            r.record_canary(health::LATENCY_MS, 100.0);
            r.record_control(health::ERROR_RATE, 0.01);
            r.record_control(health::LATENCY_MS, 100.0);
        }
    }

    #[test]
    fn waits_below_the_sample_floor_then_promotes() {
        let mut r = Rollout::new("traffic.json", spec(4));
        assert_eq!(r.tick(), PhaseVerdict::Wait, "no samples: wait");
        feed(&mut r, 3, 0.01);
        assert_eq!(r.tick(), PhaseVerdict::Wait, "under the floor: wait");
        feed(&mut r, 1, 0.01);
        assert_eq!(r.tick(), PhaseVerdict::Promote);
        assert_eq!(r.phase().name, "cluster");
        // Each phase earns its own evidence: the cluster phase starts empty.
        assert_eq!(r.tick(), PhaseVerdict::Wait);
        feed(&mut r, 4, 0.01);
        assert_eq!(r.tick(), PhaseVerdict::Promote);
        assert_eq!(r.done, Some(RolloutVerdict::Promoted));
    }

    #[test]
    fn fully_sampled_failure_rolls_back() {
        let mut r = Rollout::new("traffic.json", spec(4));
        feed(&mut r, 4, 0.10);
        assert_eq!(r.tick(), PhaseVerdict::Rollback);
        assert_eq!(r.done, Some(RolloutVerdict::RolledBack));
        assert_eq!(r.outcomes.len(), 1);
        assert!(!r.outcomes[0].details[0].3, "error_rate predicate failed");
    }

    #[test]
    fn silent_cohort_never_promotes() {
        // A crashed canary cohort produces no samples: the phase must sit
        // in Wait forever, not promote or roll back on no evidence.
        let mut r = Rollout::new("traffic.json", spec(4));
        for _ in 0..100 {
            r.record_control(health::ERROR_RATE, 0.01);
            r.record_control(health::LATENCY_MS, 100.0);
        }
        assert_eq!(r.tick(), PhaseVerdict::Wait);
        assert!(r.done.is_none());
    }

    #[test]
    fn revert_lands_previous_content_as_new_history() {
        let mut svc = ConfigeratorService::new();
        let m = Mutator::new("canary");
        svc.commit_raw("alice", "good", "traffic.json", "{\"w\": 1}")
            .unwrap();
        svc.commit_raw("alice", "bad", "traffic.json", "{\"w\": 9000}")
            .unwrap();
        assert_eq!(
            previous_raw_content(&svc, "traffic.json").as_deref(),
            Some("{\"w\": 1}")
        );
        land_revert(&mut svc, &m, "traffic.json", "canary failed").unwrap();
        assert_eq!(svc.artifact("traffic.json").unwrap().json, "{\"w\": 1}");
        // Both the bad commit and the revert are durable history.
        let path = format!("{RAW_PREFIX}traffic.json");
        let repo = svc.repo().repo(svc.repo().route(&path));
        let log = repo.log(repo.head().unwrap()).unwrap();
        let msgs: Vec<String> = log
            .iter()
            .map(|&id| repo.commit_info(id).unwrap().message.clone())
            .collect();
        assert!(msgs[0].starts_with("Revert traffic.json"));
        assert!(msgs.contains(&"bad".to_string()));
        assert_eq!(
            repo.commit_info(log[0]).unwrap().author,
            "mutator:canary",
            "revert is attributed to the canary mutator"
        );
    }

    #[test]
    fn source_revert_recompiles_previous_artifact() {
        let mut svc = ConfigeratorService::new();
        let m = Mutator::new("canary");
        svc.commit_source(
            "alice",
            "good",
            [(
                "roll/0.cconf".to_string(),
                Some("export_if_last(7)".to_string()),
            )]
            .into(),
        )
        .unwrap();
        svc.commit_source(
            "alice",
            "bad",
            [(
                "roll/0.cconf".to_string(),
                Some("export_if_last(9000)".to_string()),
            )]
            .into(),
        )
        .unwrap();
        assert_eq!(
            previous_source_content(&svc, "roll/0.cconf").as_deref(),
            Some("export_if_last(7)")
        );
        land_source_revert(&mut svc, &m, "roll/0.cconf", "canary failed").unwrap();
        // Compiled artifacts carry a trailing newline.
        assert_eq!(svc.artifact("roll/0").unwrap().json, "7\n");
    }

    #[test]
    fn revert_with_no_prior_content_is_rejected() {
        let mut svc = ConfigeratorService::new();
        let m = Mutator::new("canary");
        svc.commit_raw("alice", "new", "fresh.json", "{\"v\": 1}")
            .unwrap();
        assert!(previous_raw_content(&svc, "fresh.json").is_none());
        assert!(land_revert(&mut svc, &m, "fresh.json", "nope").is_err());
    }

    #[test]
    fn diverse_cohort_spreads_across_regions_and_clusters() {
        // 3 regions x 2 clusters x 4 servers.
        let topo = simnet::Topology::symmetric(3, 2, 4);
        let candidates: Vec<simnet::NodeId> =
            (0..topo.num_nodes() as u32).map(simnet::NodeId).collect();
        let cohort = placement_diverse_cohort(&topo, &candidates, 4);
        assert_eq!(cohort.len(), 4);
        let clusters: std::collections::BTreeSet<u32> = cohort
            .iter()
            .map(|&n| topo.placement(n).cluster.0)
            .collect();
        let regions: std::collections::BTreeSet<u16> =
            cohort.iter().map(|&n| topo.placement(n).region.0).collect();
        assert_eq!(clusters.len(), 4, "one node per cluster: {clusters:?}");
        assert_eq!(regions.len(), 3, "all regions covered: {regions:?}");
    }

    #[test]
    fn diverse_cohort_is_deterministic_and_order_preserving() {
        let topo = simnet::Topology::symmetric(2, 2, 3);
        let candidates: Vec<simnet::NodeId> =
            (0..topo.num_nodes() as u32).map(simnet::NodeId).collect();
        let a = placement_diverse_cohort(&topo, &candidates, 5);
        let b = placement_diverse_cohort(&topo, &candidates, 5);
        assert_eq!(a, b);
        // First pick is the first candidate of the first cluster.
        assert_eq!(a[0], candidates[0]);
    }

    #[test]
    fn diverse_cohort_caps_at_candidate_count() {
        let topo = simnet::Topology::symmetric(2, 1, 2);
        let candidates = [simnet::NodeId(0), simnet::NodeId(3)];
        let cohort = placement_diverse_cohort(&topo, &candidates, 10);
        assert_eq!(cohort.len(), 2);
        // Wider than one-per-cluster: second passes drain the queues.
        let all =
            placement_diverse_cohort(&topo, &(0..4u32).map(simnet::NodeId).collect::<Vec<_>>(), 3);
        assert_eq!(all.len(), 3);
        let clusters: std::collections::BTreeSet<u32> =
            all.iter().map(|&n| topo.placement(n).cluster.0).collect();
        assert_eq!(clusters.len(), 2);
    }
}
