//! The landing strip: serialized commits without stale-clone retries.
//!
//! Section 3.6: multiple engineers pushing concurrently to a shared git
//! repository contend — git rejects a push from a stale clone even when
//! the diffs touch different files, and each retry costs a clone sync. The
//! landing strip fixes this by "1) receiving diffs from committers,
//! 2) serializing them according to the first-come-first-served order, and
//! 3) pushing them to the shared git repository on behalf of the
//! committers, without requiring the committers to bring their local
//! repository clones up to date. If there is a true conflict between a
//! diff being pushed and some previously committed diffs, the shared git
//! repository rejects the diff."
//!
//! A *true conflict* is detected per file: each [`SourceDiff`] records the
//! content hash of every file it touches as observed when the diff was
//! authored; if any of those files changed since, the diff is rejected back
//! to the committer.

use std::collections::{BTreeMap, VecDeque};

use gitstore::sha1::sha1;

use crate::service::{CommitReport, ConfigeratorService, ServiceError, SOURCE_PREFIX};

/// A proposed source change set, as produced by an engineer's working
/// copy or an automation tool.
#[derive(Debug, Clone)]
pub struct SourceDiff {
    /// Author identity.
    pub author: String,
    /// Commit message.
    pub message: String,
    /// Source path → new content (`None` = delete).
    pub changes: BTreeMap<String, Option<String>>,
    /// Content hash of each touched path as observed at authoring time
    /// (`None` = the path did not exist). This is the diff's base view.
    pub expected: BTreeMap<String, Option<[u8; 20]>>,
}

impl SourceDiff {
    /// Builds a diff against the current state of `svc`, recording base
    /// hashes for conflict detection.
    pub fn against(
        svc: &ConfigeratorService,
        author: &str,
        message: &str,
        changes: BTreeMap<String, Option<String>>,
    ) -> SourceDiff {
        let expected = changes
            .keys()
            .map(|p| (p.clone(), current_hash(svc, p)))
            .collect();
        SourceDiff {
            author: author.to_string(),
            message: message.to_string(),
            changes,
            expected,
        }
    }
}

fn current_hash(svc: &ConfigeratorService, path: &str) -> Option<[u8; 20]> {
    svc.repo()
        .read_head(&format!("{SOURCE_PREFIX}{path}"))
        .ok()
        .map(|b| sha1(&b))
}

/// Why the landing strip bounced a diff.
#[derive(Debug, Clone, PartialEq)]
pub enum LandError {
    /// Another committed diff changed one of this diff's files since it
    /// was authored — the only case that requires the committer to sync.
    TrueConflict {
        /// The conflicting path.
        path: String,
    },
    /// Compilation/validation failed.
    Service(ServiceError),
}

impl std::fmt::Display for LandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LandError::TrueConflict { path } => write!(f, "true conflict on {path}"),
            LandError::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LandError {}

/// Cumulative landing-strip counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LandingStats {
    /// Diffs landed.
    pub landed: u64,
    /// Diffs bounced for true conflicts.
    pub conflicts: u64,
    /// Diffs bounced for compile/validation failures.
    pub failed: u64,
}

/// The landing strip service.
#[derive(Debug, Default)]
pub struct LandingStrip {
    queue: VecDeque<SourceDiff>,
    stats: LandingStats,
}

impl LandingStrip {
    /// Creates an empty landing strip.
    pub fn new() -> LandingStrip {
        LandingStrip::default()
    }

    /// Enqueues a diff (first-come-first-served).
    pub fn submit(&mut self, diff: SourceDiff) {
        self.queue.push_back(diff);
    }

    /// Number of queued diffs.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Counters.
    pub fn stats(&self) -> LandingStats {
        self.stats
    }

    /// Lands one queued diff against `svc`. Returns `None` when the queue
    /// is empty; otherwise the per-diff outcome.
    pub fn process_one(
        &mut self,
        svc: &mut ConfigeratorService,
    ) -> Option<Result<CommitReport, (SourceDiff, LandError)>> {
        let diff = self.queue.pop_front()?;
        Some(self.land(svc, diff))
    }

    /// Drains the whole queue, returning each outcome in order.
    pub fn process_all(
        &mut self,
        svc: &mut ConfigeratorService,
    ) -> Vec<Result<CommitReport, (SourceDiff, LandError)>> {
        let mut out = Vec::new();
        while let Some(r) = self.process_one(svc) {
            out.push(r);
        }
        out
    }

    /// Lands a diff immediately (used by the Mutator for automation
    /// commits, which bypass the queue). The bounced diff is boxed so the
    /// error path stays cheap on the hot landing loop.
    #[allow(clippy::result_large_err)]
    pub fn land(
        &mut self,
        svc: &mut ConfigeratorService,
        diff: SourceDiff,
    ) -> Result<CommitReport, (SourceDiff, LandError)> {
        // True-conflict check: has any touched file changed since the diff
        // was authored?
        for (path, expected) in &diff.expected {
            let now = current_hash(svc, path);
            if now != *expected {
                self.stats.conflicts += 1;
                let path = path.clone();
                return Err((diff, LandError::TrueConflict { path }));
            }
        }
        match svc.commit_source(&diff.author, &diff.message, diff.changes.clone()) {
            Ok(report) => {
                self.stats.landed += 1;
                Ok(report)
            }
            Err(e) => {
                self.stats.failed += 1;
                Err((diff, LandError::Service(e)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(pairs: &[(&str, &str)]) -> BTreeMap<String, Option<String>> {
        pairs
            .iter()
            .map(|(p, s)| (p.to_string(), Some(s.to_string())))
            .collect()
    }

    #[test]
    fn disjoint_concurrent_diffs_both_land_without_sync() {
        let mut svc = ConfigeratorService::new();
        let mut strip = LandingStrip::new();
        // Both authored against the same (empty) base — with raw git, the
        // second would be rejected as stale.
        let a = SourceDiff::against(&svc, "alice", "a", ch(&[("a.cconf", "export_if_last(1)")]));
        let b = SourceDiff::against(&svc, "bob", "b", ch(&[("b.cconf", "export_if_last(2)")]));
        strip.submit(a);
        strip.submit(b);
        let results = strip.process_all(&mut svc);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(strip.stats().landed, 2);
        assert_eq!(strip.stats().conflicts, 0);
    }

    #[test]
    fn true_conflict_is_rejected_back() {
        let mut svc = ConfigeratorService::new();
        let mut strip = LandingStrip::new();
        svc.commit_source("seed", "s", ch(&[("x.cconf", "export_if_last(1)")]))
            .unwrap();
        // Both edit the same file from the same base.
        let a = SourceDiff::against(&svc, "alice", "a", ch(&[("x.cconf", "export_if_last(2)")]));
        let b = SourceDiff::against(&svc, "bob", "b", ch(&[("x.cconf", "export_if_last(3)")]));
        strip.submit(a);
        strip.submit(b);
        let results = strip.process_all(&mut svc);
        assert!(results[0].is_ok());
        let (bounced, err) = results[1].as_ref().unwrap_err();
        assert_eq!(
            err,
            &LandError::TrueConflict {
                path: "x.cconf".into()
            }
        );
        assert_eq!(bounced.author, "bob");
        // Bob syncs (re-authors against the new base) and retries.
        let b2 = SourceDiff::against(&svc, "bob", "b", ch(&[("x.cconf", "export_if_last(3)")]));
        strip.submit(b2);
        assert!(strip.process_one(&mut svc).unwrap().is_ok());
        assert!(svc.artifact("x").unwrap().json.contains('3'));
    }

    #[test]
    fn compile_failure_bounces_without_landing() {
        let mut svc = ConfigeratorService::new();
        let mut strip = LandingStrip::new();
        let bad = SourceDiff::against(&svc, "eve", "bad", ch(&[("x.cconf", "export_if_last(")]));
        strip.submit(bad);
        let results = strip.process_all(&mut svc);
        assert!(matches!(results[0], Err((_, LandError::Service(_)))));
        assert_eq!(strip.stats().failed, 1);
        assert!(svc.artifact("x").is_none());
    }

    #[test]
    fn delete_conflicts_are_detected_too() {
        let mut svc = ConfigeratorService::new();
        let mut strip = LandingStrip::new();
        svc.commit_source("seed", "s", ch(&[("x.cconf", "export_if_last(1)")]))
            .unwrap();
        let mut del = BTreeMap::new();
        del.insert("x.cconf".to_string(), None);
        let d = SourceDiff::against(&svc, "alice", "rm", del);
        // Meanwhile bob updates the file.
        svc.commit_source("bob", "u", ch(&[("x.cconf", "export_if_last(2)")]))
            .unwrap();
        strip.submit(d);
        let results = strip.process_all(&mut svc);
        assert!(matches!(
            results[0],
            Err((_, LandError::TrueConflict { .. }))
        ));
        assert!(svc.artifact("x").is_some(), "delete must not land");
    }
}
