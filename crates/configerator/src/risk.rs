//! Risk flagging for config updates — the paper's stated future work.
//!
//! §8: "Our major future work includes ... flagging high-risk config
//! updates based on historical data", and §6.2 motivates it: "It would be
//! helpful to automatically flag high-risk updates on these highly-shared
//! configs" and "a dormant config is suddenly changed in an unusual way".
//!
//! [`RiskModel`] keeps a per-config update history (timestamps, change
//! sizes, authors) and scores an incoming diff on four signals:
//!
//! * **dormancy** — the config has not changed for a long time relative to
//!   its own historical cadence;
//! * **unusual size** — the diff is far larger than the config's typical
//!   change;
//! * **stranger** — the author has never touched this config;
//! * **blast radius** — many other configs depend on the touched files
//!   (from the dependency service), or the config is highly co-authored.
//!
//! Scores are advisory: the stack surfaces them at review time (the paper
//! empowers engineers rather than gating on committees, §6.6).

use std::collections::{HashMap, HashSet};

/// Per-config update history.
#[derive(Debug, Clone, Default)]
struct ConfigHistory {
    /// Update timestamps (seconds), ascending.
    updates: Vec<u64>,
    /// Line-change sizes of past updates.
    sizes: Vec<u32>,
    /// Distinct past authors.
    authors: HashSet<String>,
}

/// One flagged signal with its contribution to the score.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskSignal {
    /// Short signal name (`dormancy`, `unusual-size`, `stranger`,
    /// `blast-radius`).
    pub name: &'static str,
    /// Human-readable explanation.
    pub detail: String,
    /// Contribution in [0, 1].
    pub weight: f64,
}

/// The risk assessment of one proposed update.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskAssessment {
    /// Total score in [0, 1] (1 = maximally unusual).
    pub score: f64,
    /// The contributing signals, highest first.
    pub signals: Vec<RiskSignal>,
}

impl RiskAssessment {
    /// Whether the update should be flagged for extra scrutiny.
    pub fn is_high_risk(&self) -> bool {
        self.score >= 0.5
    }
}

/// The history-driven risk model.
#[derive(Debug, Clone, Default)]
pub struct RiskModel {
    histories: HashMap<String, ConfigHistory>,
}

impl RiskModel {
    /// Creates an empty model.
    pub fn new() -> RiskModel {
        RiskModel::default()
    }

    /// Records a landed update so future assessments learn from it.
    pub fn record(&mut self, config: &str, timestamp: u64, line_changes: u32, author: &str) {
        let h = self.histories.entry(config.to_string()).or_default();
        h.updates.push(timestamp);
        h.sizes.push(line_changes);
        h.authors.insert(author.to_string());
    }

    /// Number of recorded updates for `config`.
    pub fn update_count(&self, config: &str) -> usize {
        self.histories
            .get(config)
            .map(|h| h.updates.len())
            .unwrap_or(0)
    }

    /// Scores a proposed update. `dependents` is the number of configs
    /// that would recompile because of this change (from the dependency
    /// service).
    pub fn assess(
        &self,
        config: &str,
        now: u64,
        line_changes: u32,
        author: &str,
        dependents: usize,
    ) -> RiskAssessment {
        let mut signals = Vec::new();
        if let Some(h) = self.histories.get(config) {
            // Dormancy: compare the idle gap to the config's own median
            // inter-update interval.
            if h.updates.len() >= 3 {
                let mut gaps: Vec<u64> = h.updates.windows(2).map(|w| w[1] - w[0]).collect();
                gaps.sort_unstable();
                let median_gap = gaps[gaps.len() / 2].max(1);
                let idle = now.saturating_sub(*h.updates.last().expect("nonempty"));
                let ratio = idle as f64 / median_gap as f64;
                if ratio > 10.0 {
                    signals.push(RiskSignal {
                        name: "dormancy",
                        detail: format!(
                            "idle {idle}s vs median cadence {median_gap}s (×{ratio:.0})"
                        ),
                        weight: 0.35f64.min(0.05 * ratio.log2()),
                    });
                }
            }
            // Unusual size: diff much larger than the historical P90.
            if h.sizes.len() >= 3 {
                let mut sizes = h.sizes.clone();
                sizes.sort_unstable();
                let p90 = sizes[(sizes.len() - 1) * 9 / 10].max(1);
                if line_changes > p90 * 5 {
                    signals.push(RiskSignal {
                        name: "unusual-size",
                        detail: format!("{line_changes} lines vs historical P90 {p90}"),
                        weight: 0.3,
                    });
                }
            }
            // Stranger: an author with no history on this config, on a
            // config that already has several authors (highly shared).
            if !h.authors.contains(author) && h.authors.len() >= 3 {
                signals.push(RiskSignal {
                    name: "stranger",
                    detail: format!(
                        "{author} has never updated this config ({} prior authors)",
                        h.authors.len()
                    ),
                    weight: 0.2,
                });
            }
        }
        // Blast radius: independent of history.
        if dependents >= 5 {
            signals.push(RiskSignal {
                name: "blast-radius",
                detail: format!("{dependents} configs recompile on this change"),
                weight: (0.1 * (dependents as f64).log2() / 3.0).min(0.3),
            });
        }
        signals.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("no NaN weights"));
        let score = signals.iter().map(|s| s.weight).sum::<f64>().min(1.0);
        RiskAssessment { score, signals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400;

    fn active_config(model: &mut RiskModel, name: &str, updates: usize) {
        for i in 0..updates {
            model.record(name, i as u64 * DAY, 2, &format!("author{}", i % 4));
        }
    }

    #[test]
    fn routine_update_scores_low() {
        let mut m = RiskModel::new();
        active_config(&mut m, "cfg", 20);
        let a = m.assess("cfg", 20 * DAY, 2, "author1", 1);
        assert!(!a.is_high_risk(), "score {}: {:?}", a.score, a.signals);
    }

    #[test]
    fn dormant_config_suddenly_changed_is_flagged() {
        // The paper's §8 example verbatim: a dormant config changed in an
        // unusual way.
        let mut m = RiskModel::new();
        active_config(&mut m, "cfg", 10);
        // Two years of silence, then a stranger lands a 500-line change.
        let a = m.assess("cfg", 10 * DAY + 700 * DAY, 500, "newcomer", 12);
        assert!(a.is_high_risk(), "score {}", a.score);
        let names: Vec<&str> = a.signals.iter().map(|s| s.name).collect();
        assert!(names.contains(&"dormancy"));
        assert!(names.contains(&"unusual-size"));
        assert!(names.contains(&"stranger"));
        assert!(names.contains(&"blast-radius"));
    }

    #[test]
    fn unknown_config_only_scores_blast_radius() {
        let m = RiskModel::new();
        let a = m.assess("new_cfg", 100, 3, "alice", 0);
        assert_eq!(a.score, 0.0);
        let a = m.assess("new_cfg", 100, 3, "alice", 40);
        assert!(a.signals.iter().any(|s| s.name == "blast-radius"));
        assert!(!a.is_high_risk(), "blast radius alone is advisory");
    }

    #[test]
    fn known_author_is_not_a_stranger() {
        let mut m = RiskModel::new();
        active_config(&mut m, "cfg", 10);
        let a = m.assess("cfg", 11 * DAY, 2, "author2", 0);
        assert!(a.signals.iter().all(|s| s.name != "stranger"));
    }

    #[test]
    fn signals_are_sorted_by_weight() {
        let mut m = RiskModel::new();
        active_config(&mut m, "cfg", 10);
        let a = m.assess("cfg", 2000 * DAY, 1000, "x", 100);
        assert!(a.signals.windows(2).all(|w| w[0].weight >= w[1].weight));
    }

    #[test]
    fn record_accumulates() {
        let mut m = RiskModel::new();
        m.record("c", 1, 2, "a");
        m.record("c", 2, 2, "b");
        assert_eq!(m.update_count("c"), 2);
        assert_eq!(m.update_count("ghost"), 0);
    }
}
