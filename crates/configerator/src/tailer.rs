//! The git tailer: repository commits → distribution writes.
//!
//! "The Git Tailer continuously extracts config changes from the git
//! repository, and writes them to Zeus for distribution" (§3.4). The
//! tailer tracks the last commit it has seen per repository partition and,
//! on each drain, diffs forward to the current head, emitting one update
//! per changed distributable config (compiled artifacts and raw configs).

use bytes::Bytes;
use gitstore::multirepo::RepoId;
use gitstore::object::ObjectId;

use crate::service::{config_name, ConfigeratorService, COMPILED_PREFIX, RAW_PREFIX};

/// One distributable config update extracted from the repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigUpdate {
    /// Distribution path (config name).
    pub name: String,
    /// New content; empty when `deleted`.
    pub data: Bytes,
    /// Whether the config was removed.
    pub deleted: bool,
}

/// The tailer's per-partition cursor.
#[derive(Debug, Default)]
pub struct GitTailer {
    last: Vec<Option<ObjectId>>,
}

impl GitTailer {
    /// Creates a tailer that has seen nothing (first drain emits the full
    /// current state).
    pub fn new() -> GitTailer {
        GitTailer::default()
    }

    /// Extracts updates committed since the previous drain, in partition
    /// order. Within a partition, per-path changes are coalesced to the
    /// latest state at head.
    pub fn drain(&mut self, svc: &ConfigeratorService) -> Vec<ConfigUpdate> {
        let heads = svc.repo().heads();
        if self.last.len() < heads.len() {
            self.last.resize(heads.len(), None);
        }
        let mut out = Vec::new();
        for (i, head) in heads.iter().enumerate() {
            let Some(head) = head else { continue };
            if self.last[i] == Some(*head) {
                continue;
            }
            let repo = svc.repo().repo(RepoId(i));
            let changed: Vec<(String, bool)> = match self.last[i] {
                Some(prev) => repo
                    .diff_commits(prev, *head)
                    .unwrap_or_default()
                    .into_iter()
                    .map(|c| (c.path, c.new.is_none()))
                    .collect(),
                None => repo
                    .snapshot(*head)
                    .unwrap_or_default()
                    .into_keys()
                    .map(|p| (p, false))
                    .collect(),
            };
            for (path, deleted) in changed {
                if !(path.starts_with(COMPILED_PREFIX) || path.starts_with(RAW_PREFIX)) {
                    continue;
                }
                let name = if let Some(stripped) = path.strip_prefix(COMPILED_PREFIX) {
                    match stripped.strip_suffix(".json") {
                        Some(n) => n.to_string(),
                        None => stripped.to_string(),
                    }
                } else {
                    config_name(&path).unwrap_or_else(|| path.clone())
                };
                let data = if deleted {
                    Bytes::new()
                } else {
                    repo.read(*head, &path).unwrap_or_default()
                };
                out.push(ConfigUpdate {
                    name,
                    data,
                    deleted,
                });
            }
            self.last[i] = Some(*head);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ch(pairs: &[(&str, &str)]) -> BTreeMap<String, Option<String>> {
        pairs
            .iter()
            .map(|(p, s)| (p.to_string(), Some(s.to_string())))
            .collect()
    }

    #[test]
    fn first_drain_emits_current_state_then_deltas() {
        let mut svc = ConfigeratorService::new();
        let mut tailer = GitTailer::new();
        svc.commit_source("a", "m", ch(&[("one.cconf", "export_if_last(1)")]))
            .unwrap();
        let first = tailer.drain(&svc);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].name, "one");
        assert!(!first[0].deleted);
        // No changes → nothing to emit.
        assert!(tailer.drain(&svc).is_empty());
        // A new commit emits only the delta.
        svc.commit_source("a", "m", ch(&[("two.cconf", "export_if_last(2)")]))
            .unwrap();
        let delta = tailer.drain(&svc);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].name, "two");
    }

    #[test]
    fn ripple_recompiles_are_emitted_for_all_dependents() {
        let mut svc = ConfigeratorService::new();
        let mut tailer = GitTailer::new();
        svc.commit_source(
            "a",
            "seed",
            ch(&[
                ("p.cinc", "V = 1"),
                ("x.cconf", "import \"p.cinc\"\nexport_if_last(V)"),
                ("y.cconf", "import \"p.cinc\"\nexport_if_last(V + 1)"),
            ]),
        )
        .unwrap();
        tailer.drain(&svc);
        svc.commit_source("a", "bump", ch(&[("p.cinc", "V = 10")]))
            .unwrap();
        let mut names: Vec<String> = tailer.drain(&svc).into_iter().map(|u| u.name).collect();
        names.sort();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn raw_configs_and_deletions_flow_through() {
        let mut svc = ConfigeratorService::new();
        let mut tailer = GitTailer::new();
        svc.commit_raw("tool", "m", "traffic.json", "{\"w\":1}").unwrap();
        let ups = tailer.drain(&svc);
        assert_eq!(ups[0].name, "traffic.json");
        assert_eq!(&ups[0].data[..], b"{\"w\":1}");
        // Delete the source of a compiled config.
        svc.commit_source("a", "m", ch(&[("z.cconf", "export_if_last(9)")]))
            .unwrap();
        tailer.drain(&svc);
        let mut del = BTreeMap::new();
        del.insert("z.cconf".to_string(), None);
        svc.commit_source("a", "rm", del).unwrap();
        let ups = tailer.drain(&svc);
        let z = ups.iter().find(|u| u.name == "z").unwrap();
        assert!(z.deleted);
    }

    #[test]
    fn partitions_get_independent_cursors() {
        let mut svc = ConfigeratorService::new();
        svc.add_partition("source/feed/");
        svc.add_partition("compiled/feed/");
        let mut tailer = GitTailer::new();
        svc.commit_source("a", "m", ch(&[("feed/r.cconf", "export_if_last(1)")]))
            .unwrap();
        let ups = tailer.drain(&svc);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].name, "feed/r");
        svc.commit_source("a", "m", ch(&[("misc.cconf", "export_if_last(2)")]))
            .unwrap();
        let ups = tailer.drain(&svc);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].name, "misc");
    }
}
