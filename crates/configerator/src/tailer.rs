//! The git tailer: repository commits → distribution writes.
//!
//! "The Git Tailer continuously extracts config changes from the git
//! repository, and writes them to Zeus for distribution" (§3.4). The
//! tailer tracks the last commit it has seen per repository partition and,
//! on each drain, diffs forward to the current head, emitting one update
//! per changed distributable config (compiled artifacts and raw configs).

use bytes::Bytes;
use gitstore::multirepo::RepoId;
use gitstore::object::ObjectId;

use crate::service::{config_name, ConfigeratorService, COMPILED_PREFIX, RAW_PREFIX};

/// One distributable config update extracted from the repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigUpdate {
    /// Distribution path (config name).
    pub name: String,
    /// New content; empty when `deleted`.
    pub data: Bytes,
    /// Whether the config was removed.
    pub deleted: bool,
}

/// The tailer's per-partition cursor.
#[derive(Debug, Default)]
pub struct GitTailer {
    last: Vec<Option<ObjectId>>,
}

impl GitTailer {
    /// Creates a tailer that has seen nothing (first drain emits the full
    /// current state).
    pub fn new() -> GitTailer {
        GitTailer::default()
    }

    /// Extracts updates committed since the previous drain, in partition
    /// order. Within a partition, per-path changes are coalesced to the
    /// latest state at head.
    pub fn drain(&mut self, svc: &ConfigeratorService) -> Vec<ConfigUpdate> {
        drain_cursor(&mut self.last, svc)
    }
}

/// Advances `cursor` (one entry per repository partition) to the current
/// heads of `svc`, returning one update per distributable config that
/// changed. This is the core of both [`GitTailer`] (private cursor) and
/// [`TailerGroup`] (shared, lease-guarded cursor).
fn drain_cursor(
    cursor: &mut Vec<Option<ObjectId>>,
    svc: &ConfigeratorService,
) -> Vec<ConfigUpdate> {
    let heads = svc.repo().heads();
    if cursor.len() < heads.len() {
        cursor.resize(heads.len(), None);
    }
    let mut out = Vec::new();
    for (i, head) in heads.iter().enumerate() {
        let Some(head) = head else { continue };
        if cursor[i] == Some(*head) {
            continue;
        }
        let repo = svc.repo().repo(RepoId(i));
        let changed: Vec<(String, bool)> = match cursor[i] {
            Some(prev) => repo
                .diff_commits(prev, *head)
                .unwrap_or_default()
                .into_iter()
                .map(|c| (c.path, c.new.is_none()))
                .collect(),
            None => repo
                .snapshot(*head)
                .unwrap_or_default()
                .into_keys()
                .map(|p| (p, false))
                .collect(),
        };
        for (path, deleted) in changed {
            if !(path.starts_with(COMPILED_PREFIX) || path.starts_with(RAW_PREFIX)) {
                continue;
            }
            let name = if let Some(stripped) = path.strip_prefix(COMPILED_PREFIX) {
                match stripped.strip_suffix(".json") {
                    Some(n) => n.to_string(),
                    None => stripped.to_string(),
                }
            } else {
                config_name(&path).unwrap_or_else(|| path.clone())
            };
            let data = if deleted {
                Bytes::new()
            } else {
                repo.read(*head, &path).unwrap_or_default()
            };
            out.push(ConfigUpdate {
                name,
                data,
                deleted,
            });
        }
        cursor[i] = Some(*head);
    }
    out
}

/// A fencing lease over the tailer role, as held in Zeus.
///
/// In production the lease is a Zeus path written with compare-and-swap;
/// the `epoch` is the fencing token: every successful acquisition bumps
/// it, and any request carrying an older epoch is rejected no matter how
/// convinced the sender is that it still holds the lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailerLease {
    /// Index of the member holding the lease.
    pub holder: usize,
    /// Fencing token, unique per acquisition.
    pub epoch: u64,
    /// Tick at which the lease lapses unless renewed.
    pub expires_at: u64,
}

/// Why a drain attempt was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailerError {
    /// The member does not hold the lease (it lapsed, or another member
    /// holds it).
    NotHolder {
        /// The current holder, if a live lease exists.
        holder: Option<usize>,
    },
    /// The member presented a stale fencing epoch — it was deposed after a
    /// takeover and must not emit.
    Fenced {
        /// The epoch the member presented.
        presented: u64,
        /// The epoch of the current lease.
        current: u64,
    },
}

impl std::fmt::Display for TailerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailerError::NotHolder { holder: Some(h) } => {
                write!(f, "lease held by member {h}")
            }
            TailerError::NotHolder { holder: None } => write!(f, "no live lease"),
            TailerError::Fenced { presented, current } => {
                write!(f, "fenced: presented epoch {presented}, current {current}")
            }
        }
    }
}

impl std::error::Error for TailerError {}

/// A group of tailer instances — one active, the rest standby — coordinated
/// through a Zeus-held lease with cursor handoff.
///
/// Only the lease holder may drain, and the repository cursor is committed
/// back under the same fencing epoch as part of the drain, so a takeover
/// resumes exactly where the last *successful* drain ended:
///
/// * nothing is **lost** — a holder that crashes before draining never
///   advanced the cursor, so the successor re-reads the same delta;
/// * nothing is **duplicated** — a deposed holder's drain is fenced by the
///   epoch check before it can emit, and a successful drain atomically
///   advances the shared cursor past what it emitted.
#[derive(Debug)]
pub struct TailerGroup {
    members: usize,
    ttl: u64,
    lease: Option<TailerLease>,
    next_epoch: u64,
    /// Shared committed cursor (the Zeus-held handoff state).
    cursor: Vec<Option<ObjectId>>,
}

impl TailerGroup {
    /// Creates a group of `members` tailers with the given lease TTL (in
    /// caller-defined ticks). No lease is held initially.
    pub fn new(members: usize, ttl: u64) -> TailerGroup {
        assert!(members >= 1, "group must be nonempty");
        assert!(ttl >= 1, "ttl must be positive");
        TailerGroup {
            members,
            ttl,
            lease: None,
            next_epoch: 1,
            cursor: Vec::new(),
        }
    }

    /// The live lease at `now`, if any.
    pub fn lease(&self, now: u64) -> Option<TailerLease> {
        self.lease.filter(|l| l.expires_at > now)
    }

    /// The member currently holding a live lease.
    pub fn holder(&self, now: u64) -> Option<usize> {
        self.lease(now).map(|l| l.holder)
    }

    /// The shared committed cursor (for inspection in tests).
    pub fn cursor(&self) -> &[Option<ObjectId>] {
        &self.cursor
    }

    /// Attempts to acquire the lease for `member`. Succeeds — with a fresh
    /// fencing epoch — iff no live lease exists; re-acquiring by the
    /// current holder renews instead.
    pub fn acquire(&mut self, member: usize, now: u64) -> Option<TailerLease> {
        assert!(member < self.members, "unknown member {member}");
        match self.lease(now) {
            Some(l) if l.holder == member => {
                // Idempotent: the holder re-acquiring just renews.
                let renewed = TailerLease {
                    expires_at: now + self.ttl,
                    ..l
                };
                self.lease = Some(renewed);
                Some(renewed)
            }
            Some(_) => None,
            None => {
                let lease = TailerLease {
                    holder: member,
                    epoch: self.next_epoch,
                    expires_at: now + self.ttl,
                };
                self.next_epoch += 1;
                self.lease = Some(lease);
                Some(lease)
            }
        }
    }

    /// Renews the lease. Fails if `member` does not hold a live lease with
    /// `epoch` (a lapsed holder must re-acquire and may lose the race).
    pub fn renew(&mut self, member: usize, epoch: u64, now: u64) -> bool {
        match self.lease(now) {
            Some(l) if l.holder == member && l.epoch == epoch => {
                self.lease = Some(TailerLease {
                    expires_at: now + self.ttl,
                    ..l
                });
                true
            }
            _ => false,
        }
    }

    /// Drains as `member` under fencing `epoch`: validates the lease,
    /// extracts updates since the shared cursor, and commits the cursor
    /// forward in the same step. Returns the updates, or the reason the
    /// drain was refused (in which case nothing was emitted and the cursor
    /// is untouched).
    pub fn drain(
        &mut self,
        member: usize,
        epoch: u64,
        svc: &ConfigeratorService,
        now: u64,
    ) -> Result<Vec<ConfigUpdate>, TailerError> {
        let Some(lease) = self.lease(now) else {
            return Err(TailerError::NotHolder { holder: None });
        };
        if lease.epoch != epoch {
            return Err(TailerError::Fenced {
                presented: epoch,
                current: lease.epoch,
            });
        }
        if lease.holder != member {
            return Err(TailerError::NotHolder {
                holder: Some(lease.holder),
            });
        }
        // Draining implicitly renews: a holder actively doing work should
        // not lapse between drains shorter than the TTL apart.
        self.lease = Some(TailerLease {
            expires_at: now + self.ttl,
            ..lease
        });
        Ok(drain_cursor(&mut self.cursor, svc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ch(pairs: &[(&str, &str)]) -> BTreeMap<String, Option<String>> {
        pairs
            .iter()
            .map(|(p, s)| (p.to_string(), Some(s.to_string())))
            .collect()
    }

    #[test]
    fn first_drain_emits_current_state_then_deltas() {
        let mut svc = ConfigeratorService::new();
        let mut tailer = GitTailer::new();
        svc.commit_source("a", "m", ch(&[("one.cconf", "export_if_last(1)")]))
            .unwrap();
        let first = tailer.drain(&svc);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].name, "one");
        assert!(!first[0].deleted);
        // No changes → nothing to emit.
        assert!(tailer.drain(&svc).is_empty());
        // A new commit emits only the delta.
        svc.commit_source("a", "m", ch(&[("two.cconf", "export_if_last(2)")]))
            .unwrap();
        let delta = tailer.drain(&svc);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].name, "two");
    }

    #[test]
    fn ripple_recompiles_are_emitted_for_all_dependents() {
        let mut svc = ConfigeratorService::new();
        let mut tailer = GitTailer::new();
        svc.commit_source(
            "a",
            "seed",
            ch(&[
                ("p.cinc", "V = 1"),
                ("x.cconf", "import \"p.cinc\"\nexport_if_last(V)"),
                ("y.cconf", "import \"p.cinc\"\nexport_if_last(V + 1)"),
            ]),
        )
        .unwrap();
        tailer.drain(&svc);
        svc.commit_source("a", "bump", ch(&[("p.cinc", "V = 10")]))
            .unwrap();
        let mut names: Vec<String> = tailer.drain(&svc).into_iter().map(|u| u.name).collect();
        names.sort();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn raw_configs_and_deletions_flow_through() {
        let mut svc = ConfigeratorService::new();
        let mut tailer = GitTailer::new();
        svc.commit_raw("tool", "m", "traffic.json", "{\"w\":1}")
            .unwrap();
        let ups = tailer.drain(&svc);
        assert_eq!(ups[0].name, "traffic.json");
        assert_eq!(&ups[0].data[..], b"{\"w\":1}");
        // Delete the source of a compiled config.
        svc.commit_source("a", "m", ch(&[("z.cconf", "export_if_last(9)")]))
            .unwrap();
        tailer.drain(&svc);
        let mut del = BTreeMap::new();
        del.insert("z.cconf".to_string(), None);
        svc.commit_source("a", "rm", del).unwrap();
        let ups = tailer.drain(&svc);
        let z = ups.iter().find(|u| u.name == "z").unwrap();
        assert!(z.deleted);
    }

    #[test]
    fn lease_grants_renews_and_expires() {
        let mut g = TailerGroup::new(2, 10);
        let l = g.acquire(0, 0).unwrap();
        assert_eq!(l.holder, 0);
        assert_eq!(g.holder(5), Some(0));
        // A standby cannot steal a live lease.
        assert!(g.acquire(1, 5).is_none());
        // Renewal extends; re-acquire by the holder is a renewal.
        assert!(g.renew(0, l.epoch, 8));
        assert_eq!(g.holder(17), Some(0));
        // After expiry the standby takes over with a higher fencing epoch.
        let l2 = g.acquire(1, 30).unwrap();
        assert!(l2.epoch > l.epoch);
        // The old holder's renewals are now rejected.
        assert!(!g.renew(0, l.epoch, 31));
    }

    #[test]
    fn takeover_resumes_from_committed_cursor_without_loss() {
        let mut svc = ConfigeratorService::new();
        let mut g = TailerGroup::new(2, 10);
        let l0 = g.acquire(0, 0).unwrap();

        svc.commit_source("a", "m", ch(&[("one.cconf", "export_if_last(1)")]))
            .unwrap();
        let first = g.drain(0, l0.epoch, &svc, 1).unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].name, "one");

        // New work lands, then the active tailer dies without draining.
        svc.commit_source("a", "m", ch(&[("two.cconf", "export_if_last(2)")]))
            .unwrap();
        // After the TTL the standby takes over and resumes from the
        // committed cursor: exactly the missed delta, nothing re-emitted.
        let l1 = g.acquire(1, 20).unwrap();
        let handoff = g.drain(1, l1.epoch, &svc, 21).unwrap();
        assert_eq!(handoff.len(), 1);
        assert_eq!(handoff[0].name, "two");
    }

    #[test]
    fn deposed_holder_is_fenced_and_emits_nothing() {
        let mut svc = ConfigeratorService::new();
        let mut g = TailerGroup::new(2, 10);
        let l0 = g.acquire(0, 0).unwrap();
        svc.commit_source("a", "m", ch(&[("one.cconf", "export_if_last(1)")]))
            .unwrap();

        // Member 0 stalls past its TTL; member 1 takes over and drains.
        let l1 = g.acquire(1, 20).unwrap();
        let ups = g.drain(1, l1.epoch, &svc, 21).unwrap();
        assert_eq!(ups.len(), 1);

        // The deposed member wakes up, still believing it is active. Its
        // stale epoch is fenced; no duplicate emission is possible.
        let err = g.drain(0, l0.epoch, &svc, 22).unwrap_err();
        assert_eq!(
            err,
            TailerError::Fenced {
                presented: l0.epoch,
                current: l1.epoch,
            }
        );
        // And the cursor did not move: the rightful holder sees no delta.
        assert!(g.drain(1, l1.epoch, &svc, 23).unwrap().is_empty());
    }

    #[test]
    fn drains_without_a_live_lease_are_refused() {
        let svc = ConfigeratorService::new();
        let mut g = TailerGroup::new(2, 10);
        assert_eq!(
            g.drain(0, 1, &svc, 0).unwrap_err(),
            TailerError::NotHolder { holder: None }
        );
        let l = g.acquire(0, 0).unwrap();
        // Wrong member presenting the right epoch is also refused.
        assert_eq!(
            g.drain(1, l.epoch, &svc, 1).unwrap_err(),
            TailerError::NotHolder { holder: Some(0) }
        );
    }

    #[test]
    fn interleaved_takeovers_emit_each_update_exactly_once() {
        let mut svc = ConfigeratorService::new();
        let mut g = TailerGroup::new(3, 10);
        let mut all: Vec<String> = Vec::new();
        let mut now = 0u64;
        for round in 0..9u32 {
            svc.commit_source(
                "a",
                "m",
                ch(&[(
                    format!("c{round}.cconf").as_str(),
                    format!("export_if_last({round})").as_str(),
                )]),
            )
            .unwrap();
            // Rotate the active member every round via lease expiry.
            now += 20;
            let member = (round as usize) % 3;
            let lease = g.acquire(member, now).unwrap();
            let ups = g.drain(member, lease.epoch, &svc, now + 1).unwrap();
            all.extend(ups.into_iter().map(|u| u.name));
        }
        all.sort();
        let expected: Vec<String> = (0..9).map(|r| format!("c{r}")).collect();
        assert_eq!(all, expected, "each update exactly once, none lost");
    }

    #[test]
    fn partitions_get_independent_cursors() {
        let mut svc = ConfigeratorService::new();
        svc.add_partition("source/feed/");
        svc.add_partition("compiled/feed/");
        let mut tailer = GitTailer::new();
        svc.commit_source("a", "m", ch(&[("feed/r.cconf", "export_if_last(1)")]))
            .unwrap();
        let ups = tailer.drain(&svc);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].name, "feed/r");
        svc.commit_source("a", "m", ch(&[("misc.cconf", "export_if_last(2)")]))
            .unwrap();
        let ups = tailer.drain(&svc);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].name, "misc");
    }
}
