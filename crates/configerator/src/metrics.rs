//! Metric names recorded by the Configerator service.
//!
//! Same convention as the rest of the workspace (`zeus::metrics`,
//! `laser::metrics`): dotted lowercase names with the unit suffixed.
//! Durations are sampled in seconds ([`simnet::stats::Metrics::sample`]
//! buckets them into integer-microsecond histograms — hence the `_us`
//! histogram name).

/// Histogram: wall-clock time to compile one config entry.
pub const COMPILE_US: &str = "configerator.compile_us";
/// Counter: parse-cache lookups answered without parsing.
pub const PARSE_CACHE_HITS: &str = "configerator.parse_cache_hits";
/// Counter: parse-cache lookups that had to lex + parse.
pub const PARSE_CACHE_MISSES: &str = "configerator.parse_cache_misses";
/// Counter: compile candidates skipped because their fingerprint was
/// unchanged (artifact reused verbatim).
pub const FINGERPRINT_SKIPS: &str = "configerator.fingerprint_skips";
/// Counter: entries actually compiled (executed, validated).
pub const ENTRIES_COMPILED: &str = "configerator.entries_compiled";
/// Counter: compile failures observed on the commit path (one per failed
/// entry; a rejected commit with three broken configs counts three).
pub const COMPILE_ERRORS: &str = "configerator.compile_errors";
/// Counter: commits landed through the service (source and raw).
pub const COMMITS: &str = "configerator.commits";

/// Fleet-rollout pipeline counters (the `repro canary` experiment).
pub mod canary {
    /// Rollouts that promoted through every phase to the fleet.
    pub const PROMOTIONS: &str = "canary.promotions";
    /// Rollouts aborted by a failing phase (revert landed).
    pub const ROLLBACKS: &str = "canary.rollbacks";
    /// Individual phase promotions (blast-radius widenings).
    pub const PHASE_PROMOTIONS: &str = "canary.phase_promotions";
}
