//! Metric names recorded by the Configerator service.
//!
//! Same convention as the rest of the workspace (`zeus::metrics`,
//! `laser::metrics`): dotted lowercase names with the unit suffixed.
//! Durations are sampled in seconds ([`simnet::stats::Metrics::sample`]
//! buckets them into integer-microsecond histograms — hence the `_us`
//! histogram name).

/// Histogram: wall-clock time to compile one config entry.
pub const COMPILE_US: &str = "configerator.compile_us";
/// Counter: parse-cache lookups answered without parsing.
pub const PARSE_CACHE_HITS: &str = "configerator.parse_cache_hits";
/// Counter: parse-cache lookups that had to lex + parse.
pub const PARSE_CACHE_MISSES: &str = "configerator.parse_cache_misses";
/// Counter: compile candidates skipped because their fingerprint was
/// unchanged (artifact reused verbatim).
pub const FINGERPRINT_SKIPS: &str = "configerator.fingerprint_skips";
/// Counter: entries actually compiled (executed, validated).
pub const ENTRIES_COMPILED: &str = "configerator.entries_compiled";
/// Counter: compile failures observed on the commit path (one per failed
/// entry; a rejected commit with three broken configs counts three).
pub const COMPILE_ERRORS: &str = "configerator.compile_errors";
/// Counter: commits landed through the service (source and raw).
pub const COMMITS: &str = "configerator.commits";
/// Histogram: wall-clock time of the static verify pass per plan.
pub const VERIFY_US: &str = "configerator.verify_us";
/// Counter: commits that passed static verification.
pub const VERIFY_CLEAN: &str = "configerator.verify_clean";
/// Counter: commits rejected by static verification before compiling.
pub const VERIFY_REJECTED: &str = "configerator.verify_rejected";
/// Counter: rejected commits for which the verifier synthesized at least
/// one Tortoise-style repair hint.
pub const VERIFY_REPAIR_SUGGESTED: &str = "configerator.verify_repair_suggested";

/// Publishes one landed commit into the ODS fleet plane: a `landed`
/// counter tick and a `compile_s` latency sample derived from the report's
/// compile-work total. Call from the experiment driver that owns the
/// simulated configerator node (the service itself runs outside the actor
/// plane).
pub fn publish_commit_ods(
    report: &crate::service::CommitReport,
    ods: &mut simnet::ods::Ods,
    node: simnet::NodeId,
    at: simnet::SimTime,
) {
    use simnet::ods::{series, tiers};
    ods.emit_counter(node, tiers::CONFIGERATOR, series::LANDED, at, 1.0);
    ods.emit_sample(
        node,
        tiers::CONFIGERATOR,
        series::COMPILE_S,
        at,
        report.stats.compile_us as f64 / 1e6,
    );
}

/// Publishes a rejected commit (compile failure) into the ODS plane.
pub fn publish_commit_error_ods(
    ods: &mut simnet::ods::Ods,
    node: simnet::NodeId,
    at: simnet::SimTime,
    failed_entries: u64,
) {
    use simnet::ods::{series, tiers};
    ods.emit_counter(
        node,
        tiers::CONFIGERATOR,
        series::COMPILE_ERRORS,
        at,
        failed_entries as f64,
    );
}

/// Health-signal metric names compared by the canary/rollout pipeline.
/// PR 6 spelled these as ad-hoc string literals in four files; they are
/// load-bearing (rollout verdicts key on them), so they live here now.
pub mod health {
    /// Fraction of requests erroring on a cohort.
    pub const ERROR_RATE: &str = "error_rate";
    /// Request latency in milliseconds on a cohort.
    pub const LATENCY_MS: &str = "latency_ms";
}

/// Fleet-rollout pipeline counters (the `repro canary` experiment).
pub mod canary {
    /// Rollouts that promoted through every phase to the fleet.
    pub const PROMOTIONS: &str = "canary.promotions";
    /// Rollouts aborted by a failing phase (revert landed).
    pub const ROLLBACKS: &str = "canary.rollbacks";
    /// Individual phase promotions (blast-radius widenings).
    pub const PHASE_PROMOTIONS: &str = "canary.phase_promotions";
}
