//! Code review (Phabricator) and continuous integration (Sandcastle).
//!
//! "A config change is treated the same as a code change and goes through
//! the same rigorous code review process" (§1). "If the config is related
//! to the frontend products ... the Sandcastle tool automatically performs
//! a comprehensive set of synthetic, continuous integration tests of the
//! site under the new config. Sandcastle posts the testing results to
//! Phabricator for reviewers to access" (§3.3).
//!
//! The paper also records policy evolution (§6.6): Facebook moved "from
//! optional diff review and optional manual testing ... to mandatory diff
//! review and mandatory manual testing" — [`ReviewPolicy`] captures that
//! knob.

use std::fmt;

use cdsl::compile::CompiledConfig;

use crate::landing::SourceDiff;
use crate::service::{ConfigeratorService, ServiceError};

/// Review/test requirements in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReviewPolicy {
    /// A human approval is required before landing.
    pub mandatory_review: bool,
    /// Test evidence (Sandcastle or manual) is required before landing.
    pub mandatory_tests: bool,
}

impl Default for ReviewPolicy {
    fn default() -> ReviewPolicy {
        // The paper's current state: both mandatory (§6.6).
        ReviewPolicy {
            mandatory_review: true,
            mandatory_tests: true,
        }
    }
}

/// A Sandcastle integration-test report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestReport {
    /// Whether every check passed.
    pub passed: bool,
    /// Human-readable failures.
    pub failures: Vec<String>,
    /// Number of checks executed.
    pub checks_run: usize,
}

/// One integration check run by Sandcastle over a compiled config.
pub type IntegrationCheck = Box<dyn Fn(&CompiledConfig) -> Result<(), String>>;

/// The continuous-integration sandbox.
#[derive(Default)]
pub struct Sandcastle {
    checks: Vec<(String, IntegrationCheck)>,
}

impl Sandcastle {
    /// Creates a Sandcastle with no registered checks (compilation and
    /// validators still run — they are part of the compiler).
    pub fn new() -> Sandcastle {
        Sandcastle::default()
    }

    /// Registers a named integration check applied to every compiled
    /// config affected by a diff.
    pub fn register_check(
        &mut self,
        name: &str,
        check: impl Fn(&CompiledConfig) -> Result<(), String> + 'static,
    ) {
        self.checks.push((name.to_string(), Box::new(check)));
    }

    /// Runs the diff in the sandbox: dry-run compile plus every registered
    /// integration check on every affected config.
    pub fn run(&self, svc: &ConfigeratorService, diff: &SourceDiff) -> TestReport {
        let compiled = match svc.check_changes(&diff.changes) {
            Ok(c) => c,
            Err(e) => {
                return TestReport {
                    passed: false,
                    failures: vec![format!("compile failed: {e}")],
                    checks_run: 0,
                }
            }
        };
        let mut failures = Vec::new();
        let mut checks_run = 0;
        for cfg in &compiled {
            for (name, check) in &self.checks {
                checks_run += 1;
                if let Err(msg) = check(cfg) {
                    failures.push(format!("{name} on {}: {msg}", cfg.path));
                }
            }
        }
        TestReport {
            passed: failures.is_empty(),
            failures,
            checks_run,
        }
    }
}

/// Review lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReviewState {
    /// Submitted; awaiting test evidence (if required) and approval.
    Open,
    /// Approved by a reviewer.
    Approved,
    /// Rejected by a reviewer.
    Rejected,
    /// Landed into the repository.
    Landed,
}

/// Why a review action failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReviewError {
    /// Unknown review id.
    NotFound(u64),
    /// Action not valid in the current state.
    BadState(ReviewState),
    /// Policy requires test evidence before this action.
    TestsRequired,
    /// Policy requires approval before landing.
    ApprovalRequired,
    /// Tests ran and failed; landing is blocked until a new diff version.
    TestsFailed,
}

impl fmt::Display for ReviewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReviewError::NotFound(id) => write!(f, "no review {id}"),
            ReviewError::BadState(s) => write!(f, "invalid in state {s:?}"),
            ReviewError::TestsRequired => write!(f, "test evidence required"),
            ReviewError::ApprovalRequired => write!(f, "approval required"),
            ReviewError::TestsFailed => write!(f, "tests failed"),
        }
    }
}

impl std::error::Error for ReviewError {}

/// One review (a "diff" in Phabricator terms).
#[derive(Debug)]
pub struct Review {
    /// Review id.
    pub id: u64,
    /// The proposed change.
    pub diff: SourceDiff,
    /// Current state.
    pub state: ReviewState,
    /// Attached test evidence.
    pub report: Option<TestReport>,
    /// Approving reviewer, once approved.
    pub approved_by: Option<String>,
}

/// The review system.
#[derive(Debug, Default)]
pub struct Phabricator {
    reviews: Vec<Review>,
    policy: ReviewPolicy,
}

impl Phabricator {
    /// Creates a review system with the default (mandatory) policy.
    pub fn new() -> Phabricator {
        Phabricator::default()
    }

    /// Overrides the policy (e.g. the paper's earlier optional-review era,
    /// used in the incident-study experiment).
    pub fn with_policy(policy: ReviewPolicy) -> Phabricator {
        Phabricator {
            reviews: Vec::new(),
            policy,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> ReviewPolicy {
        self.policy
    }

    /// Submits a diff for review, returning its id.
    pub fn submit(&mut self, diff: SourceDiff) -> u64 {
        let id = self.reviews.len() as u64;
        self.reviews.push(Review {
            id,
            diff,
            state: ReviewState::Open,
            report: None,
            approved_by: None,
        });
        id
    }

    /// Attaches a Sandcastle (or manual) test report.
    pub fn attach_report(&mut self, id: u64, report: TestReport) -> Result<(), ReviewError> {
        let r = self.get_mut(id)?;
        r.report = Some(report);
        Ok(())
    }

    /// Records an approval. Under a mandatory-tests policy, approval
    /// requires attached passing evidence first.
    pub fn approve(&mut self, id: u64, reviewer: &str) -> Result<(), ReviewError> {
        let policy = self.policy;
        let r = self.get_mut(id)?;
        if r.state != ReviewState::Open {
            return Err(ReviewError::BadState(r.state));
        }
        if policy.mandatory_tests {
            match &r.report {
                None => return Err(ReviewError::TestsRequired),
                Some(rep) if !rep.passed => return Err(ReviewError::TestsFailed),
                Some(_) => {}
            }
        }
        r.state = ReviewState::Approved;
        r.approved_by = Some(reviewer.to_string());
        Ok(())
    }

    /// Records a rejection.
    pub fn reject(&mut self, id: u64) -> Result<(), ReviewError> {
        let r = self.get_mut(id)?;
        if r.state != ReviewState::Open {
            return Err(ReviewError::BadState(r.state));
        }
        r.state = ReviewState::Rejected;
        Ok(())
    }

    /// Takes the diff out for landing, enforcing the policy. The caller
    /// passes the result to the landing strip; on success, call
    /// [`Phabricator::mark_landed`].
    pub fn take_for_landing(&mut self, id: u64) -> Result<SourceDiff, ReviewError> {
        let policy = self.policy;
        let r = self.get_mut(id)?;
        match r.state {
            ReviewState::Approved => {}
            ReviewState::Open if !policy.mandatory_review => {
                if policy.mandatory_tests && r.report.as_ref().map(|t| t.passed) != Some(true) {
                    return Err(ReviewError::TestsRequired);
                }
            }
            ReviewState::Open => return Err(ReviewError::ApprovalRequired),
            other => return Err(ReviewError::BadState(other)),
        }
        Ok(r.diff.clone())
    }

    /// Marks a review landed.
    pub fn mark_landed(&mut self, id: u64) -> Result<(), ReviewError> {
        let r = self.get_mut(id)?;
        r.state = ReviewState::Landed;
        Ok(())
    }

    /// Reads a review.
    pub fn review(&self, id: u64) -> Option<&Review> {
        self.reviews.get(id as usize)
    }

    fn get_mut(&mut self, id: u64) -> Result<&mut Review, ReviewError> {
        self.reviews
            .get_mut(id as usize)
            .ok_or(ReviewError::NotFound(id))
    }
}

/// Convenience for `ServiceError` conversions in pipeline code.
impl From<ServiceError> for ReviewError {
    fn from(_: ServiceError) -> ReviewError {
        ReviewError::TestsFailed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn diff(svc: &ConfigeratorService, src: &str) -> SourceDiff {
        let mut ch = BTreeMap::new();
        ch.insert("x.cconf".to_string(), Some(src.to_string()));
        SourceDiff::against(svc, "alice", "msg", ch)
    }

    #[test]
    fn mandatory_pipeline_happy_path() {
        let svc = ConfigeratorService::new();
        let mut phab = Phabricator::new();
        let sandcastle = Sandcastle::new();
        let d = diff(&svc, "export_if_last({\"v\": 1})");
        let id = phab.submit(d.clone());
        // Cannot approve before tests.
        assert_eq!(
            phab.approve(id, "rev").unwrap_err(),
            ReviewError::TestsRequired
        );
        let report = sandcastle.run(&svc, &d);
        assert!(report.passed);
        phab.attach_report(id, report).unwrap();
        // Cannot land before approval.
        assert_eq!(
            phab.take_for_landing(id).unwrap_err(),
            ReviewError::ApprovalRequired
        );
        phab.approve(id, "rev").unwrap();
        let landed = phab.take_for_landing(id).unwrap();
        assert_eq!(landed.author, "alice");
        phab.mark_landed(id).unwrap();
        assert_eq!(phab.review(id).unwrap().state, ReviewState::Landed);
    }

    #[test]
    fn failing_sandcastle_blocks_approval() {
        let svc = ConfigeratorService::new();
        let mut phab = Phabricator::new();
        let mut sandcastle = Sandcastle::new();
        sandcastle.register_check("no_big_values", |cfg| {
            if cfg.json.contains("999") {
                Err("value too large".into())
            } else {
                Ok(())
            }
        });
        let d = diff(&svc, "export_if_last({\"v\": 999})");
        let id = phab.submit(d.clone());
        let report = sandcastle.run(&svc, &d);
        assert!(!report.passed);
        assert_eq!(report.checks_run, 1);
        phab.attach_report(id, report).unwrap();
        assert_eq!(
            phab.approve(id, "rev").unwrap_err(),
            ReviewError::TestsFailed
        );
    }

    #[test]
    fn broken_diff_fails_sandcastle_compile() {
        let svc = ConfigeratorService::new();
        let sandcastle = Sandcastle::new();
        let d = diff(&svc, "export_if_last(");
        let report = sandcastle.run(&svc, &d);
        assert!(!report.passed);
        assert!(report.failures[0].contains("compile failed"));
    }

    #[test]
    fn optional_policy_allows_direct_landing() {
        let svc = ConfigeratorService::new();
        let mut phab = Phabricator::with_policy(ReviewPolicy {
            mandatory_review: false,
            mandatory_tests: false,
        });
        let id = phab.submit(diff(&svc, "export_if_last(1)"));
        assert!(phab.take_for_landing(id).is_ok());
    }

    #[test]
    fn rejection_is_terminal() {
        let svc = ConfigeratorService::new();
        let mut phab = Phabricator::new();
        let id = phab.submit(diff(&svc, "export_if_last(1)"));
        phab.reject(id).unwrap();
        assert!(matches!(
            phab.take_for_landing(id),
            Err(ReviewError::BadState(ReviewState::Rejected))
        ));
    }

    #[test]
    fn unknown_review_id() {
        let mut phab = Phabricator::new();
        assert_eq!(
            phab.approve(99, "r").unwrap_err(),
            ReviewError::NotFound(99)
        );
    }
}
