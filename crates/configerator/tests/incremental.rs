//! Differential test: the incremental, parallel, cache-sharing compile
//! pipeline must be observationally identical to the legacy
//! compile-everything-serially pipeline.
//!
//! A seeded random walk applies ~50 edit steps — mutating shared `.cinc`
//! modules, schemas, validators, and entry files — to two services that
//! started from the same seed commit:
//!
//! * `fast`: default options (fingerprint skips, shared parse cache,
//!   parallel workers);
//! * `slow`: [`CompileOptions::legacy`] (serial, no cache, no skips).
//!
//! After every step the two must agree on acceptance/rejection, updated
//! configs, and byte-identical artifacts. The fast service must also never
//! recompile more than the ripple predicts, and every artifact that
//! actually changed must be in its recompiled set. At the end, a fresh
//! from-scratch service replays the final tree and must reproduce every
//! artifact byte-for-byte.

use std::collections::BTreeMap;

use configerator::{CompileOptions, ConfigeratorService};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const STEPS: usize = 50;
const ENTRIES: usize = 18;
const MODULES: usize = 4;
const SCHEMAS: usize = 2;

fn module_path(m: usize) -> String {
    format!("shared/mod{m}.cinc")
}

fn schema_path(s: usize) -> String {
    format!("schemas/type{s}.schema")
}

fn validator_path(s: usize) -> String {
    format!("schemas/type{s}.cvalidator")
}

fn entry_path(e: usize) -> String {
    format!("app/entry{e:02}.cconf")
}

fn module_src(m: usize, version: u64) -> String {
    format!(
        "BASE{m} = {}\nSCALE{m} = {}\n",
        100 + version,
        1 + version % 7
    )
}

fn schema_src(s: usize, version: u64) -> String {
    format!(
        "struct Conf{s} {{ 1: string name 2: i64 weight = {} }}",
        10 + version
    )
}

fn validator_src(_s: usize, version: u64) -> String {
    // Always-true bound so edits never reject; rejection paths are
    // exercised separately in the service unit tests.
    format!(
        "def validate(cfg):\n    require(cfg.weight >= {}, \"w\")",
        version % 5
    )
}

fn entry_src(e: usize, version: u64) -> String {
    let m = e % MODULES;
    let s = e % SCHEMAS;
    format!(
        "import \"{}\"\nschema \"{}\"\nexport_if_last(Conf{s} {{ name: \"e{e}\", weight: BASE{m} * SCALE{m} + {} }})",
        module_path(m),
        schema_path(s),
        version
    )
}

fn seed_changes() -> BTreeMap<String, Option<String>> {
    let mut ch = BTreeMap::new();
    for m in 0..MODULES {
        ch.insert(module_path(m), Some(module_src(m, 0)));
    }
    for s in 0..SCHEMAS {
        ch.insert(schema_path(s), Some(schema_src(s, 0)));
        ch.insert(validator_path(s), Some(validator_src(s, 0)));
    }
    for e in 0..ENTRIES {
        ch.insert(entry_path(e), Some(entry_src(e, 0)));
    }
    ch
}

fn assert_artifacts_identical(a: &ConfigeratorService, b: &ConfigeratorService, when: &str) {
    let names_a = a.config_names();
    let names_b = b.config_names();
    assert_eq!(names_a, names_b, "config sets diverged {when}");
    for name in &names_a {
        assert_eq!(
            a.artifact(name).unwrap().json,
            b.artifact(name).unwrap().json,
            "artifact {name} not byte-identical {when}"
        );
    }
}

#[test]
fn randomized_edits_incremental_matches_clean_rebuild() {
    let mut rng = SmallRng::seed_from_u64(51);
    let mut fast = ConfigeratorService::new();
    let mut slow = ConfigeratorService::with_options(CompileOptions::legacy());
    fast.commit_source("seed", "seed", seed_changes()).unwrap();
    slow.commit_source("seed", "seed", seed_changes()).unwrap();
    assert_artifacts_identical(&fast, &slow, "after seed");

    // Per-file version counters so every edit produces fresh content.
    let mut versions: BTreeMap<String, u64> = BTreeMap::new();

    for step in 0..STEPS {
        let mut ch: BTreeMap<String, Option<String>> = BTreeMap::new();
        match rng.gen_range(0..5u32) {
            0 => {
                let m = rng.gen_range(0..MODULES);
                let v = versions.entry(module_path(m)).or_insert(0);
                *v += 1;
                ch.insert(module_path(m), Some(module_src(m, *v)));
            }
            1 => {
                let s = rng.gen_range(0..SCHEMAS);
                let v = versions.entry(schema_path(s)).or_insert(0);
                *v += 1;
                ch.insert(schema_path(s), Some(schema_src(s, *v)));
            }
            2 => {
                let s = rng.gen_range(0..SCHEMAS);
                let v = versions.entry(validator_path(s)).or_insert(0);
                *v += 1;
                ch.insert(validator_path(s), Some(validator_src(s, *v)));
            }
            3 => {
                let e = rng.gen_range(0..ENTRIES);
                let v = versions.entry(entry_path(e)).or_insert(0);
                *v += 1;
                ch.insert(entry_path(e), Some(entry_src(e, *v)));
            }
            _ => {
                // A no-op rewrite: land a file with its current content.
                // Fingerprints make these free for `fast`; the output must
                // still match `slow`, which recompiles the full ripple.
                let m = rng.gen_range(0..MODULES);
                let v = versions.get(&module_path(m)).copied().unwrap_or(0);
                ch.insert(module_path(m), Some(module_src(m, v)));
            }
        }

        let when = format!("at step {step}");
        let rf = fast.commit_source("fuzz", &when, ch.clone());
        let rs = slow.commit_source("fuzz", &when, ch);
        match (rf, rs) {
            (Ok(rf), Ok(rs)) => {
                assert_eq!(rf.updated_configs, rs.updated_configs, "updates {when}");
                assert_eq!(rf.ripple_recompiles, rs.ripple_recompiles, "ripple {when}");
                // The fast pipeline may skip, never over-compile: its
                // candidate set matches the legacy one exactly, and what
                // it compiled plus what it skipped covers it.
                assert_eq!(rf.stats.candidates, rs.stats.candidates, "{when}");
                assert_eq!(
                    rf.recompiled_entries.len() + rf.skipped_entries.len(),
                    rf.stats.candidates,
                    "{when}"
                );
                // Every artifact that changed was actually recompiled
                // (skipped entries reuse stored bytes, so they can never
                // appear in updated_configs).
                for name in &rf.updated_configs {
                    let entry = format!("{name}.cconf");
                    assert!(
                        rf.recompiled_entries.contains(&entry),
                        "{when}: changed artifact {name} was not recompiled"
                    );
                }
            }
            (Err(ef), Err(_es)) => {
                // Both reject — acceptable, state must stay in sync.
                let _ = ef;
            }
            (rf, rs) => panic!("{when}: divergent accept/reject: fast={rf:?} slow={rs:?}"),
        }
        assert_artifacts_identical(&fast, &slow, &when);
    }

    // From-scratch replay of the final tree reproduces every artifact.
    let mut fresh = ConfigeratorService::new();
    let mut final_tree: BTreeMap<String, Option<String>> = BTreeMap::new();
    for (path, _) in seed_changes() {
        final_tree.insert(path.clone(), fast.read_source(&path));
    }
    fresh.commit_source("replay", "replay", final_tree).unwrap();
    assert_artifacts_identical(&fast, &fresh, "after from-scratch replay");

    // The walk must have exercised the incremental machinery.
    let skips = fast
        .metrics()
        .counter(configerator::metrics::FINGERPRINT_SKIPS);
    assert!(skips > 0, "no fingerprint skips in {STEPS} steps");
    let cache = fast.parse_cache_stats();
    assert!(
        cache.hits > cache.misses,
        "parse cache barely hit: {cache:?}"
    );
}
