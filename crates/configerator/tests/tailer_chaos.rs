//! Lease-holder crash during cursor handoff.
//!
//! A [`TailerGroup`] hands the repository cursor between members under a
//! fenced lease: a holder that crashes mid-tenure never advanced the
//! cursor past work it didn't emit, and a deposed holder that wakes up
//! convinced it still leads is refused by the epoch check before it can
//! emit anything. These tests drive that handoff — first choreographed,
//! then under a seeded random crash schedule — and assert the
//! exactly-once contract: no commit's effect is lost across a takeover,
//! and no update is emitted twice.

use std::collections::BTreeMap;

use bytes::Bytes;
use configerator::{ConfigUpdate, ConfigeratorService, TailerError, TailerGroup};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Commits `export_if_last(<version>)` to `<name>.cconf`. Config names
/// carry no digits, so the compiled payload's digits are the version.
fn commit(svc: &mut ConfigeratorService, name: &str, version: u64) {
    let changes: BTreeMap<String, Option<String>> = [(
        format!("{name}.cconf"),
        Some(format!("export_if_last({version})")),
    )]
    .into_iter()
    .collect();
    svc.commit_source("chaos", &format!("v{version}"), changes)
        .unwrap();
}

fn version_of(data: &Bytes) -> u64 {
    let text = String::from_utf8_lossy(data);
    let digits: String = text.chars().filter(char::is_ascii_digit).collect();
    digits.parse().expect("compiled payload carries a version")
}

/// Applies a drained batch, asserting per-name versions strictly increase
/// (an equal or older version means an update was emitted twice).
fn apply(applied: &mut BTreeMap<String, u64>, updates: Vec<ConfigUpdate>) {
    for u in updates {
        assert!(!u.deleted, "workload never deletes");
        let v = version_of(&u.data);
        if let Some(&prev) = applied.get(&u.name) {
            assert!(
                v > prev,
                "{} double-applied or regressed: saw {v} after {prev}",
                u.name
            );
        }
        applied.insert(u.name, v);
    }
}

#[test]
fn fenced_handoff_neither_skips_nor_duplicates() {
    let mut svc = ConfigeratorService::new();
    let mut g = TailerGroup::new(2, 10);
    let mut applied = BTreeMap::new();

    commit(&mut svc, "alpha", 1);
    let l0 = g.acquire(0, 0).expect("no contention at start");
    apply(&mut applied, g.drain(0, l0.epoch, &svc, 0).unwrap());
    assert_eq!(applied.get("alpha"), Some(&1));

    // A commit lands, then the holder crashes before its next drain. The
    // standby cannot steal the live lease; only after the TTL lapses does
    // it take over, under a fresh fencing epoch.
    commit(&mut svc, "alpha", 2);
    assert!(g.acquire(1, 5).is_none());
    let l1 = g.acquire(1, 11).expect("lease lapsed");
    assert_ne!(l1.epoch, l0.epoch);

    // The successor's first drain picks up exactly the delta the crashed
    // holder never emitted — nothing skipped, nothing repeated.
    let handed = g.drain(1, l1.epoch, &svc, 11).unwrap();
    assert_eq!(handed.len(), 1);
    apply(&mut applied, handed);
    assert_eq!(applied.get("alpha"), Some(&2));

    // The deposed holder wakes up mid-handoff convinced it still leads:
    // fenced by its stale epoch, with the shared cursor untouched.
    let cursor = g.cursor().to_vec();
    let err = g.drain(0, l0.epoch, &svc, 12).unwrap_err();
    assert!(matches!(
        err,
        TailerError::Fenced { presented, current }
            if presented == l0.epoch && current == l1.epoch
    ));
    assert_eq!(g.cursor(), &cursor[..]);

    // The rightful holder sees nothing new (the fenced attempt emitted
    // nothing and advanced nothing), then picks up the next commit once.
    assert!(g.drain(1, l1.epoch, &svc, 12).unwrap().is_empty());
    commit(&mut svc, "alpha", 3);
    apply(&mut applied, g.drain(1, l1.epoch, &svc, 13).unwrap());
    assert_eq!(applied.get("alpha"), Some(&3));
}

#[test]
fn randomized_crash_schedule_preserves_exactly_once_handoff() {
    const MEMBERS: usize = 3;
    const TTL: u64 = 4;
    const TICKS: u64 = 160;
    const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

    let mut handoffs = 0u64;
    let mut fenced = 0u64;
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut svc = ConfigeratorService::new();
        let mut g = TailerGroup::new(MEMBERS, TTL);
        let mut version = 0u64;
        let mut latest: BTreeMap<String, u64> = BTreeMap::new();
        let mut applied: BTreeMap<String, u64> = BTreeMap::new();
        // What each member believes: the epoch of a lease it acquired and
        // has not yet seen refused. A crashed member keeps its belief — the
        // point of fencing is that stale belief is harmless.
        let mut believed: Vec<Option<u64>> = vec![None; MEMBERS];
        let mut down_until = [0u64; MEMBERS];

        for now in 0..TICKS {
            if rng.gen_bool(0.35) {
                version += 1;
                let name = NAMES[rng.gen_range(0..NAMES.len())];
                commit(&mut svc, name, version);
                latest.insert(name.to_string(), version);
            }
            // Crash the current holder mid-tenure sometimes, so the cursor
            // handoff happens with undrained commits in flight.
            if rng.gen_bool(0.08) {
                if let Some(h) = g.holder(now) {
                    down_until[h] = now + TTL + rng.gen_range(1..4u64);
                }
            }
            for m in 0..MEMBERS {
                if down_until[m] > now {
                    continue;
                }
                if let Some(epoch) = believed[m] {
                    match g.drain(m, epoch, &svc, now) {
                        Ok(updates) => apply(&mut applied, updates),
                        Err(TailerError::Fenced { .. }) => {
                            fenced += 1;
                            believed[m] = None;
                        }
                        Err(TailerError::NotHolder { .. }) => believed[m] = None,
                    }
                }
                if believed[m].is_none() {
                    if let Some(l) = g.acquire(m, now) {
                        believed[m] = Some(l.epoch);
                        if l.epoch > 1 {
                            handoffs += 1;
                        }
                    }
                }
            }
        }

        // Quiesce: past every crash window and lease TTL, whoever can hold
        // the lease drains the tail.
        let end = TICKS + 2 * TTL;
        let drained = (0..MEMBERS).any(|m| match g.acquire(m, end) {
            Some(l) => {
                apply(&mut applied, g.drain(m, l.epoch, &svc, end).unwrap());
                true
            }
            None => false,
        });
        assert!(drained, "seed {seed}: no member could drain at quiesce");
        assert_eq!(
            applied, latest,
            "seed {seed}: applied state diverged from committed state"
        );
    }
    assert!(handoffs > 0, "crash schedule never forced a takeover");
    assert!(fenced > 0, "no deposed holder was ever fenced");
}
