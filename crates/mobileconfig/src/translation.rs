//! The translation layer: one level of indirection between mobile config
//! fields and backend systems.
//!
//! "The translation layer in Figure 6 provides one level of indirection to
//! flexibly map a MobileConfig field to a backend config. The mapping can
//! change. For example, initially VOIP_ECHO is mapped to a
//! Gatekeeper-backed experiment ... After the experiment finishes and the
//! best parameter is found, VOIP_ECHO can be remapped to a constant stored
//! in Configerator" (§5). The mapping itself is serializable so it can be
//! stored in Configerator and distributed to all translation servers.

use std::collections::BTreeMap;

use gatekeeper::experiment::ParamValue;
use serde::{Deserialize, Serialize};

/// What a mobile config field resolves against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Binding {
    /// A Gatekeeper project: the field is `gk_check(project, user)`.
    Gatekeeper {
        /// Project name.
        project: String,
    },
    /// An A/B experiment parameter: the field takes the user's group value.
    Experiment {
        /// Experiment name.
        name: String,
        /// Parameter within the experiment.
        param: String,
    },
    /// A constant (e.g. a value stored in Configerator).
    Constant(ParamValue),
}

/// The field → backend mapping for all configs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TranslationLayer {
    /// `"config.field"` → binding.
    map: BTreeMap<String, Binding>,
}

impl TranslationLayer {
    /// Creates an empty mapping.
    pub fn new() -> TranslationLayer {
        TranslationLayer::default()
    }

    /// Maps `config.field` to `binding`, replacing any existing mapping
    /// (this is the live remap operation of §5).
    pub fn bind(&mut self, config: &str, field: &str, binding: Binding) {
        self.map.insert(format!("{config}.{field}"), binding);
    }

    /// Looks up the binding for `config.field`.
    pub fn lookup(&self, config: &str, field: &str) -> Option<&Binding> {
        self.map.get(&format!("{config}.{field}"))
    }

    /// Number of bound fields.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns whether no fields are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Serializes the mapping as the JSON config stored in Configerator
    /// and "distributed to all the translation servers" (§5).
    pub fn to_config_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("mapping serializes")
    }

    /// Parses a mapping from JSON config.
    pub fn from_config_json(json: &str) -> Result<TranslationLayer, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_and_remap() {
        let mut t = TranslationLayer::new();
        t.bind(
            "MessengerVoip",
            "VOIP_ECHO",
            Binding::Experiment {
                name: "echo".into(),
                param: "VOIP_ECHO".into(),
            },
        );
        assert!(matches!(
            t.lookup("MessengerVoip", "VOIP_ECHO"),
            Some(Binding::Experiment { .. })
        ));
        // Experiment concluded: remap to the winning constant.
        t.bind(
            "MessengerVoip",
            "VOIP_ECHO",
            Binding::Constant(ParamValue::Float(0.9)),
        );
        assert_eq!(
            t.lookup("MessengerVoip", "VOIP_ECHO"),
            Some(&Binding::Constant(ParamValue::Float(0.9)))
        );
        assert_eq!(t.len(), 1);
        assert!(t.lookup("MessengerVoip", "OTHER").is_none());
    }

    #[test]
    fn json_round_trip() {
        let mut t = TranslationLayer::new();
        t.bind(
            "C",
            "f1",
            Binding::Gatekeeper {
                project: "P".into(),
            },
        );
        t.bind("C", "f2", Binding::Constant(ParamValue::Int(7)));
        let back = TranslationLayer::from_config_json(&t.to_config_json()).unwrap();
        assert_eq!(t, back);
    }
}
