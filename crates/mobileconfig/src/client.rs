//! The MobileConfig client library (the cross-platform C++ library of
//! Figure 6, as a Rust struct).
//!
//! The app sees a context class with typed getters; the client library
//! polls the server periodically, caches values "on flash" (here: in the
//! struct, surviving `poll` failures), and accepts emergency pushes.

use std::collections::BTreeMap;

use gatekeeper::context::UserContext;
use gatekeeper::experiment::ParamValue;

use crate::schema::MobileSchema;
use crate::server::{MobileConfigServer, PullReply, PullRequest};

/// Result of one poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollOutcome {
    /// Whether new values were applied.
    pub changed: bool,
    /// Bytes moved (request + reply) — the §5 bandwidth accounting.
    pub bytes: u64,
}

/// A mobile app's config client.
#[derive(Debug, Clone)]
pub struct MobileConfigClient {
    user: UserContext,
    schema: MobileSchema,
    /// The flash cache: field → value.
    cache: BTreeMap<String, ParamValue>,
    values_hash: u64,
    polls: u64,
}

impl MobileConfigClient {
    /// Creates a client for `user` with the app build's `schema`. The
    /// cache starts empty: getters return defaults until the first poll or
    /// push.
    pub fn new(user: UserContext, schema: MobileSchema) -> MobileConfigClient {
        MobileConfigClient {
            user,
            schema,
            cache: BTreeMap::new(),
            values_hash: 0,
            polls: 0,
        }
    }

    /// Polls the server for changes (the periodic pull of §5).
    pub fn poll(&mut self, server: &mut MobileConfigServer) -> PollOutcome {
        self.polls += 1;
        let req = PullRequest {
            config: self.schema.config.clone(),
            schema_hash: self.schema.hash(),
            values_hash: self.values_hash,
            user: self.user.clone(),
        };
        let req_bytes = req.wire_size();
        let reply = server.pull(&req);
        let reply_bytes = reply.wire_size();
        let changed = match reply {
            PullReply::Values { values, hash } => {
                self.cache = values;
                self.values_hash = hash;
                true
            }
            PullReply::NotModified | PullReply::UnknownSchema => false,
        };
        PollOutcome {
            changed,
            bytes: req_bytes + reply_bytes,
        }
    }

    /// Applies an emergency push from the server.
    pub fn apply_push(&mut self, values: BTreeMap<String, ParamValue>, hash: u64) {
        self.cache = values;
        self.values_hash = hash;
    }

    /// Number of polls performed.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// `myCfg.getBool(FEATURE_X)` (Figure 6). Unknown or mistyped fields
    /// return the default, as mobile client libraries must never crash on
    /// config skew.
    pub fn get_bool(&self, field: &str) -> bool {
        match self.cache.get(field) {
            Some(ParamValue::Bool(b)) => *b,
            _ => false,
        }
    }

    /// `myCfg.getInt(...)` with default 0.
    pub fn get_int(&self, field: &str) -> i64 {
        match self.cache.get(field) {
            Some(ParamValue::Int(v)) => *v,
            _ => 0,
        }
    }

    /// Float getter with default 0.0 (ints coerce).
    pub fn get_float(&self, field: &str) -> f64 {
        match self.cache.get(field) {
            Some(ParamValue::Float(v)) => *v,
            Some(ParamValue::Int(v)) => *v as f64,
            _ => 0.0,
        }
    }

    /// String getter with empty default.
    pub fn get_str(&self, field: &str) -> &str {
        match self.cache.get(field) {
            Some(ParamValue::Str(s)) => s,
            _ => "",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldType;
    use crate::translation::{Binding, TranslationLayer};
    use gatekeeper::project::Project;
    use gatekeeper::runtime::Runtime;

    fn setup() -> (MobileConfigServer, MobileConfigClient) {
        let schema = MobileSchema::new(
            "C",
            &[
                ("feature_x", FieldType::Bool),
                ("retry_limit", FieldType::Int),
                ("greeting", FieldType::Str),
            ],
        );
        let mut t = TranslationLayer::new();
        t.bind(
            "C",
            "feature_x",
            Binding::Gatekeeper {
                project: "P".into(),
            },
        );
        t.bind("C", "retry_limit", Binding::Constant(ParamValue::Int(3)));
        t.bind(
            "C",
            "greeting",
            Binding::Constant(ParamValue::Str("hello".into())),
        );
        let mut gk = Runtime::new(laser::Laser::new(16));
        gk.update_project(Project::fraction_launch("P", 1.0));
        let mut server = MobileConfigServer::new(t, gk);
        server.register_schema(schema.clone());
        let client = MobileConfigClient::new(UserContext::with_id(9), schema);
        (server, client)
    }

    #[test]
    fn typed_getters_with_defaults_before_first_poll() {
        let (_, c) = setup();
        assert!(!c.get_bool("feature_x"));
        assert_eq!(c.get_int("retry_limit"), 0);
        assert_eq!(c.get_str("greeting"), "");
    }

    #[test]
    fn poll_populates_and_second_poll_is_cheap() {
        let (mut s, mut c) = setup();
        let first = c.poll(&mut s);
        assert!(first.changed);
        assert!(c.get_bool("feature_x"));
        assert_eq!(c.get_int("retry_limit"), 3);
        assert_eq!(c.get_str("greeting"), "hello");
        let second = c.poll(&mut s);
        assert!(!second.changed);
        assert!(
            second.bytes < first.bytes,
            "hash suppression must shrink the reply: {} vs {}",
            second.bytes,
            first.bytes
        );
    }

    #[test]
    fn emergency_push_applies_without_polling() {
        let (mut s, mut c) = setup();
        c.poll(&mut s);
        assert!(c.get_bool("feature_x"));
        // Feature turns out buggy: kill it and push immediately.
        s.gatekeeper_mut()
            .update_project(Project::fraction_launch("P", 0.0));
        let schema = MobileSchema::new(
            "C",
            &[
                ("feature_x", FieldType::Bool),
                ("retry_limit", FieldType::Int),
                ("greeting", FieldType::Str),
            ],
        );
        let (values, hash) = s.emergency_push_for(&schema, &UserContext::with_id(9));
        c.apply_push(values, hash);
        assert!(!c.get_bool("feature_x"), "kill switch must apply instantly");
        // The next poll confirms the client is already current.
        let out = c.poll(&mut s);
        assert!(!out.changed);
    }

    #[test]
    fn mistyped_reads_fail_to_defaults() {
        let (mut s, mut c) = setup();
        c.poll(&mut s);
        // Reading an Int field as bool and vice versa.
        assert!(!c.get_bool("retry_limit"));
        assert_eq!(c.get_int("feature_x"), 0);
        assert_eq!(c.get_float("retry_limit"), 3.0, "int coerces to float");
    }
}
