//! Config schemas shipped inside mobile app builds.
//!
//! Each app version compiles in a schema per config (the "context class" of
//! §5). The client identifies its schema to the server by hash — "the
//! client sends to the server the hash of the config schema (for schema
//! versioning)" — so old app versions keep working against fields they
//! know about.

use std::collections::BTreeMap;

use gatekeeper::context::{hash_str, mix64};
use serde::{Deserialize, Serialize};

/// The type of one config field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldType {
    /// Boolean (typically Gatekeeper-backed).
    Bool,
    /// Integer.
    Int,
    /// Float.
    Float,
    /// String.
    Str,
}

/// One config's schema as compiled into an app version.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MobileSchema {
    /// Config name (the context class, e.g. `"MessengerVoip"`).
    pub config: String,
    /// Field name → type, sorted (canonical).
    pub fields: BTreeMap<String, FieldType>,
}

impl MobileSchema {
    /// Creates a schema.
    pub fn new(config: &str, fields: &[(&str, FieldType)]) -> MobileSchema {
        MobileSchema {
            config: config.to_string(),
            fields: fields.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        }
    }

    /// A stable 64-bit schema-version hash over the canonical field list.
    pub fn hash(&self) -> u64 {
        let mut h = hash_str(&self.config);
        for (name, ty) in &self.fields {
            h = mix64(h ^ hash_str(name) ^ (*ty as u64 + 1));
        }
        h
    }

    /// Approximate serialized size (for bandwidth accounting).
    pub fn wire_size(&self) -> u64 {
        self.fields.keys().map(|n| n.len() as u64 + 2).sum::<u64>() + self.config.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_field_sensitive() {
        let a = MobileSchema::new("C", &[("x", FieldType::Bool), ("y", FieldType::Int)]);
        let b = MobileSchema::new("C", &[("y", FieldType::Int), ("x", FieldType::Bool)]);
        assert_eq!(a.hash(), b.hash(), "field order does not matter");
        let c = MobileSchema::new("C", &[("x", FieldType::Bool)]);
        assert_ne!(a.hash(), c.hash());
        let d = MobileSchema::new("C", &[("x", FieldType::Int), ("y", FieldType::Int)]);
        assert_ne!(a.hash(), d.hash(), "field type matters");
    }

    #[test]
    fn config_name_matters() {
        let a = MobileSchema::new("A", &[("x", FieldType::Bool)]);
        let b = MobileSchema::new("B", &[("x", FieldType::Bool)]);
        assert_ne!(a.hash(), b.hash());
    }
}
