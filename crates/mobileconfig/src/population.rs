//! Aggregated MobileConfig population cohorts.
//!
//! The paper's MobileConfig tier serves ~1 billion devices (§5); simulating
//! each device as an actor caps the fleet long before paper scale. A
//! [`PopulationActor`] models 10k–1M pull clients behind one cluster as a
//! single cohort:
//!
//! * **Poll arrivals are Poisson.** Each client polls with exponential
//!   gaps of mean `T` (scaled by the hour's diurnal factor), so when a
//!   config changes, the residual wait until a given client's next poll is
//!   itself Exp(T) — the memorylessness of the Poisson process. The cohort
//!   therefore needs no per-client state at all: on every observed config
//!   change it records the analytic staleness distribution directly,
//!   `base + Exp(T)` evaluated at K deterministic quantile points with
//!   weight `clients/K` each (see [`Histogram::record_n`] — one histogram
//!   update per point, not one per client).
//! * **Poll volume is an expectation, not a sample.** A coarse tick
//!   converts `clients · Δt / T · diurnal` into a poll count through a
//!   fractional accumulator — deterministic, no RNG, byte-identical
//!   across replays.
//! * **The translation path is real.** Each tick resolves the schema
//!   through an actual [`MobileConfigServer`] once per poll batch, so the
//!   cohort exercises the same Gatekeeper/experiment/constant bindings a
//!   per-device simulation would.
//!
//! The cohort watches its cluster observer exactly like a proxy (same
//! `Subscribe { path, have }` protocol, lease-less like a laser server),
//! so `base` — the push-path delay before any device could have seen the
//! change — is measured, not assumed.
//!
//! [`Histogram::record_n`]: simnet::stats::Histogram::record_n

use std::collections::BTreeMap;

use gatekeeper::context::UserContext;
use simnet::ods;
use simnet::{Actor, Ctx, Message, NodeId, SimDuration};
use zeus::types::{NotifyFrame, Write, ZeusMsg, Zxid};

use crate::schema::MobileSchema;
use crate::server::MobileConfigServer;

/// Polls issued by population cohorts (expectation-based, see module docs).
pub const COHORT_POLLS: &str = "mobileconfig.cohort_polls";
/// Config staleness observed by cohort clients: push-path delay plus the
/// analytic Exp(T) residual wait until the client's next poll.
pub const COHORT_STALENESS_S: &str = "mobileconfig.cohort_staleness_s";
/// Config-change observations fanned into the staleness histogram, in
/// client units (each changed config is eventually seen by every client).
pub const COHORT_OBSERVATIONS: &str = "mobileconfig.cohort_observations";

/// The metric name a cohort labeled `label` records under for `base`
/// (one of the `COHORT_*` constants): `base.label`, or `base` itself for
/// the unlabeled cohort. Suffixing keeps per-cohort staleness
/// distributions separable inside one metrics store.
pub fn cohort_metric(base: &str, label: &str) -> String {
    if label.is_empty() {
        base.to_string()
    } else {
        format!("{base}.{label}")
    }
}

const TIMER_TICK: u64 = 1;
const TIMER_RESUB: u64 = 2;
/// Deterministic quantile points per observed change. 64 points with
/// linear mid-bucket spacing keep the histogram error well under the
/// differential-test tolerance while costing 64 updates per change —
/// independent of whether the cohort is 10k or 1M clients.
const STALENESS_POINTS: u64 = 64;

/// Static description of one cohort.
pub struct PopulationCfg {
    /// The cluster observer this cohort's edge infrastructure watches.
    pub observer: NodeId,
    /// Config paths the cohort's schema depends on.
    pub paths: Vec<String>,
    /// Number of modeled pull clients.
    pub clients: u64,
    /// Mean poll interval per client (before diurnal scaling).
    pub mean_poll: SimDuration,
    /// 24 hourly poll-rate factors, mean 1 (see
    /// `workload::commits::CommitProcess::diurnal_factors`). Devices poll
    /// more while their humans are awake; staleness is correspondingly
    /// lower at peak.
    pub diurnal: [f64; 24],
    /// Simulated microseconds per modeled hour. Real-time cohorts use
    /// `3_600_000_000`; the fleet replay compresses one modeled hour to
    /// one simulated second (`1_000_000`), and `mean_poll` is expressed in
    /// the same compressed clock.
    pub hour_us: u64,
    /// Cohort label, suffixed onto the `COHORT_*` metric names (see
    /// [`cohort_metric`]). Empty means the unsuffixed base names.
    pub label: String,
}

/// One aggregated cohort of MobileConfig pull clients.
pub struct PopulationActor {
    cfg: PopulationCfg,
    /// Highest zxid observed per path — dedups anti-entropy re-deliveries
    /// so each config change is recorded exactly once.
    seen: BTreeMap<String, Zxid>,
    /// The real translation stack, resolved once per poll batch.
    server: Option<(MobileConfigServer, MobileSchema)>,
    /// Fractional poll carry between ticks.
    poll_accum: f64,
    ticks: u64,
    tick_every: SimDuration,
    resub_every: SimDuration,
    /// Guards `on_start` against double invocation: installing a cohort
    /// over a node that already hosts an actor leaves both `Start` events
    /// in the queue, and a second pass would double the timer chains (and
    /// with them the poll accounting).
    started: bool,
    /// Per-cohort metric names (see [`cohort_metric`]).
    polls_metric: String,
    staleness_metric: String,
    observations_metric: String,
}

impl PopulationActor {
    /// Creates a cohort actor.
    pub fn new(cfg: PopulationCfg) -> PopulationActor {
        let polls_metric = cohort_metric(COHORT_POLLS, &cfg.label);
        let staleness_metric = cohort_metric(COHORT_STALENESS_S, &cfg.label);
        let observations_metric = cohort_metric(COHORT_OBSERVATIONS, &cfg.label);
        PopulationActor {
            cfg,
            seen: BTreeMap::new(),
            server: None,
            poll_accum: 0.0,
            ticks: 0,
            tick_every: SimDuration::from_secs(60),
            resub_every: SimDuration::from_secs(2),
            started: false,
            polls_metric,
            staleness_metric,
            observations_metric,
        }
    }

    /// Overrides the poll-batch tick period (compressed-clock cohorts tick
    /// much faster than the real-time default of 60 s).
    pub fn with_tick(mut self, tick: SimDuration) -> PopulationActor {
        self.tick_every = tick;
        self
    }

    /// Attaches a real MobileConfig server + schema so each poll batch
    /// resolves through the genuine translation layer.
    pub fn with_server(
        mut self,
        server: MobileConfigServer,
        schema: MobileSchema,
    ) -> PopulationActor {
        self.server = Some((server, schema));
        self
    }

    /// The diurnal factor for the hour containing `now`, floored away from
    /// zero so the effective poll interval stays finite.
    fn diurnal_now(&self, now_us: u64) -> f64 {
        let hour = ((now_us / self.cfg.hour_us.max(1)) % 24) as usize;
        self.cfg.diurnal[hour].max(0.05)
    }

    /// Effective mean poll interval at `now` (seconds).
    fn mean_poll_secs(&self, now_us: u64) -> f64 {
        self.cfg.mean_poll.as_micros() as f64 / 1e6 / self.diurnal_now(now_us)
    }

    fn subscribe_all(&self, ctx: &mut Ctx<'_>) {
        for path in &self.cfg.paths {
            let have = self.seen.get(path).copied().unwrap_or(Zxid::ZERO);
            ctx.send_value(
                self.cfg.observer,
                (path.len() + 64) as u64,
                ZeusMsg::Subscribe {
                    path: path.clone(),
                    have,
                },
            );
        }
    }

    /// Records one observed config change for the whole cohort: every
    /// client will see it after its own residual poll wait, so the cohort
    /// staleness distribution for this change is `base + Exp(T)` — fanned
    /// into the histogram at K quantile points weighted `clients/K`.
    fn observe_change(&mut self, ctx: &mut Ctx<'_>, write: &Write) {
        let prev = self.seen.get(&write.path).copied().unwrap_or(Zxid::ZERO);
        if write.zxid <= prev {
            return;
        }
        self.seen.insert(write.path.clone(), write.zxid);
        let now = ctx.now();
        let base = (now - write.origin).as_secs_f64();
        let t_eff = self.mean_poll_secs(now.0);
        let per_point = self.cfg.clients / STALENESS_POINTS;
        let rem = self.cfg.clients % STALENESS_POINTS;
        for i in 0..STALENESS_POINTS {
            let q = (i as f64 + 0.5) / STALENESS_POINTS as f64;
            let residual = -t_eff * (1.0 - q).ln();
            let weight = per_point + u64::from(i < rem);
            ctx.metrics()
                .sample_n(&self.staleness_metric, base + residual, weight);
            // Labeled cohorts also feed the unsuffixed series so an
            // all-cohort distribution exists without histogram merging.
            if !self.cfg.label.is_empty() {
                ctx.metrics()
                    .sample_n(COHORT_STALENESS_S, base + residual, weight);
            }
        }
        ctx.metrics()
            .incr(&self.observations_metric, self.cfg.clients);
        // One coarse fleet-health point per change: the cohort mean.
        ctx.ods_sample(ods::tiers::MOBILE, ods::series::STALENESS_S, base + t_eff);
    }

    fn apply_writes<'a>(&mut self, ctx: &mut Ctx<'_>, writes: impl Iterator<Item = &'a Write>) {
        for w in writes {
            self.observe_change(ctx, w);
        }
    }
}

impl Actor for PopulationActor {
    fn kind(&self) -> &'static str {
        "mobileconfig.population"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.started {
            return;
        }
        self.started = true;
        self.subscribe_all(ctx);
        ctx.set_timer(self.tick_every, TIMER_TICK);
        ctx.set_timer(self.resub_every, TIMER_RESUB);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
        let msg = match msg.downcast::<ZeusMsg>() {
            Ok(m) => {
                match *m {
                    ZeusMsg::Notify { write } => self.observe_change(ctx, &write),
                    ZeusMsg::NotifyBatch { writes } => {
                        self.apply_writes(ctx, writes.iter());
                    }
                    _ => {}
                }
                return;
            }
            Err(original) => original,
        };
        if let Ok(frame) = msg.downcast::<std::sync::Arc<NotifyFrame>>() {
            self.apply_writes(ctx, frame.writes.iter());
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            TIMER_TICK => {
                self.ticks += 1;
                let now = ctx.now();
                let dt = self.tick_every.as_micros() as f64 / 1e6;
                let t_eff = self.mean_poll_secs(now.0);
                self.poll_accum += self.cfg.clients as f64 * dt / t_eff;
                let polls = self.poll_accum.floor();
                self.poll_accum -= polls;
                let polls = polls as u64;
                if polls > 0 {
                    ctx.metrics().incr(&self.polls_metric, polls);
                    ctx.ods_counter(ods::tiers::MOBILE, ods::series::POLLS, polls as f64);
                }
                // Resolve the schema through the real translation layer
                // once per poll batch — same code path a device poll hits.
                if let Some((server, schema)) = self.server.as_mut() {
                    let user = UserContext::with_id(self.ticks);
                    let _ = server.resolve(schema, &user);
                }
                ctx.set_timer(self.tick_every, TIMER_TICK);
            }
            TIMER_RESUB => {
                // Lease-less anti-entropy, same as a laser server: the
                // periodic re-subscribe with held versions repairs any
                // dropped notify.
                self.subscribe_all(ctx);
                ctx.set_timer(self.resub_every, TIMER_RESUB);
            }
            _ => {}
        }
    }
}
