//! The MobileConfig server side: translation servers bridging mobile
//! clients to the backend systems.

use std::collections::BTreeMap;
use std::collections::HashMap;

use gatekeeper::context::{hash_str, mix64, UserContext};
use gatekeeper::experiment::{Experiment, ParamValue};
use gatekeeper::runtime::Runtime;

use crate::schema::MobileSchema;
use crate::translation::{Binding, TranslationLayer};

/// A client pull request: hashes only, per §5's bandwidth minimization.
#[derive(Debug, Clone)]
pub struct PullRequest {
    /// Config name.
    pub config: String,
    /// Hash of the client's compiled-in schema (version identification).
    pub schema_hash: u64,
    /// Hash of the values currently cached on the client.
    pub values_hash: u64,
    /// The requesting user/device.
    pub user: UserContext,
}

impl PullRequest {
    /// Wire size of the request: two hashes plus the config name.
    pub fn wire_size(&self) -> u64 {
        16 + self.config.len() as u64 + 8
    }
}

/// The server's reply.
#[derive(Debug, Clone, PartialEq)]
pub enum PullReply {
    /// Client is current; nothing sent but the ack.
    NotModified,
    /// Fresh values for every field in the client's schema version.
    Values {
        /// Field → value.
        values: BTreeMap<String, ParamValue>,
        /// Hash of those values (client caches it for the next poll).
        hash: u64,
    },
    /// The schema hash is unknown to the server.
    UnknownSchema,
}

impl PullReply {
    /// Wire size of the reply.
    pub fn wire_size(&self) -> u64 {
        match self {
            PullReply::NotModified | PullReply::UnknownSchema => 16,
            PullReply::Values { values, .. } => {
                8 + values
                    .iter()
                    .map(|(k, v)| {
                        k.len() as u64
                            + match v {
                                ParamValue::Str(s) => s.len() as u64 + 2,
                                _ => 9,
                            }
                    })
                    .sum::<u64>()
            }
        }
    }
}

/// Cumulative server-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Pulls handled.
    pub pulls: u64,
    /// Pulls answered with `NotModified`.
    pub not_modified: u64,
    /// Total reply bytes.
    pub reply_bytes: u64,
    /// Emergency pushes sent.
    pub pushes: u64,
}

impl ServerStats {
    /// Publishes this server's cumulative stats as deltas into the ODS
    /// fleet plane. `prev` is the snapshot published at the previous scrape
    /// interval (so repeated publishes emit increments, not lifetime
    /// totals); pass `ServerStats::default()` the first time.
    pub fn publish_ods(
        &self,
        prev: &ServerStats,
        ods: &mut simnet::ods::Ods,
        node: simnet::NodeId,
        at: simnet::SimTime,
    ) {
        use simnet::ods::{series, tiers};
        ods.emit_counter(
            node,
            tiers::MOBILE,
            series::POLLS,
            at,
            self.pulls.saturating_sub(prev.pulls) as f64,
        );
        ods.emit_gauge(
            node,
            tiers::MOBILE,
            "not_modified_fraction",
            at,
            if self.pulls == 0 {
                0.0
            } else {
                self.not_modified as f64 / self.pulls as f64
            },
        );
    }
}

/// The server: schema registry, translation layer, and backends.
pub struct MobileConfigServer {
    /// Schemas of every shipped app version, by hash.
    schemas: HashMap<u64, MobileSchema>,
    translation: TranslationLayer,
    gatekeeper: Runtime,
    experiments: HashMap<String, Experiment>,
    stats: ServerStats,
    /// Stateful sessions (the paper's footnote-2 future enhancement):
    /// session id → (schema hash, last values hash), so repeat polls need
    /// not retransmit the hashes.
    sessions: HashMap<u64, (u64, u64)>,
    next_session: u64,
}

impl MobileConfigServer {
    /// Creates a server over a Gatekeeper runtime.
    pub fn new(translation: TranslationLayer, gatekeeper: Runtime) -> MobileConfigServer {
        MobileConfigServer {
            schemas: HashMap::new(),
            translation,
            gatekeeper,
            experiments: HashMap::new(),
            stats: ServerStats::default(),
            sessions: HashMap::new(),
            next_session: 1,
        }
    }

    /// Opens a stateful session for a client (§5 footnote 2: "make the
    /// server stateful, i.e., remembering each client's hash values to
    /// avoid repeated transfer of the hash values"). Returns a session id
    /// the client passes to [`MobileConfigServer::pull_session`].
    pub fn open_session(&mut self, schema_hash: u64) -> u64 {
        let id = self.next_session;
        self.next_session += 1;
        self.sessions.insert(id, (schema_hash, 0));
        id
    }

    /// Session-based pull: the request carries only the session id and the
    /// user — the server remembers the schema and the last values hash it
    /// served. Returns `None` for an unknown/expired session (the client
    /// falls back to a stateless [`MobileConfigServer::pull`]).
    pub fn pull_session(&mut self, session: u64, user: &UserContext) -> Option<PullReply> {
        self.stats.pulls += 1;
        let (schema_hash, last_values) = *self.sessions.get(&session)?;
        let schema = self.schemas.get(&schema_hash)?.clone();
        let values = self.resolve(&schema, user);
        let hash = hash_values(&values);
        let reply = if hash == last_values {
            self.stats.not_modified += 1;
            PullReply::NotModified
        } else {
            self.sessions.insert(session, (schema_hash, hash));
            PullReply::Values { values, hash }
        };
        self.stats.reply_bytes += reply.wire_size();
        Some(reply)
    }

    /// Registers a shipped app version's schema so legacy clients keep
    /// resolving (§5's backward compatibility).
    pub fn register_schema(&mut self, schema: MobileSchema) {
        self.schemas.insert(schema.hash(), schema);
    }

    /// Installs or updates an experiment backend.
    pub fn update_experiment(&mut self, exp: Experiment) {
        self.experiments.insert(exp.name.clone(), exp);
    }

    /// Replaces the translation layer (a live config update).
    pub fn update_translation(&mut self, t: TranslationLayer) {
        self.translation = t;
    }

    /// Mutable access to the Gatekeeper runtime (live project updates).
    pub fn gatekeeper_mut(&mut self) -> &mut Runtime {
        &mut self.gatekeeper
    }

    /// Server counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Resolves every field of `schema` for `user` through the translation
    /// layer.
    pub fn resolve(
        &mut self,
        schema: &MobileSchema,
        user: &UserContext,
    ) -> BTreeMap<String, ParamValue> {
        let mut out = BTreeMap::new();
        for field in schema.fields.keys() {
            let value = match self.translation.lookup(&schema.config, field) {
                Some(Binding::Gatekeeper { project }) => {
                    ParamValue::Bool(self.gatekeeper.check(project, user))
                }
                Some(Binding::Experiment { name, param }) => self
                    .experiments
                    .get(name)
                    .and_then(|e| e.param(user.user_id, param).cloned())
                    .unwrap_or(ParamValue::Bool(false)),
                Some(Binding::Constant(v)) => v.clone(),
                // Unbound fields fail closed/zero.
                None => ParamValue::Bool(false),
            };
            out.insert(field.clone(), value);
        }
        out
    }

    /// Handles a client pull (§5): compares the values hash and sends data
    /// only when something changed for this user and schema version.
    pub fn pull(&mut self, req: &PullRequest) -> PullReply {
        self.stats.pulls += 1;
        let Some(schema) = self.schemas.get(&req.schema_hash).cloned() else {
            let reply = PullReply::UnknownSchema;
            self.stats.reply_bytes += reply.wire_size();
            return reply;
        };
        debug_assert_eq!(schema.config, req.config);
        let values = self.resolve(&schema, &req.user);
        let hash = hash_values(&values);
        let reply = if hash == req.values_hash {
            self.stats.not_modified += 1;
            PullReply::NotModified
        } else {
            PullReply::Values { values, hash }
        };
        self.stats.reply_bytes += reply.wire_size();
        reply
    }

    /// Resolves fresh values for an emergency push to one client (§5:
    /// "the server occasionally pushes emergency config changes to the
    /// client through push notification, e.g., to immediately disable a
    /// buggy product feature").
    pub fn emergency_push_for(
        &mut self,
        schema: &MobileSchema,
        user: &UserContext,
    ) -> (BTreeMap<String, ParamValue>, u64) {
        self.stats.pushes += 1;
        let values = self.resolve(schema, user);
        let hash = hash_values(&values);
        (values, hash)
    }
}

/// Stable hash of a resolved value map.
pub fn hash_values(values: &BTreeMap<String, ParamValue>) -> u64 {
    let mut h: u64 = 0x243F6A8885A308D3;
    for (k, v) in values {
        let vh = match v {
            ParamValue::Bool(b) => *b as u64,
            ParamValue::Int(i) => mix64(*i as u64),
            ParamValue::Float(f) => mix64(f.to_bits()),
            ParamValue::Str(s) => hash_str(s),
        };
        h = mix64(h ^ hash_str(k) ^ vh);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldType;
    use gatekeeper::project::Project;

    fn server() -> MobileConfigServer {
        let mut t = TranslationLayer::new();
        t.bind(
            "C",
            "feature_x",
            Binding::Gatekeeper {
                project: "ProjX".into(),
            },
        );
        t.bind("C", "limit", Binding::Constant(ParamValue::Int(10)));
        let mut gk = Runtime::new(laser::Laser::new(16));
        gk.update_project(Project::fraction_launch("ProjX", 0.0));
        let mut s = MobileConfigServer::new(t, gk);
        s.register_schema(schema());
        s
    }

    fn schema() -> MobileSchema {
        MobileSchema::new(
            "C",
            &[("feature_x", FieldType::Bool), ("limit", FieldType::Int)],
        )
    }

    #[test]
    fn pull_resolves_and_suppresses_unchanged() {
        let mut s = server();
        let req = PullRequest {
            config: "C".into(),
            schema_hash: schema().hash(),
            values_hash: 0,
            user: UserContext::with_id(1),
        };
        let PullReply::Values { values, hash } = s.pull(&req) else {
            panic!("first pull must send values");
        };
        assert_eq!(values["feature_x"], ParamValue::Bool(false));
        assert_eq!(values["limit"], ParamValue::Int(10));
        // Second pull with the hash → NotModified, tiny reply.
        let req2 = PullRequest {
            values_hash: hash,
            ..req
        };
        assert_eq!(s.pull(&req2), PullReply::NotModified);
        assert_eq!(s.stats().not_modified, 1);
    }

    #[test]
    fn backend_change_invalidates_hash() {
        let mut s = server();
        let req = PullRequest {
            config: "C".into(),
            schema_hash: schema().hash(),
            values_hash: 0,
            user: UserContext::with_id(1),
        };
        let PullReply::Values { hash, .. } = s.pull(&req) else {
            panic!()
        };
        // Launch the feature to 100%.
        s.gatekeeper_mut()
            .update_project(Project::fraction_launch("ProjX", 1.0));
        let req2 = PullRequest {
            values_hash: hash,
            ..req
        };
        let PullReply::Values { values, .. } = s.pull(&req2) else {
            panic!("changed gate must invalidate the hash");
        };
        assert_eq!(values["feature_x"], ParamValue::Bool(true));
    }

    #[test]
    fn legacy_schema_resolves_only_its_fields() {
        let mut s = server();
        let legacy = MobileSchema::new("C", &[("feature_x", FieldType::Bool)]);
        s.register_schema(legacy.clone());
        let req = PullRequest {
            config: "C".into(),
            schema_hash: legacy.hash(),
            values_hash: 0,
            user: UserContext::with_id(1),
        };
        let PullReply::Values { values, .. } = s.pull(&req) else {
            panic!()
        };
        assert_eq!(values.len(), 1, "legacy client must not see new fields");
        assert!(values.contains_key("feature_x"));
    }

    #[test]
    fn stateful_session_skips_hash_retransmission() {
        let mut s = server();
        let session = s.open_session(schema().hash());
        let user = UserContext::with_id(1);
        // First session pull sends values; second is NotModified without
        // the client ever transmitting a hash.
        assert!(matches!(
            s.pull_session(session, &user),
            Some(PullReply::Values { .. })
        ));
        assert_eq!(s.pull_session(session, &user), Some(PullReply::NotModified));
        // A backend change invalidates the remembered hash.
        s.gatekeeper_mut()
            .update_project(Project::fraction_launch("ProjX", 1.0));
        assert!(matches!(
            s.pull_session(session, &user),
            Some(PullReply::Values { .. })
        ));
        // Unknown session → stateless fallback required.
        assert!(s.pull_session(9999, &user).is_none());
    }

    #[test]
    fn unknown_schema_hash_is_flagged() {
        let mut s = server();
        let req = PullRequest {
            config: "C".into(),
            schema_hash: 0xDEAD,
            values_hash: 0,
            user: UserContext::with_id(1),
        };
        assert_eq!(s.pull(&req), PullReply::UnknownSchema);
    }
}
