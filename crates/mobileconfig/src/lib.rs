//! # mobileconfig — config management for mobile apps
//!
//! Reproduction of MobileConfig (§5 of *Holistic Configuration Management
//! at Facebook*, SOSP 2015). Mobile differs from the data-center case in
//! three ways the design must absorb:
//!
//! 1. **The network is a severe limiting factor** — so the client polls
//!    with a hash of its schema and a hash of its cached values, and "the
//!    server sends back only the configs that have changed and are relevant
//!    to the client's schema version".
//! 2. **Push notification is unreliable** — so the transport is a hybrid:
//!    periodic pull plus an occasional [`MobileConfigServer::emergency_push_for`]
//!    "e.g., to immediately disable a buggy product feature".
//! 3. **Legacy app versions linger** — so "separating abstraction from
//!    implementation is a first-class citizen": the [`TranslationLayer`]
//!    maps each config field to a backend (a Gatekeeper project, an A/B
//!    experiment parameter, or a Configerator constant), and remapping a
//!    field — e.g. from a finished experiment to a constant — requires no
//!    client change at all.

pub mod client;
pub mod population;
pub mod schema;
pub mod server;
pub mod translation;

pub use client::{MobileConfigClient, PollOutcome};
pub use schema::{FieldType, MobileSchema};
pub use server::{MobileConfigServer, PullReply, PullRequest, ServerStats};
pub use translation::{Binding, TranslationLayer};
