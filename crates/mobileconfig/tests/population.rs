//! Cohort-vs-individual differential test for the aggregated population
//! model: one `PopulationActor` claiming N clients must reproduce the
//! staleness distribution that N real Poisson pull clients would measure.
//!
//! Both sides see the same writes at the same instants with the same
//! origin stamps, and both poll with exponential gaps of the same mean
//! (the individuals by actually drawing them, the cohort analytically via
//! the memorylessness of the Poisson process), so their staleness
//! percentiles must agree up to sampling noise and histogram bucketing.

use mobileconfig::population::{
    PopulationActor, PopulationCfg, COHORT_OBSERVATIONS, COHORT_STALENESS_S,
};
use simnet::prelude::*;
use zeus::pull::{PullClientActor, PullMsg, PullServerActor};
use zeus::types::{Write, ZeusMsg, Zxid};

/// Mean poll interval, both sides.
const MEAN_POLL_S: u64 = 4;
/// One write per distinct path: distinct paths keep the individual side
/// uncensored (a client observes every path's change at its next poll; a
/// same-path overwrite would hide large residuals).
const WRITES: u64 = 10;
/// Real simulated clients on the individual side.
const CLIENTS: u32 = 300;
/// Modeled clients on the cohort side.
const COHORT_CLIENTS: u64 = 100_000;

#[test]
fn cohort_staleness_matches_individual_poisson_clients() {
    let topo = Topology::symmetric(1, 1, CLIENTS as usize + 2);
    let mut sim = Sim::new(topo, NetConfig::datacenter(), 7);
    let server = NodeId(0);
    sim.add_actor(server, Box::new(PullServerActor::new()));
    let paths: Vec<String> = (0..WRITES).map(|i| format!("cfg/w{i}")).collect();
    for n in 0..CLIENTS {
        sim.add_actor(
            NodeId(1 + n),
            Box::new(
                PullClientActor::new(server, SimDuration::from_secs(MEAN_POLL_S), paths.clone())
                    .with_poisson(true),
            ),
        );
    }

    // The cohort stands in for 100k clients with the same mean. Its
    // `observer` loops back to itself so the periodic re-subscribes are
    // harmlessly ignored; the changes arrive as direct notifies below.
    let cohort_node = NodeId(CLIENTS + 1);
    sim.add_actor(
        cohort_node,
        Box::new(PopulationActor::new(PopulationCfg {
            observer: cohort_node,
            paths: paths.clone(),
            clients: COHORT_CLIENTS,
            mean_poll: SimDuration::from_secs(MEAN_POLL_S),
            diurnal: [1.0; 24],
            hour_us: 3_600_000_000,
            label: String::new(),
        })),
    );

    // Each write reaches the pull server (for the individuals) and the
    // cohort (as a zeus notify) at the same instant, same origin stamp.
    let t0 = sim.now();
    for i in 0..WRITES {
        let at = SimTime(t0.0 + 1_000_000 + i * 3_000_000);
        sim.post(
            at,
            server,
            server,
            Box::new(PullMsg::Set {
                path: paths[i as usize].clone(),
                data: bytes::Bytes::from_static(b"v"),
                origin: at,
            }),
        );
        let write = Write {
            zxid: Zxid {
                epoch: 1,
                counter: i + 1,
            },
            path: paths[i as usize].clone(),
            data: bytes::Bytes::from_static(b"v"),
            origin: at,
            trace: None,
        };
        sim.post(
            at,
            cohort_node,
            cohort_node,
            Box::new(ZeusMsg::Notify { write }),
        );
    }
    // Long enough past the last write (t = 28 s) that the individual
    // residual tail is effectively untruncated.
    sim.run_for(SimDuration::from_secs(60));

    let m = sim.metrics();
    assert_eq!(
        m.counter(COHORT_OBSERVATIONS),
        COHORT_CLIENTS * WRITES,
        "cohort must account every (client, write) observation"
    );
    let ind = m
        .histogram(zeus::metrics::pull::STALENESS_S)
        .expect("individual staleness series");
    let coh = m
        .histogram(COHORT_STALENESS_S)
        .expect("cohort staleness series");
    // 300 × 10 empirical samples vs the analytic Exp(T) fan-out: the
    // medians sit on dense buckets, the p99 rests on ~30 empirical order
    // statistics, hence the looser tail tolerance.
    for (q, tol) in [(0.50, 0.20), (0.90, 0.20), (0.99, 0.35)] {
        let i = ind.quantile_secs(q);
        let c = coh.quantile_secs(q);
        let rel = (i - c).abs() / i.max(c);
        assert!(
            rel <= tol,
            "q{q}: individuals {i:.3}s vs cohort {c:.3}s (rel err {rel:.3} > {tol})"
        );
    }
}
